"""Legacy shim so `pip install -e .` works on hosts without the `wheel`
package (offline environments): setuptools' develop command needs no wheel
build.  Configuration lives entirely in pyproject.toml."""
from setuptools import setup

setup()
