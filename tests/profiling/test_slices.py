"""Taint-propagation slice analysis on crafted dataflow."""

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import OpClass
from repro.machine.machine import Machine, run_to_completion
from repro.profiling.slices import RedundancyTaintAnalyzer


def analyze(build_body, data=None):
    b = ProgramBuilder()
    for name, values in (data or {}).items():
        b.data(name, values)
    with b.function("main"):
        build_body(b)
        b.halt()
    machine = Machine(b.build())
    analyzer = RedundancyTaintAnalyzer()
    machine.add_observer(analyzer)
    run_to_completion(machine)
    return analyzer


def test_constants_are_untainted():
    def body(b):
        with b.scratch(2) as (x, y):
            b.li(x, 1)
            b.addi(y, x, 2)

    a = analyze(body)
    assert a.redundant_instructions == 0


def test_redundant_load_taints_forward_slice():
    def body(b):
        with b.scratch(3) as (base, v, w):
            b.la(base, "xs")
            b.ld(v, base, 0)      # first touch: clean
            b.ld(v, base, 0)      # redundant -> taints v
            b.addi(w, v, 1)       # all reg inputs tainted -> redundant
            b.add(w, w, w)        # still redundant

    a = analyze(body, {"xs": [5]})
    # redundant: second ld, addi, add
    assert a.redundant_instructions == 3
    assert a.redundant_by_class[OpClass.LOAD] == 1
    assert a.redundant_by_class[OpClass.IALU] == 2


def test_mixing_with_fresh_value_clears_taint():
    def body(b):
        with b.scratch(4) as (base, v, fresh, w):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.ld(v, base, 0)      # tainted
            b.li(fresh, 42)       # constant: untainted
            b.add(w, v, fresh)    # mixed inputs -> untainted

    a = analyze(body, {"xs": [5]})
    assert a.redundant_instructions == 1  # only the redundant load


def test_taint_propagates_through_memory():
    def body(b):
        with b.scratch(3) as (base, v, w):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.ld(v, base, 0)      # tainted
            b.st(v, base, 1)      # store of tainted value: redundant + taints word
            b.ld(w, base, 1)      # first touch of address BUT word is tainted

    a = analyze(body, {"xs": [5, 0]})
    # redundant: 2nd ld, st, final ld
    assert a.redundant_instructions == 3


def test_branch_on_tainted_inputs_is_redundant():
    def body(b):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.ld(v, base, 0)     # tainted
            b.beqz(v, "end")     # tainted branch
            b.label("end")

    a = analyze(body, {"xs": [5]})
    assert a.redundant_by_class[OpClass.BRANCH] == 1


def test_branch_on_fresh_inputs_is_not_redundant():
    def body(b):
        with b.scratch(1) as (v,):
            b.li(v, 0)
            b.beqz(v, "end")
            b.label("end")

    a = analyze(body)
    assert a.redundant_by_class[OpClass.BRANCH] == 0


def test_overwriting_tainted_register_clears_it():
    def body(b):
        with b.scratch(3) as (base, v, w):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.ld(v, base, 0)     # v tainted
            b.li(v, 3)           # v overwritten with a constant
            b.addi(w, v, 1)      # not redundant

    a = analyze(body, {"xs": [5]})
    assert a.redundant_instructions == 1


def test_fraction_and_summary():
    def body(b):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.ld(v, base, 0)

    a = analyze(body, {"xs": [5]})
    assert 0 < a.redundant_fraction < 1
    summary = a.summary()
    assert summary["redundant_instructions"] == a.redundant_instructions
    assert summary["total_instructions"] == a.total_instructions


def test_empty_analyzer():
    a = RedundancyTaintAnalyzer()
    assert a.redundant_fraction == 0.0


def test_contexts_have_independent_register_taint():
    # same analysis object observing two contexts must not leak taint
    from repro.machine.context import Context

    a = RedundancyTaintAnalyzer()
    t0 = a._taint_of(Context(0))
    t1 = a._taint_of(Context(1))
    t0[4] = True
    assert t1[4] is False
