"""Conversion advisor: does it point at the right trigger and region?"""

import pytest

from repro.profiling.advisor import advise
from repro.workloads.suite import SUITE


@pytest.fixture(scope="module")
def mcf_report():
    workload = SUITE["mcf"]
    return advise(workload.build_baseline(workload.make_input()))


def test_advisor_finds_the_refresh_region(mcf_report):
    """mcf's baseline does everything in main, so main must dominate; the
    interesting assertion is the redundancy attribution."""
    top = mcf_report.top_regions(1)[0]
    assert top.name == "main"
    assert top.redundancy > 0.9
    assert top.instruction_share > 0.9


def test_advisor_finds_a_highly_silent_store(mcf_report):
    """The arc-cost update store is ~91% silent — it must rank first."""
    top = mcf_report.top_triggers(1)[0]
    assert top.silent_fraction > 0.85
    assert top.dynamic >= 100  # executed once per simplex iteration


def test_region_profiles_are_complete(mcf_report):
    total = sum(r.dynamic_instructions
                for r in mcf_report.region_profiles.values())
    assert total > 0
    shares = [c.instruction_share for c in mcf_report.regions]
    assert abs(sum(shares) - 1.0) < 1e-9


def test_min_dynamic_stores_filters_initialization():
    workload = SUITE["mcf"]
    program = workload.build_baseline(workload.make_input())
    strict = advise(program, min_dynamic_stores=10_000_000)
    assert strict.triggers == []


def test_advisor_separates_thread_regions_in_dtt_builds():
    """On a DTT build (threads as separate functions), the advisor
    attributes the walk to the thread region, not main."""
    workload = SUITE["mcf"]
    build = workload.build_dtt(workload.make_input())
    report = advise(build.program, num_contexts=2, engine=build.engine())
    names = {c.name for c in report.regions}
    assert "thread:refresh" in names
    # most remaining redundancy sits in main's pricing loop now
    profiles = report.region_profiles
    assert profiles["thread:refresh"].dynamic_instructions > 0


def test_render_is_readable(mcf_report):
    text = mcf_report.render()
    assert "trigger candidates" in text
    assert "region candidates" in text
    assert "score" in text


def test_scores_are_sorted(mcf_report):
    trigger_scores = [c.score for c in mcf_report.triggers]
    region_scores = [c.score for c in mcf_report.regions]
    assert trigger_scores == sorted(trigger_scores, reverse=True)
    assert region_scores == sorted(region_scores, reverse=True)


# -- sampled profiles: confidence-interval-aware ranking -----------------------


def test_sampled_advise_carries_ci_and_ranks_by_lower_bound():
    workload = SUITE["mcf"]
    program = workload.build_baseline(workload.make_input())
    report = advise(program, sample_rate=4, sample_seed=7)
    assert report.triggers
    for candidate in report.triggers:
        assert candidate.score_ci_low is not None
        assert candidate.score_ci_high is not None
        assert candidate.score_ci_low <= candidate.score_ci_high
        assert candidate.rank_key == candidate.score_ci_low
    keys = [c.rank_key for c in report.triggers]
    assert keys == sorted(keys, reverse=True)
    # the flagship trigger still wins under sampling
    assert report.triggers[0].silent_fraction > 0.5


def test_exact_advise_has_no_ci(mcf_report):
    for candidate in mcf_report.triggers:
        assert candidate.score_ci_low is None
        assert candidate.rank_key == candidate.score
