"""Redundant-load / silent-store profiler on crafted access sequences."""

from repro.isa.builder import ProgramBuilder
from repro.machine.machine import Machine, run_to_completion
from repro.profiling.redundancy import RedundantLoadProfiler


def profile(build_body, data=None):
    b = ProgramBuilder()
    for name, values in (data or {}).items():
        b.data(name, values)
    with b.function("main"):
        build_body(b)
        b.halt()
    machine = Machine(b.build())
    profiler = RedundantLoadProfiler()
    machine.add_observer(profiler)
    run_to_completion(machine)
    return profiler


def test_first_load_of_an_address_is_not_redundant():
    def body(b):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)

    p = profile(body, {"xs": [5]})
    assert p.total_loads == 1
    assert p.redundant_loads == 0


def test_reload_of_unchanged_data_is_redundant():
    def body(b):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.ld(v, base, 0)
            b.ld(v, base, 0)

    p = profile(body, {"xs": [5]})
    assert p.redundant_loads == 2
    assert p.redundant_load_fraction == 2 / 3


def test_reload_after_value_change_is_not_redundant():
    def body(b):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.li(v, 99)
            b.st(v, base, 0)
            b.ld(v, base, 0)  # value changed: not redundant

    p = profile(body, {"xs": [5]})
    assert p.redundant_loads == 0


def test_reload_after_silent_store_is_redundant():
    def body(b):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.st(v, base, 0)   # silent: rewrites 5
            b.ld(v, base, 0)   # still redundant

    p = profile(body, {"xs": [5]})
    assert p.redundant_loads == 1
    assert p.silent_stores == 1
    assert p.silent_store_fraction == 1.0


def test_streaming_loop_over_unchanged_array_is_fully_redundant_second_pass():
    def body(b):
        with b.scratch(3) as (base, i, v):
            b.la(base, "xs")
            for _pass in range(2):
                with b.for_range(i, 0, 8):
                    b.ldx(v, base, i)

    p = profile(body, {"xs": list(range(8))})
    # pass 1: 8 first-touches; pass 2: 8 redundant
    assert p.total_loads == 16
    assert p.redundant_loads == 8


def test_distinct_static_sites_share_location_state():
    # two different static loads of the same address: the second sees the
    # value "already fetched" and is redundant under the per-location
    # definition
    def body(b):
        with b.scratch(3) as (base, v, w):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.ld(w, base, 0)  # different static pc

    p = profile(body, {"xs": [5]})
    assert p.redundant_loads == 1
    assert len(p.load_sites()) == 2


def test_site_attribution():
    def body(b):
        with b.scratch(3) as (base, i, v):
            b.la(base, "xs")
            with b.for_range(i, 0, 4):
                b.ldx(v, base, 0)  # one hot site

    p = profile(body, {"xs": [5]})
    sites = p.load_sites()
    hot = sites[0]
    assert hot.dynamic == 4
    assert hot.redundant == 3
    assert hot.redundant_fraction == 0.75
    assert p.hottest_redundant_loads(1)[0] is hot


def test_store_site_records_triggering_flag():
    def body(b):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 5)
            b.st(v, base, 0)
            b.tst(v, base, 0)

    p = profile(body, {"xs": [5]})
    sites = p.store_sites()
    assert {s.triggering for s in sites} == {True, False}
    assert all(s.silent == 1 for s in sites)
    assert sites[0].silent_fraction == 1.0


def test_summary_fields():
    def body(b):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.ld(v, base, 0)

    p = profile(body, {"xs": [5]})
    summary = p.summary()
    assert summary["total_loads"] == 2
    assert summary["redundant_loads"] == 1
    assert summary["redundant_load_fraction"] == 0.5
    assert summary["total_instructions"] == p.total_instructions


def test_empty_profiler_fractions_are_zero():
    p = RedundantLoadProfiler()
    assert p.redundant_load_fraction == 0.0
    assert p.silent_store_fraction == 0.0
