"""profile_program: the one-call profiling entry point."""

from repro.isa.builder import ProgramBuilder
from repro.profiling.report import profile_program


def _rescan_program(passes=3):
    b = ProgramBuilder()
    b.data("xs", list(range(16)))
    with b.function("main"):
        with b.scratch(4) as (base, p, i, v):
            b.la(base, "xs")
            with b.for_range(p, 0, passes):
                with b.for_range(i, 0, 16):
                    b.ldx(v, base, i)
            b.out(v)
        b.halt()
    return b.build()


def test_profile_program_basic():
    report = profile_program(_rescan_program(), name="rescan")
    assert report.name == "rescan"
    assert report.output == [15]
    assert report.instructions > 0
    # 3 passes: first is first-touch, next two redundant -> 2/3
    assert abs(report.redundant_load_fraction - 2 / 3) < 0.01


def test_report_exposes_both_analyses():
    report = profile_program(_rescan_program())
    assert 0 <= report.redundant_computation_fraction <= 1
    assert 0 <= report.silent_store_fraction <= 1
    summary = report.summary()
    assert summary["redundant_load_fraction"] == report.redundant_load_fraction
    assert "redundant_computation_fraction" in summary


def test_profile_with_engine_sees_dtt_build():
    """Profiling a DTT build through a synchronous engine works."""
    from tests.conftest import build_dtt_sum, expected_dtt_sum
    from repro.core.engine import DttEngine
    from repro.core.registry import ThreadRegistry

    program, spec = build_dtt_sum([1, 2, 3], [0, 0, 1], [5, 5, 2])
    engine = DttEngine(ThreadRegistry([spec]))
    report = profile_program(program, "dtt", engine=engine, num_contexts=2)
    assert report.output == expected_dtt_sum([1, 2, 3], [0, 0, 1], [5, 5, 2])
