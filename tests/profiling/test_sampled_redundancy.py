"""Sampled redundancy profiler: CI containment, determinism, memory bound.

The acceptance bar for bounded-memory profiling: at a sampling rate of
1/64, every suite workload's *exact* E1 fractions must fall inside the
sampled profiler's own 95 % confidence intervals, and the profiler's
state must stay within a fixed budget regardless of footprint.
"""

import json
import subprocess
import sys

import pytest

from repro.isa.builder import ProgramBuilder
from repro.machine.machine import Machine, run_to_completion
from repro.profiling.redundancy import (RedundantLoadProfiler,
                                        SampledRedundantLoadProfiler)
from repro.profiling.report import profile_program
from repro.workloads.suite import SUITE


def run_profiler(profiler, build_body, data=None):
    b = ProgramBuilder()
    for name, values in (data or {}).items():
        b.data(name, values)
    with b.function("main"):
        build_body(b)
        b.halt()
    machine = Machine(b.build())
    machine.add_observer(profiler)
    run_to_completion(machine)
    return profiler


def sweep_body(b):
    """Load a 64-word array three times without changing it."""
    with b.scratch(3) as (base, i, v):
        b.la(base, "xs")
        for _ in range(3):
            with b.for_range(i, 0, 64):
                b.ldx(v, base, i)


def test_rate_one_matches_exact_profiler():
    exact = run_profiler(RedundantLoadProfiler(), sweep_body,
                         {"xs": list(range(64))})
    sampled = run_profiler(SampledRedundantLoadProfiler(sample_rate=1),
                           sweep_body, {"xs": list(range(64))})
    assert sampled.total_loads == exact.total_loads
    assert sampled.sampled_loads == exact.total_loads
    assert sampled.sampled_redundant == exact.redundant_loads
    assert sampled.redundant_load_fraction == \
        pytest.approx(exact.redundant_load_fraction)
    assert sampled.load_estimate.contains(exact.redundant_load_fraction)


def test_sampled_classification_is_exact_per_address():
    # for sampled addresses the redundancy decision must equal the exact
    # profiler's: same-value reload redundant, first load never
    sampled = run_profiler(SampledRedundantLoadProfiler(sample_rate=1),
                           sweep_body, {"xs": list(range(64))})
    # three sweeps of 64 addresses: first sweep cold, two fully redundant
    assert sampled.total_loads == 192
    assert sampled.sampled_redundant == 128
    assert sampled.tracked_addresses == 64


def test_memory_budget_is_enforced():
    profiler = run_profiler(
        SampledRedundantLoadProfiler(sample_rate=1,
                                     max_tracked_addresses=10),
        sweep_body, {"xs": list(range(64))})
    assert profiler.tracked_addresses == 10
    assert profiler.tracked_addresses_capped > 0
    # capped loads are excluded from trials, not misclassified
    assert profiler.sampled_loads + profiler.tracked_addresses_capped == \
        profiler.total_loads


@pytest.mark.parametrize("workload", sorted(SUITE))
def test_exact_fraction_inside_sampled_ci(workload):
    wl = SUITE[workload]
    inp = wl.make_input()
    exact = profile_program(wl.build_baseline(inp), workload)
    sampled = profile_program(wl.build_baseline(inp), workload,
                              sample_rate=64)
    loads = sampled.loads
    assert loads.load_estimate.contains(exact.loads.redundant_load_fraction), (
        f"{workload}: exact={exact.loads.redundant_load_fraction:.4f} "
        f"outside {loads.load_estimate!r}")
    assert loads.store_estimate.contains(exact.loads.silent_store_fraction), (
        f"{workload}: exact silent-store fraction outside "
        f"{loads.store_estimate!r}")


def test_sampled_summary_is_superset_of_exact_summary():
    wl = SUITE["gzip"]
    inp = wl.make_input()
    exact_keys = set(profile_program(wl.build_baseline(inp),
                                     "gzip").loads.summary())
    sampled = profile_program(wl.build_baseline(inp), "gzip",
                              sample_rate=64).loads
    summary = sampled.summary()
    assert exact_keys <= set(summary)
    assert summary["sample_rate"] == 64
    for key in ("redundant_load_fraction_ci_low",
                "redundant_load_fraction_ci_high",
                "redundant_load_fraction_ci_width",
                "silent_store_fraction_ci_width"):
        assert key in summary
    provenance = sampled.provenance()
    assert provenance["estimator"] == "cluster-coverage"
    assert 0.0 <= provenance["load_coverage"] <= 1.0


def test_site_estimates_carry_cluster_aware_cis():
    profiler = run_profiler(SampledRedundantLoadProfiler(sample_rate=1),
                            sweep_body, {"xs": list(range(64))})
    sites = profiler.load_sites()  # one static ldx per unrolled sweep
    assert len(sites) == 3
    assert sum(site.dynamic for site in sites) == 192
    for site in sites:
        assert site.sampled_addresses == 64
        estimate = site.estimate
        assert estimate.contains(site.redundant_fraction)
        # count consumers see a scaled estimate
        assert site.redundant == round(site.dynamic * site.redundant_fraction)


def test_sampled_profile_is_deterministic_across_processes():
    wl = SUITE["mcf"]
    inp = wl.make_input()
    local = profile_program(wl.build_baseline(inp), "mcf",
                            sample_rate=64, sample_seed=11).loads.summary()
    script = (
        "import json\n"
        "from repro.profiling.report import profile_program\n"
        "from repro.workloads.suite import SUITE\n"
        "wl = SUITE['mcf']\n"
        "p = profile_program(wl.build_baseline(wl.make_input()), 'mcf',\n"
        "                    sample_rate=64, sample_seed=11)\n"
        "print(json.dumps(p.loads.summary(), sort_keys=True))\n"
    )
    output = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        check=True).stdout
    assert json.loads(output) == json.loads(json.dumps(local))
