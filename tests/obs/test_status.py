"""Live telemetry: heartbeat lifecycle, ETA math, failure isolation."""

import json

from repro.obs.status import ETA_ALPHA, StatusFile, read_status


def _status(tmp_path, **kwargs):
    kwargs.setdefault("min_interval", 0.0)  # every tick flushes in tests
    return StatusFile(str(tmp_path / "status.json"), **kwargs)


def test_construction_writes_an_initial_heartbeat(tmp_path):
    status = _status(tmp_path)
    data = read_status(status.path)
    assert data["status"] == "running"
    assert data["runs_completed"] == 0
    assert data["phase"] is None
    assert data["pid"] > 0


def test_disabled_status_never_touches_disk(tmp_path):
    status = StatusFile(None)
    assert not status.enabled
    status.set_total(5)
    status.complete_run("mcf:dtt:smt2", 0.5)
    status.finish()
    assert list(tmp_path.iterdir()) == []
    assert StatusFile("").enabled is False


def test_run_ticks_accumulate_and_track_peaks(tmp_path):
    status = _status(tmp_path)
    status.set_total(3)
    status.begin_phase("plan")
    status.complete_run("mcf:baseline:smt2", 1.0, instructions=1000,
                        queue_depth=2)
    status.complete_run("mcf:dtt:smt2", 1.0, instructions=2000,
                        queue_depth=5)
    status.complete_run("equake:dtt:smt2", 1.0, queue_depth=1)
    data = read_status(status.path)
    assert data["runs_completed"] == 3
    assert data["instructions_retired"] == 3000
    assert data["queue_depth"] == 1
    assert data["peak_queue_depth"] == 5
    assert data["phase"] == "equake:dtt:smt2"


def test_eta_is_remaining_times_ewma(tmp_path):
    status = _status(tmp_path)
    status.set_total(4)
    status.complete_run("a", 2.0)
    assert status.snapshot()["eta_seconds"] == 3 * 2.0
    status.complete_run("b", 4.0)
    expected = ETA_ALPHA * 4.0 + (1 - ETA_ALPHA) * 2.0
    assert status.snapshot()["eta_seconds"] == round(2 * expected, 3)


def test_cached_runs_advance_completion_but_not_the_ewma(tmp_path):
    status = _status(tmp_path)
    status.set_total(10)
    status.complete_run("a", 2.0)
    status.note_cached(8)
    data = read_status(status.path)
    assert data["runs_completed"] == 9
    assert data["ewma_run_seconds"] == 2.0
    assert data["eta_seconds"] == 2.0  # one run left at 2 s each


def test_finish_is_terminal_and_always_flushed(tmp_path):
    status = StatusFile(str(tmp_path / "status.json"), min_interval=3600.0)
    status.complete_run("a", 1.0)  # throttled away
    status.finish("done")
    data = read_status(status.path)
    assert data["status"] == "done"
    assert data["eta_seconds"] == 0.0
    assert data["runs_completed"] == 1
    failed = _status(tmp_path)
    failed.finish("failed")
    assert read_status(failed.path)["status"] == "failed"
    assert read_status(failed.path)["eta_seconds"] is None


def test_throttle_coalesces_ticks(tmp_path):
    status = StatusFile(str(tmp_path / "status.json"), min_interval=3600.0)
    for i in range(5):
        status.complete_run("a", 0.1)
    # the initial forced write is still on disk, ticks coalesced
    assert read_status(status.path)["runs_completed"] == 0
    assert status.state["runs_completed"] == 5


def test_heartbeat_file_is_always_complete_json(tmp_path):
    status = _status(tmp_path)
    for i in range(20):
        status.complete_run("a", 0.01, instructions=100)
        data = json.loads(open(status.path).read())  # never torn
        assert data["runs_completed"] == i + 1


def test_unwritable_path_disables_telemetry_not_the_run(tmp_path):
    target = tmp_path / "gone" / "status.json"
    status = StatusFile(str(target))
    # the directory vanishes mid-run: writes silently stop
    assert status.path is None or not target.exists()
    status.complete_run("a", 1.0)
    status.finish()  # must not raise


def test_summary_condenses_for_the_manifest(tmp_path):
    status = _status(tmp_path)
    status.set_total(2)
    status.complete_run("a", 1.0, instructions=5000, queue_depth=3)
    status.finish("done")
    summary = status.summary()
    assert summary["status"] == "done"
    assert summary["runs_completed"] == 1
    assert summary["runs_total"] == 2
    assert summary["instructions_retired"] == 5000
    assert summary["peak_queue_depth"] == 3
    assert summary["status_file"] == status.path
    assert summary["throughput_instructions_per_sec"] == 5000.0


def test_read_status_tolerates_absence_and_garbage(tmp_path):
    assert read_status(str(tmp_path / "missing.json")) is None
    bad = tmp_path / "bad.json"
    bad.write_text("{torn")
    assert read_status(str(bad)) is None
    bad.write_text("[1, 2]")
    assert read_status(str(bad)) is None
