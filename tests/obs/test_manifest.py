"""Run manifests: fingerprints, phase timings, result round-trip."""

import json

import pytest

from repro.harness.results import ExperimentResult
from repro.harness.runner import SuiteRunner
from repro.obs.manifest import RunManifest, fingerprint_of
from repro.workloads.suite import SUITE


@pytest.fixture(scope="module")
def runner():
    r = SuiteRunner()
    r.timed(SUITE["perlbmk"], "baseline")
    r.timed(SUITE["perlbmk"], "dtt")
    return r


def test_from_runner_captures_cache_and_phases(runner):
    manifest = RunManifest.from_runner(runner, "E3")
    assert manifest.experiment_id == "E3"
    assert manifest.cache_misses == 2
    assert manifest.cache_hits >= 1  # dtt's correctness check hits baseline
    assert "perlbmk:baseline:smt2" in manifest.phase_seconds
    assert "perlbmk:dtt:smt2" in manifest.phase_seconds
    assert manifest.total_seconds > 0


def test_fingerprint_is_stable_and_content_sensitive(runner):
    a = RunManifest.from_runner(runner)
    b = RunManifest.from_runner(runner)
    assert a.fingerprint == b.fingerprint
    assert len(a.fingerprint) == 64

    other = SuiteRunner(seed=99)
    other.timed(SUITE["perlbmk"], "baseline")
    assert RunManifest.from_runner(other).fingerprint != a.fingerprint


def test_fingerprint_of_is_order_insensitive():
    assert fingerprint_of({"a": 1, "b": 2}) == fingerprint_of({"b": 2, "a": 1})
    assert fingerprint_of({"a": 1}) != fingerprint_of({"a": 2})


def test_manifest_round_trips_through_experiment_result(runner):
    result = ExperimentResult("EX", "test", ["col"], [[1]])
    result.manifest = RunManifest.from_runner(runner, "EX")
    payload = json.loads(result.to_json())
    manifest = payload["manifest"]
    assert manifest["schema_version"] == RunManifest.SCHEMA_VERSION
    assert manifest["experiment"] == "EX"
    assert manifest["fingerprint"] == result.manifest.fingerprint
    assert manifest["cache_misses"] == 2
    assert set(manifest["phase_seconds"]) == set(
        result.manifest.phase_seconds)
    assert manifest["peak_queue_depth"] >= 0


def test_result_without_manifest_omits_the_key():
    result = ExperimentResult("EX", "test", ["col"], [[1]])
    assert "manifest" not in json.loads(result.to_json())


def test_peak_queue_depth_reflects_engines(runner):
    manifest = RunManifest.from_runner(runner)
    engine = runner.engine_for(SUITE["perlbmk"], "dtt")
    assert manifest.peak_queue_depth == engine.queue.depth_high_water


# -- schema v3: trace health + causal summary ---------------------------------


def test_untraced_manifest_has_no_causal_summary(runner):
    manifest = RunManifest.from_runner(runner)
    assert manifest.causal is None
    assert manifest.trace_dropped_events == 0
    assert manifest.unmatched_closers == 0
    payload = manifest.as_dict()
    assert payload["causal"] is None
    assert payload["schema_version"] == 7


def test_traced_manifest_carries_causal_summary():
    traced = SuiteRunner(trace=True)
    traced.timed(SUITE["mcf"], "baseline")
    traced.timed(SUITE["mcf"], "dtt")
    manifest = RunManifest.from_runner(traced, "EX")
    assert manifest.causal is not None
    assert manifest.causal["traces"] == 1
    assert manifest.causal["activations"] > 0
    assert manifest.causal["latency_unit"] in ("cycles", "events")
    assert manifest.trace_dropped_events == 0
    assert manifest.unmatched_closers == 0
    payload = manifest.as_dict()
    assert payload["causal"]["activations"] == \
        manifest.causal["activations"]
    json.dumps(payload)  # everything JSON-serializable


# -- schema v4: static-analysis summaries -------------------------------------


def test_manifest_carries_analysis_summaries(runner):
    manifest = RunManifest.from_runner(runner, "EX")
    assert manifest.analysis == [{
        "errors": 0, "warnings": 0, "codes": {},
        "workload": "perlbmk", "kind": "dtt",
    }]
    assert manifest.as_dict()["analysis"] == manifest.analysis


def test_baseline_only_runner_has_no_analysis_rows():
    r = SuiteRunner()
    r.timed(SUITE["perlbmk"], "baseline")
    assert RunManifest.from_runner(r).analysis == []


def test_ad_hoc_workloads_are_skipped_not_fatal():
    # E9 times workloads that are not in the bundled suite registry; the
    # manifest must simply omit them rather than fail name resolution
    from repro.workloads.overlap import OverlapWorkload

    r = SuiteRunner()
    r.timed(OverlapWorkload(), "dtt")
    r.timed(SUITE["mcf"], "dtt")
    manifest = RunManifest.from_runner(r)
    assert [row["workload"] for row in manifest.analysis] == ["mcf"]


def test_truncated_trace_surfaces_dropped_events():
    from repro.core.trace import EngineTrace

    traced = SuiteRunner(trace=True)
    traced.timed(SUITE["mcf"], "baseline")
    traced.timed(SUITE["mcf"], "dtt")
    trace = traced.trace_for("mcf", "dtt")
    # simulate a filled buffer: shrink and re-record one overflow event
    trace.max_events = len(trace.events)
    trace.record("tstore", "x")
    manifest = RunManifest.from_runner(traced)
    assert manifest.trace_dropped_events == 1
    assert manifest.as_dict()["trace_dropped_events"] == 1


# -- schema v6: autoconvert provenance ----------------------------------------


def test_manifest_carries_autoconvert_provenance():
    r = SuiteRunner()
    r.note_autoconvert("mcf", {
        "considered": 2,
        "accepted": [{"region_start": 10, "region_end": 29}],
        "rejected": {"no-cycle-win": 1},
        "speedup": 5.977,
        "elimination": 0.918,
    })
    manifest = RunManifest.from_runner(r, "EX")
    (entry,) = manifest.autoconvert
    assert entry["workload"] == "mcf"
    assert entry["considered"] == 2
    assert entry["rejected"] == {"no-cycle-win": 1}
    payload = manifest.as_dict()
    assert payload["schema_version"] == 7
    assert payload["autoconvert"] == manifest.autoconvert
    json.dumps(payload)  # provenance stays JSON-serializable


def test_unconverted_run_has_empty_autoconvert(runner):
    manifest = RunManifest.from_runner(runner)
    assert manifest.autoconvert == []
    assert manifest.as_dict()["autoconvert"] == []


def test_runner_clear_drops_autoconvert_notes():
    r = SuiteRunner()
    r.note_autoconvert("mcf", {"considered": 1})
    r.clear()
    assert RunManifest.from_runner(r).autoconvert == []


# -- schema v7: history provenance + heartbeat summary -------------------------


def test_schema_is_v7():
    assert RunManifest.SCHEMA_VERSION == 7


def test_manifest_carries_history_provenance(runner):
    runner.note_history("a" * 64, "bench_autoconvert",
                        "benchmarks/history/bench_autoconvert.jsonl")
    try:
        manifest = RunManifest.from_runner(runner, "convert")
        data = manifest.as_dict()
        assert data["schema_version"] == 7
        (row,) = data["history"]
        assert row["record_id"] == "a" * 64
        assert row["kind"] == "bench_autoconvert"
        assert row["path"].endswith(".jsonl")
    finally:
        runner.clear()
        runner.timed(SUITE["perlbmk"], "baseline")
        runner.timed(SUITE["perlbmk"], "dtt")


def test_unwired_run_has_empty_history_and_no_status(runner):
    manifest = RunManifest.from_runner(runner)
    assert manifest.history == []
    assert manifest.status is None
    data = manifest.as_dict()
    assert data["history"] == [] and data["status"] is None


def test_manifest_carries_status_summary(tmp_path):
    from repro.obs.status import StatusFile

    status = StatusFile(str(tmp_path / "status.json"), min_interval=0.0)
    runner = SuiteRunner(status=status)
    runner.timed(SUITE["perlbmk"], "baseline")
    runner.timed(SUITE["perlbmk"], "dtt")
    status.finish("done")
    manifest = RunManifest.from_runner(runner)
    assert manifest.status["status"] == "done"
    # baseline + dtt + the dtt path's baseline correctness run are all
    # real executions ticked through the status file
    assert manifest.status["runs_completed"] >= 2
    assert manifest.status["instructions_retired"] > 0
    assert manifest.status["status_file"] == status.path


def test_runner_accepts_a_status_path_string(tmp_path):
    target = tmp_path / "status.json"
    runner = SuiteRunner(status=str(target))
    assert runner.status is not None and runner.status.enabled
    assert target.exists()
    runner.timed(SUITE["perlbmk"], "baseline")
    assert runner.status_summary()["status"] == "running"


def test_runner_clear_drops_history_notes():
    runner = SuiteRunner()
    runner.note_history("b" * 64, "results", "hist/results.jsonl")
    assert runner.history_provenance()
    runner.clear()
    assert runner.history_provenance() == []
