"""Causal graph construction, lineage walks, and summaries."""

import pytest

from repro.core import trace as T
from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry
from repro.core.trace import EngineTrace
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion
from repro.obs.causality import (OUTCOME_ABSORBED, OUTCOME_COMPLETED,
                                 CausalGraph, bucket_histogram,
                                 causal_summary, merge_histograms)

from tests.conftest import build_dtt_sum


class _FakeEngine:
    def attach_trace(self, trace):
        pass


@pytest.fixture
def hand_trace():
    """A hand-built trace: one completed activation that absorbed a
    duplicate, plus one same-value suppression and a clean consume."""
    tr = EngineTrace(_FakeEngine())
    tr.record(T.TSTORE, "thr", address=10, detail="0->1", pc=5)
    tr.record(T.FIRED, "thr", address=10, detail="0->1", activation_id=1,
              pc=5)
    tr.record(T.ENQUEUED, "thr", address=10, activation_id=1, detail="pos=1")
    tr.record(T.TSTORE, "thr", address=10, detail="1->2", pc=5)
    tr.record(T.FIRED, "thr", address=10, detail="1->2", activation_id=2,
              pc=5)
    tr.record(T.DUPLICATE, "thr", address=10, activation_id=2, cause_id=1,
              detail="absorbed by pending activation", pc=5)
    tr.record(T.TSTORE, "thr", address=10, detail="2->2", pc=5)
    tr.record(T.SUPPRESSED, "thr", address=10, pc=5)
    tr.record(T.DISPATCHED, "thr", activation_id=1, detail="context 1")
    tr.record(T.COMPLETED, "thr", activation_id=1)
    tr.record(T.CONSUME_CLEAN, "thr", address=10)
    return tr


def test_graph_reconstructs_outcomes(hand_trace):
    graph = CausalGraph.from_trace(hand_trace)
    assert len(graph.activations) == 2
    assert graph.activations[1].outcome == OUTCOME_COMPLETED
    assert graph.activations[2].outcome == OUTCOME_ABSORBED
    assert graph.consume_clean == 1
    assert len(graph.suppressions) == 1


def test_absorption_is_bidirectional(hand_trace):
    graph = CausalGraph.from_trace(hand_trace)
    assert graph.activations[2].absorbed_into == 1
    assert graph.activations[1].absorbed == [2]


def test_lineage_walks_the_absorption_chain(hand_trace):
    graph = CausalGraph.from_trace(hand_trace)
    assert [a.activation_id for a in graph.lineage(2)] == [2, 1]
    assert [a.activation_id for a in graph.lineage(1)] == [1]


def test_latency_breakdown(hand_trace):
    graph = CausalGraph.from_trace(hand_trace)
    act = graph.activations[1]
    # fired at seq 2, dispatched at seq 9, completed at seq 10
    assert act.queue_wait == 7
    assert act.execute_time == 1
    assert act.latency_unit == "events"
    stats = graph.latency_stats()
    assert stats["queue_wait"]["count"] == 1
    assert stats["queue_wait"]["mean"] == 7.0


def test_cycles_preferred_over_sequence_ticks():
    tr = EngineTrace(_FakeEngine())
    tr.record(T.FIRED, "thr", address=1, activation_id=1, cycle=100)
    tr.record(T.DISPATCHED, "thr", activation_id=1, cycle=130)
    tr.record(T.COMPLETED, "thr", activation_id=1, cycle=190)
    graph = CausalGraph.from_trace(tr)
    act = graph.activations[1]
    assert act.latency_unit == "cycles"
    assert act.queue_wait == 30
    assert act.execute_time == 60


def test_at_address_collects_both_kinds(hand_trace):
    graph = CausalGraph.from_trace(hand_trace)
    acts, sups = graph.at_address(10)
    assert len(acts) == 2
    assert len(sups) == 1
    assert graph.at_address(999) == ([], [])


def test_site_attribution_aggregates_by_pc(hand_trace):
    graph = CausalGraph.from_trace(hand_trace)
    sites = graph.site_attribution()
    assert len(sites) == 1
    row = sites[0]
    assert row["pc"] == 5
    assert row["fired"] == 2
    assert row["absorbed"] == 1
    assert row["completed"] == 1
    assert row["suppressed"] == 1


def test_site_attribution_joins_profiler_stats(hand_trace):
    class _Stats:
        def __init__(self):
            self.pc, self.dynamic, self.silent = 5, 40, 12

    class _Profiler:
        def store_sites(self):
            return [_Stats()]

    graph = CausalGraph.from_trace(hand_trace)
    row = graph.site_attribution(_Profiler())[0]
    assert row["dynamic_stores"] == 40
    assert row["silent_stores"] == 12


def test_canceled_activation_records_canceler():
    tr = EngineTrace(_FakeEngine())
    tr.record(T.FIRED, "thr", address=1, activation_id=1)
    tr.record(T.DISPATCHED, "thr", activation_id=1, detail="context 1")
    tr.record(T.FIRED, "thr", address=1, activation_id=2)
    tr.record(T.CANCELED, "thr", activation_id=1, cause_id=2)
    graph = CausalGraph.from_trace(tr)
    assert graph.activations[1].outcome == "canceled"
    assert graph.activations[1].canceled_by == 2
    assert 1 in graph.activations[2].absorbed


def test_summary_counts(hand_trace):
    summary = CausalGraph.from_trace(hand_trace).summary()
    assert summary["activations"] == 2
    assert summary["completed"] == 1
    assert summary["absorbed"] == 1
    assert summary["suppressed_silent"] == 1
    assert summary["dropped_events"] == 0
    assert sum(c for _l, c in summary["queue_wait_hist"]) == 1


def test_bucket_histogram_shape():
    hist = bucket_histogram([1, 1, 3, 300])
    as_dict = dict(hist)
    assert as_dict["<=1"] == 2
    assert as_dict["<=4"] == 1
    assert as_dict[">256"] == 1
    assert sum(as_dict.values()) == 4


def test_merge_histograms_sums_by_label():
    a = bucket_histogram([1, 2])
    b = bucket_histogram([2, 500])
    merged = dict(merge_histograms(a, b))
    assert merged["<=1"] == 1
    assert merged["<=2"] == 2
    assert merged[">256"] == 1
    assert merge_histograms([], a) == a


def test_causal_summary_merges_traces(hand_trace):
    merged = causal_summary([("a", hand_trace), ("b", hand_trace)])
    assert merged["traces"] == 2
    assert merged["activations"] == 4
    assert merged["completed"] == 2
    assert merged["mean_queue_wait"] == 7.0
    assert merged["max_queue_wait"] == 7
    assert dict(merged["queue_wait_hist"])["<=8"] == 2


def test_causal_summary_of_nothing():
    merged = causal_summary([])
    assert merged["traces"] == 0
    assert merged["mean_queue_wait"] is None


# -- against a real engine run ------------------------------------------------


def _real_traced_run(values, idx, val, deferred=False):
    program, spec = build_dtt_sum(list(values), list(idx), list(val))
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]), deferred=deferred)
    tracer = EngineTrace(engine)
    machine.attach_engine(engine)
    if deferred:
        main = machine.main_context
        while main.state is not ContextState.HALTED:
            engine.dispatch_pending()
            for ctx in machine.contexts:
                if ctx.state is ContextState.RUNNING:
                    machine.step(ctx)
    else:
        run_to_completion(machine)
    return tracer


def test_graph_from_real_deferred_run():
    tracer = _real_traced_run([1, 2, 3], [0, 1, 2], [9, 8, 7], deferred=True)
    graph = CausalGraph.from_trace(tracer)
    assert graph.activations
    for act in graph.activations.values():
        if act.outcome == OUTCOME_COMPLETED:
            assert act.dispatched_seq is not None
            assert act.queue_wait is not None
            assert act.queue_wait >= 0


def test_real_run_silent_store_becomes_suppression():
    tracer = _real_traced_run([7, 8], [0], [7])
    graph = CausalGraph.from_trace(tracer)
    assert not graph.activations
    assert len(graph.suppressions) == 1
    assert graph.consume_clean == 1
