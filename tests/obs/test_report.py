"""Explain rendering and the self-contained HTML report."""

from html.parser import HTMLParser

import pytest

from repro.core import trace as T
from repro.core.trace import EngineTrace
from repro.obs.causality import CausalGraph
from repro.obs.report import (html_report, render_activation_list,
                              render_explain_activation,
                              render_explain_address)


class _FakeEngine:
    def attach_trace(self, trace):
        pass


@pytest.fixture
def graph():
    tr = EngineTrace(_FakeEngine())
    tr.record(T.TSTORE, "thr", address=10, detail="0->1", pc=5)
    tr.record(T.FIRED, "thr", address=10, detail="0->1", activation_id=1,
              pc=5)
    tr.record(T.ENQUEUED, "thr", address=10, activation_id=1, detail="pos=1")
    tr.record(T.FIRED, "thr", address=10, detail="1->2", activation_id=2,
              pc=5)
    tr.record(T.DUPLICATE, "thr", address=10, activation_id=2, cause_id=1,
              detail="absorbed by pending activation", pc=5)
    tr.record(T.SUPPRESSED, "thr", address=10, pc=5)
    tr.record(T.DISPATCHED, "thr", activation_id=1, detail="context 1")
    tr.record(T.COMPLETED, "thr", activation_id=1)
    return CausalGraph.from_trace(tr)


# -- explain ------------------------------------------------------------------


def test_explain_activation_shows_full_lineage(graph):
    text = render_explain_activation(graph, 1)
    assert "activation #1" in text
    assert "pc=5" in text              # triggering store site
    assert "registry match" in text    # match step
    assert "position 1" in text        # enqueue position
    assert "context 1" in text         # dispatch target
    assert "completed" in text         # outcome
    assert "#2" in text                # the duplicate it covered


def test_explain_absorbed_activation(graph):
    text = render_explain_activation(graph, 2)
    assert "absorbed by activation #1" in text
    assert "#2 -> #1" in text


def test_explain_unknown_activation(graph):
    text = render_explain_activation(graph, 42)
    assert "not found" in text
    assert "1..2" in text


def test_explain_address_names_suppression(graph):
    text = render_explain_address(graph, 10)
    assert "same-value" in text
    assert "2 activation(s) fired" in text


def test_explain_unknown_address(graph):
    assert "no triggering-store activity" in render_explain_address(graph, 77)


def test_activation_list(graph):
    text = render_activation_list(graph, "mcf:dtt:smt2")
    assert "mcf:dtt:smt2" in text
    assert "#1:" in text
    assert "#2:" in text


# -- the HTML report ----------------------------------------------------------


class _StrictParser(HTMLParser):
    """Asserts well-nested tags and collects text."""

    _VOID = {"meta", "br", "hr", "img", "link", "input"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.text = []

    def handle_starttag(self, tag, attrs):
        if tag not in self._VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        assert self.stack and self.stack[-1] == tag, \
            f"mismatched </{tag}>, open: {self.stack[-3:]}"
        self.stack.pop()

    def handle_data(self, data):
        self.text.append(data)


def _parse(html_text):
    parser = _StrictParser()
    parser.feed(html_text)
    parser.close()
    assert not parser.stack, f"unclosed tags: {parser.stack}"
    return "".join(parser.text)


def _store_entry(canonical, kind="timed", payload=None):
    return {"store_schema": 2, "kind": kind, "canonical": canonical,
            "elapsed_seconds": 0.5, "payload": payload or {"cycles": 1234}}


def _result(experiment="E1", manifest=None):
    return {
        "experiment": experiment,
        "title": "a title",
        "paper_claim": "78% of all loads fetch redundant data",
        "checks": [{"name": "range check", "passed": True,
                    "detail": "value=0.78"}],
        "manifest": manifest,
    }


def test_html_parses_and_names_every_run():
    entries = [_store_entry("mcf:dtt:smt2:seed=:scale="),
               _store_entry("art:baseline:smt2:seed=:scale=")]
    text = _parse(html_report(entries, [_result()]))
    assert "mcf:dtt:smt2" in text
    assert "art:baseline:smt2" in text
    assert "78% of all loads" in text   # paper-claimed column
    assert "range check" in text        # measured column
    assert "PASS" in text


def test_html_escapes_untrusted_content():
    entry = _store_entry("x<script>alert(1)</script>")
    html_text = html_report([entry], None)
    assert "<script>" not in html_text
    assert "&lt;script&gt;" in html_text
    _parse(html_text)


def test_html_renders_latency_histogram_from_manifest():
    manifest = {"causal": {"queue_wait_hist": [["<=1", 3], [">256", 1]],
                           "latency_unit": "cycles", "activations": 4},
                "total_seconds": 1.0}
    html_text = html_report(None, [_result(manifest=manifest)])
    text = _parse(html_text)
    assert "queue-wait latency" in text
    assert "cycles" in text
    assert "class='bar'" in html_text


def test_html_renders_top_sites_from_profile_entries():
    sites = {"loads": [{"pc": 7, "dynamic": 100, "redundant": 80}],
             "stores": [{"pc": 9, "dynamic": 50, "silent": 20,
                         "triggering": True}]}
    entry = _store_entry("mcf:profile::seed=:scale=", kind="profile",
                         payload={"name": "mcf", "sites": sites,
                                  "loads": {"redundant_load_fraction": 0.8}})
    text = _parse(html_report([entry], None))
    assert "Redundancy top sites" in text
    assert "80" in text and "20" in text


def test_html_with_nothing_still_valid():
    text = _parse(html_report(None, None))
    assert "Nothing to report" in text


# -- the trend dashboard -------------------------------------------------------


def _trend_report(values, metric="instructions_per_sec"):
    from repro.obs.history import make_record
    from repro.obs.trends import analyze_history

    records = [make_record("bench_interpreter", {"mcf": {metric: v}},
                           git_sha=f"sha{i}", host="h",
                           timestamp=1000.0 + i)
               for i, v in enumerate(values)]
    return analyze_history(records)


def test_dashboard_html_is_strict_and_selfcontained():
    from repro.obs.report import trend_dashboard_html

    report = _trend_report([100.0, 100.2, 99.9, 100.1, 90.0])
    html_text = trend_dashboard_html(report)
    text = _parse(html_text)
    assert "GATE FAILS" in text
    assert "instructions_per_sec" in text
    assert "regression" in text
    assert "Verdict catalog" in text
    assert "<script" not in html_text
    assert 'href="http' not in html_text


def test_dashboard_green_series_passes():
    from repro.obs.report import trend_dashboard_html

    report = _trend_report([100.0, 100.2, 99.9, 100.1])
    html_text = trend_dashboard_html(report, title="custom <title>")
    text = _parse(html_text)
    assert "gate passes" in text
    assert "No flagged series" in text
    assert "custom <title>" in text  # escaped, not injected


def test_dashboard_flagged_row_links_its_flame():
    from repro.obs.flame import attribute_cycles
    from repro.obs.causality import CausalGraph
    from repro.obs.report import trend_dashboard_html
    from repro.core.trace import EngineTrace
    from repro.core import trace as T

    trace = EngineTrace(_FakeEngine())
    trace.record(T.FIRED, "thr", address=10, activation_id=1, pc=5,
                 cycle=0)
    trace.record(T.ENQUEUED, "thr", address=10, activation_id=1, cycle=0)
    trace.record(T.DISPATCHED, "thr", activation_id=1, cycle=3)
    trace.record(T.COMPLETED, "thr", activation_id=1, cycle=53)
    flames = {"mcf": attribute_cycles(
        "mcf", CausalGraph.from_trace(trace), total_cycles=200)}
    report = _trend_report([100.0, 100.2, 99.9, 100.1, 90.0])
    html_text = trend_dashboard_html(report, flames)
    _parse(html_text)
    assert "href='#flame-mcf'" in html_text     # verdict row deep-link
    assert "id='flame-mcf'" in html_text        # flame section anchor
    assert 'id="flame-mcf-pc0x5"' in html_text  # per-site SVG anchor
    assert "folded stacks" in html_text
