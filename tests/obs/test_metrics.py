"""Metrics registry semantics: instruments, snapshots, exporters."""

import json

import pytest

from repro.errors import MetricsError
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


# -- counters -----------------------------------------------------------------


def test_counter_increments(registry):
    c = registry.counter("engine.fired")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_counter_is_monotonic(registry):
    c = registry.counter("engine.fired")
    with pytest.raises(MetricsError):
        c.inc(-1)
    assert c.value == 0


def test_counter_get_or_create_returns_same_instrument(registry):
    assert registry.counter("a.b") is registry.counter("a.b")


def test_type_conflict_is_an_error(registry):
    registry.counter("x")
    with pytest.raises(MetricsError):
        registry.gauge("x")
    with pytest.raises(MetricsError):
        registry.histogram("x")


def test_invalid_name_rejected(registry):
    with pytest.raises(MetricsError):
        registry.counter("9starts-with-digit")
    with pytest.raises(MetricsError):
        registry.counter("has space")


# -- gauges -------------------------------------------------------------------


def test_gauge_set_inc_dec(registry):
    g = registry.gauge("queue.depth")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2


def test_gauge_set_max_is_high_water(registry):
    g = registry.gauge("queue.depth_high_water")
    g.set_max(4)
    g.set_max(2)
    g.set_max(7)
    assert g.value == 7


# -- histograms ---------------------------------------------------------------


def test_histogram_bucket_edges(registry):
    h = registry.histogram("lat", buckets=(1, 4, 16))
    h.observe(1)    # <= 1 -> bucket 0 (upper bound inclusive)
    h.observe(2)    # <= 4 -> bucket 1
    h.observe(4)    # <= 4 -> bucket 1
    h.observe(16)   # <= 16 -> bucket 2
    h.observe(17)   # overflow -> +Inf bucket
    assert h.counts == [1, 2, 1, 1]
    assert h.count == 5
    assert h.sum == 40


def test_histogram_cumulative_counts(registry):
    h = registry.histogram("lat", buckets=(1, 4, 16))
    for v in (1, 2, 4, 16, 17):
        h.observe(v)
    assert h.cumulative_counts() == [1, 3, 4, 5]


def test_histogram_rejects_bad_buckets(registry):
    with pytest.raises(MetricsError):
        registry.histogram("a", buckets=())
    with pytest.raises(MetricsError):
        registry.histogram("b", buckets=(4, 2))
    with pytest.raises(MetricsError):
        registry.histogram("c", buckets=(1, float("inf")))


# -- snapshot / diff ----------------------------------------------------------


def test_snapshot_is_frozen(registry):
    c = registry.counter("n")
    before = registry.snapshot()
    c.inc(10)
    assert before["n"]["value"] == 0
    assert registry.snapshot()["n"]["value"] == 10


def test_snapshot_diff_counters_and_histograms(registry):
    c = registry.counter("n")
    h = registry.histogram("lat", buckets=(1, 2))
    c.inc(2)
    h.observe(1)
    older = registry.snapshot()
    c.inc(3)
    h.observe(5)
    h.observe(1)
    deltas = registry.snapshot().diff(older)
    assert deltas["n"] == 3
    assert deltas["lat"] == 2


def test_snapshot_diff_handles_new_instruments(registry):
    older = registry.snapshot()
    registry.counter("late").inc(7)
    assert registry.snapshot().diff(older)["late"] == 7


def test_reset_zeroes_but_keeps_registrations(registry):
    registry.counter("n").inc(5)
    registry.histogram("lat", buckets=(1,)).observe(3)
    registry.reset()
    assert registry.counter("n").value == 0
    h = registry.histogram("lat", buckets=(1,))
    assert h.count == 0 and h.sum == 0 and h.counts == [0, 0]
    assert set(registry.names()) == {"n", "lat"}


# -- exporters ----------------------------------------------------------------


def test_json_export_round_trips(registry):
    registry.counter("engine.fired").inc(3)
    registry.gauge("queue.depth").set(2)
    payload = json.loads(registry.to_json())
    assert payload["engine.fired"] == {"type": "counter", "value": 3}
    assert payload["queue.depth"] == {"type": "gauge", "value": 2}


def test_prometheus_text_format(registry):
    registry.counter("engine.fired", "triggers fired").inc(3)
    h = registry.histogram("lat", "latency", buckets=(1, 4))
    h.observe(2)
    h.observe(9)
    text = registry.to_prometheus_text()
    assert "# HELP engine_fired triggers fired" in text
    assert "# TYPE engine_fired counter" in text
    assert "engine_fired 3" in text
    assert 'lat_bucket{le="1"} 0' in text
    assert 'lat_bucket{le="4"} 1' in text
    assert 'lat_bucket{le="+Inf"} 2' in text
    assert "lat_sum 11" in text
    assert "lat_count 2" in text


def test_render_is_nonempty_and_aligned(registry):
    registry.counter("a").inc()
    registry.counter("much.longer.name").inc(2)
    lines = registry.render().splitlines()
    assert len(lines) == 2
    assert lines[0].index("1") == lines[1].index("2")


def test_empty_registry_renders_placeholder(registry):
    assert "no metrics" in registry.render()
    assert registry.to_prometheus_text() == ""


# -- exporter escaping and histogram edge cases -------------------------------


def test_prometheus_help_escapes_newline_and_backslash(registry):
    registry.counter("weird.help", help="line one\nline two \\ done").inc()
    text = registry.to_prometheus_text()
    assert "# HELP weird_help line one\\nline two \\\\ done" in text
    # exposition format stays line-oriented: no raw newline inside HELP
    for line in text.splitlines():
        assert not line.startswith("# HELP") or "line two" in line or \
            "weird" not in line


def test_prometheus_label_values_escaped(registry):
    from repro.obs.metrics import _escape_label_value
    assert _escape_label_value('a"b') == 'a\\"b'
    assert _escape_label_value("a\\b") == "a\\\\b"
    assert _escape_label_value("a\nb") == "a\\nb"


def test_prometheus_help_without_specials_unchanged(registry):
    registry.counter("plain", help="just help").inc()
    assert "# HELP plain just help" in registry.to_prometheus_text()


def test_empty_histogram_exports_zero_buckets(registry):
    registry.histogram("h.empty", buckets=(1, 2))
    text = registry.to_prometheus_text()
    assert 'h_empty_bucket{le="1"} 0' in text
    assert 'h_empty_bucket{le="+Inf"} 0' in text
    assert "h_empty_sum 0" in text
    assert "h_empty_count 0" in text


def test_single_bucket_histogram(registry):
    h = registry.histogram("h.one", buckets=(10,))
    h.observe(5)     # inside the only bucket
    h.observe(10)    # boundary is inclusive
    h.observe(11)    # overflow
    assert h.counts == [2, 1]
    text = registry.to_prometheus_text()
    assert 'h_one_bucket{le="10"} 2' in text
    assert 'h_one_bucket{le="+Inf"} 3' in text


def test_single_bucket_histogram_merges(registry):
    h = registry.histogram("h.m", buckets=(10,))
    h.observe(3)
    other = MetricsRegistry()
    oh = other.histogram("h.m", buckets=(10,))
    oh.observe(99)
    registry.merge_values(other.as_dict())
    assert h.counts == [1, 1]
    assert h.count == 2


# -- labeled instruments ------------------------------------------------------


def test_labeled_counters_are_distinct_instruments(registry):
    head = registry.counter("trace.dropped_events", "drops",
                            labels={"keep": "head"})
    tail = registry.counter("trace.dropped_events", "drops",
                            labels={"keep": "tail"})
    assert head is not tail
    head.inc(5)
    tail.inc(7)
    # re-resolving the same label set returns the same instrument
    assert registry.counter("trace.dropped_events",
                            labels={"keep": "head"}) is head
    assert head.value == 5 and tail.value == 7


def test_label_key_is_order_insensitive(registry):
    a = registry.counter("c.x", labels={"a": "1", "b": "2"})
    b = registry.counter("c.x", labels={"b": "2", "a": "1"})
    assert a is b


def test_bad_label_name_rejected(registry):
    with pytest.raises(MetricsError):
        registry.counter("c.x", labels={"bad-name": "v"})


def test_snapshot_carries_labels(registry):
    registry.counter("trace.dropped_events",
                     labels={"keep": "tail"}).inc(4)
    (key,) = [k for k in registry.as_dict() if k.startswith("trace.")]
    assert key == 'trace.dropped_events{keep="tail"}'
    assert registry.as_dict()[key]["labels"] == {"keep": "tail"}


def test_merge_preserves_label_identity(registry):
    registry.counter("trace.dropped_events", "drops",
                     labels={"keep": "head"}).inc(1)
    worker = MetricsRegistry()
    worker.counter("trace.dropped_events", "drops",
                   labels={"keep": "head"}).inc(10)
    worker.counter("trace.dropped_events", "drops",
                   labels={"keep": "tail"}).inc(3)
    registry.merge_values(worker.as_dict())
    assert registry.counter("trace.dropped_events",
                            labels={"keep": "head"}).value == 11
    assert registry.counter("trace.dropped_events",
                            labels={"keep": "tail"}).value == 3


def test_prometheus_renders_label_suffixes_once_per_family(registry):
    registry.counter("trace.dropped_events", "drops",
                     labels={"keep": "head"}).inc(2)
    registry.counter("trace.dropped_events", "drops",
                     labels={"keep": "tail"}).inc(9)
    text = registry.to_prometheus_text()
    assert 'trace_dropped_events{keep="head"} 2' in text
    assert 'trace_dropped_events{keep="tail"} 9' in text
    # one TYPE/HELP line for the family, not one per label set
    assert text.count("# TYPE trace_dropped_events counter") == 1
    assert text.count("# HELP trace_dropped_events drops") == 1


def test_prometheus_escapes_label_values(registry):
    registry.counter("c.esc", labels={"k": 'a"b\\c'}).inc(1)
    text = registry.to_prometheus_text()
    assert 'c_esc{k="a\\"b\\\\c"} 1' in text
