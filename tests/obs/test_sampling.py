"""Seeded samplers and confidence intervals: determinism + coverage."""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.sampling import (AddressSampler, ReservoirSampler,
                                SampleEstimate, StridedSampler,
                                cluster_coverage_interval,
                                kish_effective_size, normal_interval,
                                wilson_interval)


# -- intervals ---------------------------------------------------------------


def test_wilson_interval_known_value():
    low, high = wilson_interval(8, 10)
    assert 0.49 < low < 0.50
    assert 0.94 < high < 0.95


@given(st.integers(0, 200), st.integers(1, 200))
@settings(max_examples=60, deadline=None)
def test_wilson_interval_contains_point_estimate(successes, trials):
    successes = min(successes, trials)
    low, high = wilson_interval(successes, trials)
    p = successes / trials
    assert 0.0 <= low <= p + 1e-12
    assert p - 1e-12 <= high <= 1.0


def test_intervals_with_no_trials_are_uninformative():
    assert wilson_interval(0, 0) == (0.0, 1.0)
    assert normal_interval(0, 0) == (0.0, 1.0)
    assert cluster_coverage_interval(0, 0, 0, 100, 64) == (0.0, 1.0)


def test_wilson_tighter_than_normal_is_bounded_at_extremes():
    # all successes: Wilson stays non-degenerate, normal collapses
    w_low, w_high = wilson_interval(20, 20)
    n_low, n_high = normal_interval(20, 20)
    assert w_low < 1.0 and w_high == 1.0
    assert n_low == 1.0 and n_high == 1.0


def test_kish_effective_size():
    assert kish_effective_size([]) == 0.0
    assert kish_effective_size([5, 5, 5, 5]) == pytest.approx(4.0)
    # one dominant cluster carries ~one cluster of information
    assert kish_effective_size([1000, 1, 1]) == pytest.approx(1.0, abs=0.01)


def test_cluster_coverage_interval_full_coverage_is_wilson_at_kish():
    # population fully represented: interval is Wilson at the effective n
    low, high = cluster_coverage_interval(50, 100, 100.0, 100, 1)
    assert (low, high) == wilson_interval(50, 100)


def test_cluster_coverage_interval_uncovered_mass_widens():
    # 10 sampled loads at rate 64 represent 640 of 64000 loads: 99% of
    # the population is unknown, so the upper bound must approach 1
    low, high = cluster_coverage_interval(0, 10, 10.0, 64000, 64)
    assert low == 0.0
    assert high > 0.98


def test_cluster_coverage_interval_always_contains_pooled_fraction():
    for successes, trials, eff, pop, rate in [
        (3, 10, 2.0, 1000, 64), (10, 10, 1.0, 10, 1),
        (0, 5, 5.0, 5000, 64), (7, 223, 1.4, 200, 64),
    ]:
        low, high = cluster_coverage_interval(successes, trials, eff,
                                              pop, rate)
        assert low <= successes / trials <= high


def test_sample_estimate_from_interval_preserves_bounds():
    estimate = SampleEstimate.from_interval(3, 10, 0.3, 0.1, 0.9)
    assert estimate.fraction == 0.3
    assert estimate.ci_low == 0.1
    assert estimate.ci_high == 0.9
    assert estimate.ci_width == pytest.approx(0.8)
    assert estimate.contains(0.5)
    assert not estimate.contains(0.95)


# -- AddressSampler ----------------------------------------------------------


def test_address_sampler_rate_one_samples_everything():
    sampler = AddressSampler(1)
    assert all(sampler.sampled(a) for a in range(1000))


def test_address_sampler_hits_near_nominal_rate():
    sampler = AddressSampler(64, seed=3)
    hits = sum(sampler.sampled(a) for a in range(100_000))
    assert 1000 < hits < 2200  # ~1563 expected


def test_address_sampler_rejects_bad_rate():
    with pytest.raises(ValueError):
        AddressSampler(0)


def test_address_sampler_seed_changes_subset():
    a = {x for x in range(5000) if AddressSampler(16, seed=1).sampled(x)}
    b = {x for x in range(5000) if AddressSampler(16, seed=2).sampled(x)}
    assert a != b


def test_address_sampler_deterministic_across_processes():
    # the same (seed, rate) must select the same addresses in a fresh
    # interpreter — pool workers and re-runs agree byte-for-byte
    local = [a for a in range(4096) if AddressSampler(32, seed=7).sampled(a)]
    script = (
        "import json\n"
        "from repro.obs.sampling import AddressSampler\n"
        "s = AddressSampler(32, seed=7)\n"
        "print(json.dumps([a for a in range(4096) if s.sampled(a)]))\n"
    )
    output = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        check=True).stdout
    assert json.loads(output) == local


# -- StridedSampler / ReservoirSampler ---------------------------------------


def test_strided_sampler_takes_every_kth_with_seeded_phase():
    sampler = StridedSampler(10, seed=4)
    taken = [i for i in range(100) if sampler.sample()]
    assert len(taken) == 10
    assert all(b - a == 10 for a, b in zip(taken, taken[1:]))
    # same seed, same phase
    again = StridedSampler(10, seed=4)
    assert [i for i in range(100) if again.sample()] == taken


def test_reservoir_sampler_is_bounded_and_seeded():
    sampler = ReservoirSampler(16, seed=9)
    sampler.extend(range(10_000))
    assert len(sampler.items) == 16
    assert sampler.observed == 10_000
    other = ReservoirSampler(16, seed=9)
    other.extend(range(10_000))
    assert other.items == sampler.items
