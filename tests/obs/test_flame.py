"""Cycle attribution: additive frames, folded stacks, SVG export."""

import pytest

from repro.core import trace as T
from repro.core.trace import EngineTrace
from repro.obs.causality import CausalGraph
from repro.obs.flame import (attribute_cycles, flame_svg,
                             fold_superblock_frames, folded_stacks,
                             hottest_site)


class _FakeEngine:
    def attach_trace(self, trace):
        pass


def _traced_run():
    """Two completed activations at pc=5 (cycles 100+80), one at pc=9
    (50 cycles), one canceled at pc=9 (20 cycles), one suppression."""
    tr = EngineTrace(_FakeEngine())
    specs = [(1, 5, 0, 100), (2, 5, 300, 80), (3, 9, 600, 50)]
    for act, pc, base, execute in specs:
        tr.record(T.FIRED, "thr", address=10 + act, activation_id=act,
                  pc=pc, cycle=base)
        tr.record(T.ENQUEUED, "thr", address=10 + act, activation_id=act,
                  cycle=base)
        tr.record(T.DISPATCHED, "thr", activation_id=act, cycle=base + 10)
        tr.record(T.COMPLETED, "thr", activation_id=act,
                  cycle=base + 10 + execute)
    tr.record(T.FIRED, "thr", address=99, activation_id=4, pc=9, cycle=900)
    tr.record(T.ENQUEUED, "thr", address=99, activation_id=4, cycle=900)
    tr.record(T.DISPATCHED, "thr", activation_id=4, cycle=905)
    tr.record(T.CANCELED, "thr", activation_id=4, cycle=925)
    tr.record(T.TSTORE, "thr", address=50, detail="1->1", pc=5, cycle=950)
    tr.record(T.SUPPRESSED, "thr", address=50, pc=5, cycle=950)
    return tr


@pytest.fixture
def attribution():
    graph = CausalGraph.from_trace(_traced_run())
    return attribute_cycles("mcf", graph, total_cycles=1000)


def test_frames_are_additive(attribution):
    assert attribution["unit"] == "cycles"
    assert attribution["total"] == 1000.0
    # 100 + 80 + 50 completed + 20 canceled = 250 support cycles
    assert attribution["support_total"] == 250.0
    total = sum(f["value"] for f in attribution["frames"])
    assert total == pytest.approx(1000.0)
    (main,) = [f for f in attribution["frames"] if f["kind"] == "main"]
    assert main["value"] == 750.0


def test_sites_sorted_hottest_first(attribution):
    support = [f for f in attribution["frames"] if f["kind"] == "support"]
    assert [f["name"] for f in support] == ["pc=0x5", "pc=0x9"]
    assert support[0]["value"] == 180.0
    assert support[1]["value"] == 70.0  # 50 completed + 20 canceled
    assert "1 canceled" in support[1]["detail"]
    assert "suppressed 1" in support[0]["detail"]


def test_hottest_site_names_the_heaviest_pc(attribution):
    hot = hottest_site(attribution)
    assert hot["name"] == "pc=0x5"
    assert hot["value"] == 180.0
    assert hottest_site({"frames": []}) is None


def test_folded_stacks_format(attribution):
    lines = folded_stacks(attribution).splitlines()
    assert "mcf;main 750" in lines
    assert "mcf;support;pc=0x5 180" in lines
    assert "mcf;support;pc=0x9 70" in lines


def test_svg_is_self_contained_with_site_anchors(attribution):
    svg = flame_svg(attribution)
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert 'id="flame-mcf-pc0x5"' in svg
    assert 'id="flame-mcf-pc0x9"' in svg
    assert "<script" not in svg
    assert svg.count("<title>") >= 4  # total, main, support, sites
    # well-formed XML (also catches unescaped detail text)
    import xml.etree.ElementTree as ET
    ET.fromstring(svg)


def test_fold_superblock_frames_names_entry_pcs():
    report = (
        "   100  0.5  <superblock>:41(sb_18)\n"
        "     1  0.0  <superblock>:1(<module>)\n"
        "    10  0.1  src/repro/machine/machine.py:700(thunk)\n"
    )
    folded = fold_superblock_frames(report)
    assert "sb:18" in folded
    assert "sb:<module>" in folded
    assert "<superblock>" not in folded
    assert "machine.py:700(thunk)" in folded  # only sb frames fold


def test_fold_superblock_frames_matches_real_compiled_code():
    # the fold must track the real filename/name scheme the compiler uses
    from repro.machine.superblock import SB_FILENAME, SB_PREFIX, compile_blocks
    from repro.workloads.suite import SUITE

    workload = SUITE["mcf"]
    compiled = compile_blocks(workload.build_baseline(workload.make_input()))
    entry = compiled.blocks[0][0]
    label = f"{SB_FILENAME}:7({SB_PREFIX}{entry})"
    assert fold_superblock_frames(label) == f"sb:{entry}"


def test_events_unit_trace_fabricates_no_main_band():
    """A trace with no cycle source measures latency in event counts;
    subtracting those from a cycle total would be nonsense."""
    tr = EngineTrace(_FakeEngine())
    tr.record(T.FIRED, "thr", address=10, activation_id=1, pc=5)
    tr.record(T.ENQUEUED, "thr", address=10, activation_id=1)
    tr.record(T.DISPATCHED, "thr", activation_id=1)
    tr.record(T.COMPLETED, "thr", activation_id=1)
    graph = CausalGraph.from_trace(tr)
    attribution = attribute_cycles("mcf", graph, total_cycles=1000)
    assert attribution["unit"] == "events"
    assert [f["kind"] for f in attribution["frames"]] == ["support"]
    flame_svg(attribution)  # still renders


def test_empty_graph_attribution_renders():
    graph = CausalGraph.from_trace(EngineTrace(_FakeEngine()))
    attribution = attribute_cycles("mcf", graph, total_cycles=500)
    (main,) = attribution["frames"]
    assert main["kind"] == "main"
    assert main["value"] == 500.0
    assert folded_stacks(attribution) == "mcf;main 500\n"
    assert "</svg>" in flame_svg(attribution)
