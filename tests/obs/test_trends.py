"""Trend analysis: verdicts, direction awareness, changepoints, gating."""

import pytest

from repro.errors import HistoryError
from repro.obs.history import HistoryStore, make_record
from repro.obs.trends import (DEFAULT_MIN_RUNS, GATING_VERDICTS, VERDICTS,
                              TrendReport, analyze_history, analyze_series,
                              ewma)


def _series(values, metric="instructions_per_sec", **kwargs):
    n = len(values)
    return analyze_series("bench_interpreter", "mcf", metric, values,
                          timestamps=[float(i) for i in range(n)],
                          git_shas=[f"sha{i}" for i in range(n)], **kwargs)


STABLE = [100.0, 100.4, 99.8, 100.2, 99.9]


# -- single-series verdicts -------------------------------------------------


def test_flat_series_is_ok():
    verdict = _series(STABLE)
    assert verdict.verdict == "ok"
    assert not verdict.gates


def test_ten_percent_throughput_drop_regresses():
    verdict = _series(STABLE + [90.0])
    assert verdict.verdict == "regression"
    assert verdict.gates
    assert verdict.relative == pytest.approx(-0.10, abs=0.01)


def test_down_bad_metric_never_regresses_upward():
    verdict = _series(STABLE + [120.0])
    assert verdict.verdict == "improvement"
    assert not verdict.gates


def test_up_bad_metric_regresses_upward():
    verdict = _series([1000.0, 1001.0, 999.0, 1200.0], metric="cycles")
    assert verdict.verdict == "regression"
    down = _series([1000.0, 1001.0, 999.0, 800.0], metric="cycles")
    assert down.verdict == "improvement"


def test_info_metric_is_never_judged():
    verdict = _series(STABLE + [250.0], metric="legacy_seconds")
    assert verdict.verdict == "info"
    assert not verdict.gates


def test_short_series_has_insufficient_data():
    verdict = _series([100.0, 90.0])
    assert verdict.verdict == "insufficient-data"
    assert not verdict.gates
    assert DEFAULT_MIN_RUNS == 3


def test_noisy_series_does_not_flag_inside_its_own_spread():
    noisy = [100.0, 130.0, 80.0, 120.0, 90.0, 110.0, 95.0]
    assert _series(noisy).verdict == "ok"


def test_ci_width_sibling_widens_the_band():
    tight = _series(STABLE + [93.0], metric="sampled_abs_error")
    # up_bad metric rising 7%: flags with no CI, absorbed with a wide CI
    rising = [0.010, 0.0101, 0.0099, 0.010, 0.0150]
    assert _series(rising, metric="sampled_abs_error").verdict == "regression"
    wide = _series(rising, metric="sampled_abs_error", ci_width=0.01)
    assert wide.verdict == "ok"
    assert "CI width" in wide.note
    del tight


def test_changepoint_catches_a_settled_level_shift():
    # the shift happened 3 runs ago and the series settled there: the
    # last-vs-EWMA test alone converges onto the new level, but the
    # split statistic still names the shift
    values = [100.0, 100.2, 99.9, 100.1, 90.0, 90.2, 89.9, 90.1]
    verdict = _series(values)
    assert verdict.verdict in ("changepoint", "regression")
    assert verdict.gates
    if verdict.verdict == "changepoint":
        assert verdict.changepoint_index == 4
        assert "level shift" in verdict.note


def test_empty_series_is_an_error():
    with pytest.raises(HistoryError):
        _series([])


def test_ewma_weights_the_newest():
    assert ewma([10.0]) == 10.0
    assert ewma([0.0, 10.0], alpha=0.5) == 5.0
    assert ewma([0.0, 0.0, 10.0], alpha=0.3) == pytest.approx(3.0)


def test_verdict_catalog_covers_every_emitted_verdict():
    assert set(GATING_VERDICTS) <= set(VERDICTS)
    for emitted in ("ok", "regression", "improvement", "changepoint",
                    "insufficient-data", "info"):
        assert emitted in VERDICTS


# -- whole-store analysis ---------------------------------------------------


def _seed_store(tmp_path, values, metric="instructions_per_sec",
                kind="bench_interpreter"):
    store = HistoryStore(str(tmp_path / "hist"))
    for i, value in enumerate(values):
        store.append(make_record(kind, {"mcf": {metric: value}},
                                 git_sha=f"sha{i}", host="testhost",
                                 timestamp=1000.0 + i))
    return store


def test_analyze_history_flags_the_injected_regression(tmp_path):
    store = _seed_store(tmp_path, STABLE + [90.0])
    report = analyze_history(store)
    assert isinstance(report, TrendReport)
    assert report.has_regressions
    (flagged,) = report.flagged
    assert flagged.metric == "instructions_per_sec"
    assert flagged.verdict == "regression"
    assert "REGRESSION" in report.render()


def test_analyze_history_green_on_a_stable_series(tmp_path):
    report = analyze_history(_seed_store(tmp_path, STABLE))
    assert not report.has_regressions
    assert report.by_verdict("ok")


def test_analyze_history_windows_per_kind(tmp_path):
    store = _seed_store(tmp_path, [100.0] * 6)
    # a chatty second kind must not age the first out of the window
    for i in range(30):
        store.append(make_record("bench_trace_overhead",
                                 {"mcf": {"bytes_per_event": 4.0}},
                                 git_sha=f"t{i}", host="testhost",
                                 timestamp=2000.0 + i))
    report = analyze_history(store, window=5)
    kinds = {v.kind for v in report.verdicts}
    assert kinds == {"bench_interpreter", "bench_trace_overhead"}
    (per_sec,) = [v for v in report.verdicts
                  if v.metric == "instructions_per_sec"]
    assert len(per_sec.values) == 5  # windowed, not dropped


def test_analyze_history_kind_filter_and_empty_error(tmp_path):
    store = _seed_store(tmp_path, STABLE)
    report = analyze_history(store, kind="bench_interpreter")
    assert report.verdicts
    with pytest.raises(HistoryError):
        analyze_history(store, kind="no_such_kind")
    with pytest.raises(HistoryError):
        analyze_history(HistoryStore(str(tmp_path / "empty")))


def test_ci_width_cells_are_consumed_not_judged(tmp_path):
    store = HistoryStore(str(tmp_path / "hist"))
    for i, err in enumerate([0.010, 0.0101, 0.0099, 0.010, 0.0150]):
        store.append(make_record(
            "bench_trace_overhead",
            {"mcf": {"sampled_abs_error": err,
                     "sampled_abs_error_ci_width": 0.01}},
            git_sha=f"s{i}", host="h", timestamp=1000.0 + i))
    report = analyze_history(store)
    metrics = {v.metric for v in report.verdicts}
    assert metrics == {"sampled_abs_error"}  # no _ci_width series
    (verdict,) = report.verdicts
    assert verdict.verdict == "ok"           # widened by its own CI


def test_report_as_dict_and_accepts_record_lists(tmp_path):
    store = _seed_store(tmp_path, STABLE + [90.0])
    report = analyze_history(store.records())
    data = report.as_dict()
    assert data["flagged"] == 1
    assert data["verdict_counts"]["regression"] == 1
    (series,) = data["series"]
    assert series["gates"] is True
    assert len(series["git_shas"]) == 6
