"""Chrome trace-event export: valid JSON, sorted, slices paired."""

import json

from repro.core import trace as T
from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry
from repro.core.trace import EngineTrace
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion
from repro.obs.timeline import trace_to_chrome, traces_to_chrome, \
    write_chrome_trace

from tests.conftest import build_dtt_sum


def traced_run(values, idx, val, deferred=False):
    program, spec = build_dtt_sum(list(values), list(idx), list(val))
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]), deferred=deferred)
    tracer = EngineTrace(engine)
    machine.attach_engine(engine)
    if deferred:
        main = machine.main_context
        while main.state is not ContextState.HALTED:
            engine.dispatch_pending()
            for ctx in machine.contexts:
                if ctx.state is ContextState.RUNNING:
                    machine.step(ctx)
    else:
        run_to_completion(machine)
    return tracer


def test_export_loads_as_json():
    tracer = traced_run([1, 2], [0, 1], [9, 8])
    payload = trace_to_chrome(tracer)
    text = json.dumps(payload)
    assert json.loads(text)["traceEvents"]


def test_events_sorted_by_ts():
    tracer = traced_run([1, 2], [0, 1, 0], [9, 8, 7], deferred=True)
    events = trace_to_chrome(tracer)["traceEvents"]
    timestamps = [e["ts"] for e in events]
    assert timestamps == sorted(timestamps)


def test_required_fields_present():
    tracer = traced_run([1, 2], [0], [9])
    for event in trace_to_chrome(tracer)["traceEvents"]:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)


def test_process_and_thread_metadata():
    tracer = traced_run([1, 2], [0], [9])
    events = trace_to_chrome(tracer, process_name="run-1")["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert "run-1" in names
    assert "sumthr" in names


def test_instant_events_carry_engine_detail():
    tracer = traced_run([7, 8], [0], [7])  # silent store -> suppressed
    events = trace_to_chrome(tracer)["traceEvents"]
    kinds = {e["name"] for e in events if e["ph"] == "i"}
    assert T.TSTORE in kinds
    assert T.SUPPRESSED in kinds
    tstore = next(e for e in events if e["name"] == T.TSTORE)
    assert "address" in tstore["args"]


def test_dispatch_completion_pairs_into_slices():
    tracer = traced_run([1, 2], [0, 1], [9, 8], deferred=True)
    events = trace_to_chrome(tracer)["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    assert slices, "deferred dispatch should produce duration slices"
    for s in slices:
        assert s["dur"] >= 1
        assert s["args"]["outcome"] == T.COMPLETED


def test_multiple_traces_get_distinct_pids():
    a = traced_run([1, 2], [0], [9])
    b = traced_run([1, 2], [1], [8])
    events = traces_to_chrome([("run-a", a), ("run-b", b)])["traceEvents"]
    pids = {e["pid"] for e in events}
    assert pids == {1, 2}


def test_write_chrome_trace_to_disk(tmp_path):
    tracer = traced_run([1, 2], [0], [9])
    target = tmp_path / "trace.json"
    write_chrome_trace(str(target), ("run", tracer))
    payload = json.loads(target.read_text())
    assert payload["traceEvents"]


def test_empty_trace_exports_cleanly():
    program, spec = build_dtt_sum([1], [0], [9])
    engine = DttEngine(ThreadRegistry([spec]))
    tracer = EngineTrace(engine)  # attached but the machine never runs
    payload = trace_to_chrome(tracer)
    assert json.loads(json.dumps(payload)) == payload
