"""Chrome trace-event export: valid JSON, sorted, slices paired."""

import json

from repro.core import trace as T
from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry
from repro.core.trace import EngineTrace
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion
from repro.obs.timeline import trace_to_chrome, traces_to_chrome, \
    write_chrome_trace

from tests.conftest import build_dtt_sum


def traced_run(values, idx, val, deferred=False):
    program, spec = build_dtt_sum(list(values), list(idx), list(val))
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]), deferred=deferred)
    tracer = EngineTrace(engine)
    machine.attach_engine(engine)
    if deferred:
        main = machine.main_context
        while main.state is not ContextState.HALTED:
            engine.dispatch_pending()
            for ctx in machine.contexts:
                if ctx.state is ContextState.RUNNING:
                    machine.step(ctx)
    else:
        run_to_completion(machine)
    return tracer


def test_export_loads_as_json():
    tracer = traced_run([1, 2], [0, 1], [9, 8])
    payload = trace_to_chrome(tracer)
    text = json.dumps(payload)
    assert json.loads(text)["traceEvents"]


def test_events_sorted_by_ts():
    tracer = traced_run([1, 2], [0, 1, 0], [9, 8, 7], deferred=True)
    events = trace_to_chrome(tracer)["traceEvents"]
    timestamps = [e["ts"] for e in events]
    assert timestamps == sorted(timestamps)


def test_required_fields_present():
    tracer = traced_run([1, 2], [0], [9])
    for event in trace_to_chrome(tracer)["traceEvents"]:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)


def test_process_and_thread_metadata():
    tracer = traced_run([1, 2], [0], [9])
    events = trace_to_chrome(tracer, process_name="run-1")["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert "run-1" in names
    assert "sumthr" in names


def test_instant_events_carry_engine_detail():
    tracer = traced_run([7, 8], [0], [7])  # silent store -> suppressed
    events = trace_to_chrome(tracer)["traceEvents"]
    kinds = {e["name"] for e in events if e["ph"] == "i"}
    assert T.TSTORE in kinds
    assert T.SUPPRESSED in kinds
    tstore = next(e for e in events if e["name"] == T.TSTORE)
    assert "address" in tstore["args"]


def test_dispatch_completion_pairs_into_slices():
    tracer = traced_run([1, 2], [0, 1], [9, 8], deferred=True)
    events = trace_to_chrome(tracer)["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    assert slices, "deferred dispatch should produce duration slices"
    for s in slices:
        assert s["dur"] >= 1
        assert s["args"]["outcome"] == T.COMPLETED


def test_multiple_traces_get_distinct_pids():
    a = traced_run([1, 2], [0], [9])
    b = traced_run([1, 2], [1], [8])
    events = traces_to_chrome([("run-a", a), ("run-b", b)])["traceEvents"]
    pids = {e["pid"] for e in events}
    assert pids == {1, 2}


def test_write_chrome_trace_to_disk(tmp_path):
    tracer = traced_run([1, 2], [0], [9])
    target = tmp_path / "trace.json"
    write_chrome_trace(str(target), ("run", tracer))
    payload = json.loads(target.read_text())
    assert payload["traceEvents"]


def test_empty_trace_exports_cleanly():
    program, spec = build_dtt_sum([1], [0], [9])
    engine = DttEngine(ThreadRegistry([spec]))
    tracer = EngineTrace(engine)  # attached but the machine never runs
    payload = trace_to_chrome(tracer)
    assert json.loads(json.dumps(payload)) == payload


# -- identity-based pairing ----------------------------------------------------


class _FakeEngine:
    def attach_trace(self, trace):
        pass


def _hand_trace(records):
    tracer = EngineTrace(_FakeEngine())
    for record in records:
        tracer.record(*record[:2], **record[2])
    return tracer


def test_interleaved_activations_pair_by_identity():
    # two activations on ONE thread track, completing out of LIFO order:
    # a per-tid stack would hand #1's closer to #2's slice
    tracer = _hand_trace([
        (T.DISPATCHED, "thr", {"activation_id": 1, "detail": "context 1"}),
        (T.DISPATCHED, "thr", {"activation_id": 2, "detail": "context 2"}),
        (T.COMPLETED, "thr", {"activation_id": 1}),
        (T.COMPLETED, "thr", {"activation_id": 2}),
    ])
    events = trace_to_chrome(tracer)["traceEvents"]
    slices = sorted((e for e in events if e["ph"] == "X"),
                    key=lambda e: e["ts"])
    assert len(slices) == 2
    assert slices[0]["args"]["activation_id"] == 1
    assert slices[0]["ts"] == 1 and slices[0]["dur"] == 2  # seq 1 -> 3
    assert slices[1]["args"]["activation_id"] == 2
    assert slices[1]["ts"] == 2 and slices[1]["dur"] == 2  # seq 2 -> 4


def test_unmatched_closer_counted_not_misattributed():
    tracer = _hand_trace([
        (T.DISPATCHED, "thr", {"activation_id": 1, "detail": "context 1"}),
        (T.COMPLETED, "thr", {"activation_id": 7}),   # never dispatched
        (T.COMPLETED, "thr", {"activation_id": 1}),
    ])
    payload = trace_to_chrome(tracer)
    assert payload["otherData"]["unmatched_closers"] == 1
    slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 1
    assert slices[0]["args"]["activation_id"] == 1
    orphans = [e for e in payload["traceEvents"]
               if e["ph"] == "i" and e.get("args", {}).get("unmatched")]
    assert len(orphans) == 1  # still visible, as an instant


def test_unmatched_closer_count_helper():
    from repro.obs.timeline import unmatched_closer_count
    tracer = _hand_trace([
        (T.COMPLETED, "thr", {"activation_id": 3}),
        (T.DISPATCHED, "thr", {"activation_id": 4}),
        (T.COMPLETED, "thr", {"activation_id": 4}),
    ])
    assert unmatched_closer_count(tracer) == 1


def test_dangling_dispatch_closes_at_trace_end():
    tracer = _hand_trace([
        (T.DISPATCHED, "thr", {"activation_id": 1, "detail": "context 1"}),
        (T.TSTORE, "thr", {"address": 9}),
    ])
    slices = [e for e in trace_to_chrome(tracer)["traceEvents"]
              if e["ph"] == "X"]
    assert len(slices) == 1
    assert "outcome" not in slices[0]["args"]  # unfinished, not completed


def test_flow_events_link_trigger_to_slice():
    tracer = _hand_trace([
        (T.FIRED, "thr", {"activation_id": 1, "address": 9}),
        (T.DISPATCHED, "sup", {"activation_id": 1, "detail": "context 1"}),
        (T.COMPLETED, "sup", {"activation_id": 1}),
    ])
    events = trace_to_chrome(tracer)["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == 1 and len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"]
    assert finishes[0]["bp"] == "e"
    assert starts[0]["ts"] == 1          # at the fired instant
    assert finishes[0]["ts"] == 2        # at the slice start
    # arrow crosses tracks: from the trigger's tid to the slice's tid
    assert starts[0]["tid"] != finishes[0]["tid"]


def test_flow_ids_unique_across_processes():
    records = [
        (T.FIRED, "thr", {"activation_id": 1, "address": 9}),
        (T.DISPATCHED, "thr", {"activation_id": 1, "detail": "context 1"}),
        (T.COMPLETED, "thr", {"activation_id": 1}),
    ]
    a, b = _hand_trace(records), _hand_trace(records)
    events = traces_to_chrome([("a", a), ("b", b)])["traceEvents"]
    flow_ids = {e["id"] for e in events if e["ph"] == "s"}
    assert len(flow_ids) == 2  # same activation number, distinct flows


def test_real_deferred_run_has_flow_arrows_and_no_unmatched():
    tracer = traced_run([1, 2, 3], [0, 1, 2], [9, 8, 7], deferred=True)
    payload = trace_to_chrome(tracer)
    assert payload["otherData"]["unmatched_closers"] == 0
    starts = [e for e in payload["traceEvents"] if e["ph"] == "s"]
    slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert len(starts) == len(slices)


def test_export_is_deterministic():
    tracer = traced_run([1, 2], [0, 1], [9, 8], deferred=True)
    first = json.dumps(trace_to_chrome(tracer), sort_keys=True)
    second = json.dumps(trace_to_chrome(tracer), sort_keys=True)
    assert first == second


def test_write_is_utf8_and_leaves_no_temp_files(tmp_path):
    tracer = traced_run([1, 2], [0], [9])
    target = tmp_path / "trace.json"
    write_chrome_trace(str(target), ("run-é", tracer))
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert payload["traceEvents"]
    assert list(tmp_path.iterdir()) == [target]  # no .tmp leftovers
