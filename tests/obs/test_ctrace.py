"""Compressed event traces: exact round-trip, framing, failure modes."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry
from repro.core.trace import EngineEvent, EngineTrace
from repro.errors import CTraceError
from repro.machine.machine import Machine, run_to_completion
from repro.obs.ctrace import (CTraceReader, CTraceWriter, write_trace)

from tests.conftest import build_dtt_sum

KINDS = ("tstore", "suppressed", "fired", "duplicate", "enqueued",
         "canceled", "dispatched", "completed", "consume-clean",
         "consume-wait")

maybe_int = st.none() | st.integers(0, 1 << 40)

event_bodies = st.tuples(
    st.integers(1, 1 << 30),            # sequence delta (stressing zigzag)
    st.sampled_from(KINDS),
    st.none() | st.sampled_from(("sumthr", "minthr", "t0")),
    maybe_int,                          # address
    st.sampled_from(("", "why", "addr=5 val=9", "x" * 40)),
    maybe_int,                          # activation_id
    maybe_int,                          # cause_id
    maybe_int,                          # pc
    maybe_int,                          # cycle
)


def _materialize(bodies):
    sequence = 0
    events = []
    for delta, kind, thread, address, detail, act, cause, pc, cycle in bodies:
        sequence += delta
        events.append(EngineEvent(sequence, kind, thread, address, detail,
                                  act, cause, pc, cycle))
    return events


def _fields(event):
    return (event.sequence, event.kind, event.thread, event.address,
            event.detail, event.activation_id, event.cause_id, event.pc,
            event.cycle)


@given(bodies=st.lists(event_bodies, max_size=120),
       chunk_events=st.integers(1, 7))
@settings(max_examples=60, deadline=None)
def test_round_trip_is_exact_for_any_stream(tmp_path_factory, bodies,
                                            chunk_events):
    path = str(tmp_path_factory.mktemp("ct") / "t.ctrace")
    events = _materialize(bodies)
    with CTraceWriter(path, chunk_events=chunk_events) as writer:
        writer.begin_stream("s")
        for event in events:
            writer.append(event)
    decoded = list(CTraceReader(path).stream("s").events)
    assert [_fields(e) for e in decoded] == [_fields(e) for e in events]


def _traced_run(values, idx, val):
    program, spec = build_dtt_sum(list(values), list(idx), list(val))
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    trace = EngineTrace(engine)
    machine.attach_engine(engine)
    run_to_completion(machine)
    return trace


def test_real_trace_round_trips_and_compresses(tmp_path):
    trace = _traced_run([3, 1, 4, 1], [0, 1, 2, 3, 0, 1], [9, 9, 9, 9, 9, 9])
    assert trace.events
    path = str(tmp_path / "run.ctrace")
    footer = write_trace(path, ("sum:dtt", trace))
    assert footer["streams"] == 1
    assert footer["events"] == len(trace.events)
    assert footer["bytes"] == os.path.getsize(path)
    stream = CTraceReader(path).stream("sum:dtt")
    assert [_fields(e) for e in stream.events] == \
        [_fields(e) for e in trace.events]
    assert stream.dropped == trace.dropped == 0


def test_streams_are_reiterable(tmp_path):
    trace = _traced_run([1, 2], [0, 1], [5, 6])
    path = str(tmp_path / "run.ctrace")
    write_trace(path, ("a", trace))
    stream = CTraceReader(path).stream()
    first = [e.sequence for e in stream.events]
    second = [e.sequence for e in stream.events]  # fresh generator
    assert first == second == [e.sequence for e in trace.events]


def test_multiple_streams_keep_their_events_apart(tmp_path):
    path = str(tmp_path / "multi.ctrace")
    with CTraceWriter(path, chunk_events=3) as writer:
        writer.begin_stream("first")
        for i in range(1, 8):
            writer.append(EngineEvent(i, "tstore", "a", address=i * 8))
        writer.begin_stream("second")  # implicitly ends "first"
        writer.append(EngineEvent(1, "fired", "b"))
    reader = CTraceReader(path)
    assert [name for name, _ in reader.named_streams()] == ["first", "second"]
    assert len(reader.stream("first")) == 7
    assert len(reader.stream("second")) == 1
    assert reader.event_count == 8
    with pytest.raises(CTraceError, match="no stream"):
        reader.stream("third")


def test_annotations_land_in_stream_meta(tmp_path):
    path = str(tmp_path / "meta.ctrace")
    with CTraceWriter(path) as writer:
        writer.begin_stream("s")
        writer.append(EngineEvent(1, "tstore", None))
        writer.annotate(memory_dropped=12, drop_policy="tail")
    stream = CTraceReader(path).stream("s")
    assert stream.meta["memory_dropped"] == 12
    assert stream.meta["drop_policy"] == "tail"
    assert stream.meta["events"] == 1


def test_dropped_annotation_surfaces_like_engine_trace(tmp_path):
    path = str(tmp_path / "drop.ctrace")
    with CTraceWriter(path) as writer:
        writer.begin_stream("s")
        writer.append(EngineEvent(1, "tstore", None))
        writer.annotate(dropped=3)
    stream = CTraceReader(path).stream()
    assert stream.dropped == 3
    assert stream.truncated


def test_append_outside_stream_is_an_error(tmp_path):
    writer = CTraceWriter(str(tmp_path / "x.ctrace"))
    with pytest.raises(CTraceError, match="outside a stream"):
        writer.append(EngineEvent(1, "tstore", None))
    writer.abort()


def test_abort_leaves_no_file(tmp_path):
    path = tmp_path / "aborted.ctrace"
    writer = CTraceWriter(str(path))
    writer.begin_stream("s")
    writer.append(EngineEvent(1, "tstore", None))
    writer.abort()
    assert not path.exists()
    assert not list(tmp_path.iterdir())  # no orphan temp files either


def test_uncommitted_bytes_are_rejected(tmp_path):
    # a file missing its footer means the writer never committed; the
    # reader must fail loudly instead of silently dropping the tail
    path = str(tmp_path / "full.ctrace")
    with CTraceWriter(path, chunk_events=2) as writer:
        writer.begin_stream("s")
        for i in range(1, 7):
            writer.append(EngineEvent(i, "tstore", None, address=i))
    data = open(path, "rb").read()
    clipped = str(tmp_path / "clipped.ctrace")
    with open(clipped, "wb") as handle:
        handle.write(data[:len(data) - 10])
    with pytest.raises(CTraceError):
        CTraceReader(clipped)


def test_garbage_magic_is_rejected(tmp_path):
    path = tmp_path / "bad.ctrace"
    path.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(CTraceError, match="bad magic"):
        CTraceReader(str(path))


def test_corrupted_chunk_fails_on_decode(tmp_path):
    path = str(tmp_path / "corrupt.ctrace")
    with CTraceWriter(path, chunk_events=64) as writer:
        writer.begin_stream("s")
        for i in range(1, 40):
            writer.append(EngineEvent(i, "tstore", "t", address=i * 4,
                                      detail=f"v{i}"))
    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 0xFF  # flip a byte inside the zlib payload
    open(path, "wb").write(bytes(data))
    reader = CTraceReader(path)  # index scan does not decode payloads
    with pytest.raises(Exception):
        list(reader.stream("s").events)


def test_write_trace_records_drop_counts(tmp_path):
    trace = _traced_run([1, 2, 3], [0, 1], [7, 8])
    trace.dropped = 5  # simulate an overflowed in-memory buffer
    path = str(tmp_path / "drops.ctrace")
    write_trace(path, ("s", trace))
    assert CTraceReader(path).stream("s").dropped == 5
