"""Performance-history store: records, content addressing, concurrency."""

import json
import multiprocessing
import os

import pytest

from repro.errors import HistoryError
from repro.obs.history import (HistoryStore, append_payload, host_fingerprint,
                               iter_row_metrics, make_record, record_id_of,
                               record_from_payload)


def _record(value=1.0, timestamp=1000.0, kind="bench_interpreter",
            sha="abc1234"):
    return make_record(kind, {"mcf": {"instructions_per_sec": value}},
                       source="test", git_sha=sha, host="testhost",
                       timestamp=timestamp)


# -- records ----------------------------------------------------------------


def test_make_record_carries_provenance():
    record = _record()
    assert record["kind"] == "bench_interpreter"
    assert record["git_sha"] == "abc1234"
    assert record["host"] == "testhost"
    assert record["timestamp"] == 1000.0
    assert record["rows"]["mcf"]["instructions_per_sec"] == 1.0
    assert len(record["record_id"]) == 64


def test_record_id_is_content_addressed():
    a, b = _record(), _record()
    assert a["record_id"] == b["record_id"]
    assert _record(value=2.0)["record_id"] != a["record_id"]
    # the id never hashes itself
    assert record_id_of(a) == record_id_of(
        {k: v for k, v in a.items() if k != "record_id"})


def test_non_numeric_cells_are_dropped():
    record = make_record("bench_x", {
        "mcf": {"speedup": 2.0, "label": "fast", "ok": True},
    }, timestamp=1.0, git_sha="s", host="h")
    assert record["rows"]["mcf"] == {"speedup": 2.0}


def test_record_without_numeric_rows_is_an_error():
    with pytest.raises(HistoryError):
        make_record("bench_x", {"mcf": {"label": "no numbers"}})
    with pytest.raises(HistoryError):
        make_record("", {"mcf": {"speedup": 1.0}})


def test_default_provenance_is_live():
    record = make_record("bench_x", {"mcf": {"speedup": 1.0}})
    assert record["host"] == host_fingerprint()
    assert record["timestamp"] > 0


# -- payload dispatch -------------------------------------------------------


def test_payload_dispatch_bench_dict():
    record = record_from_payload(
        {"kind": "bench_interpreter", "schema": 1, "repeat": 3,
         "rows": {"mcf": {"instructions_per_sec": 5.0, "note": "x"}}},
        source="bench.json", timestamp=1.0, git_sha="s", host="h")
    assert record["kind"] == "bench_interpreter"
    assert record["meta"]["repeat"] == 3
    assert record["rows"]["mcf"]["instructions_per_sec"] == 5.0


def test_payload_dispatch_manifest_dict():
    record = record_from_payload(
        {"schema_version": 7, "experiment": "E3",
         "phase_seconds": {"mcf:dtt:smt2": 0.5},
         "cache_hits": 3, "peak_queue_depth": 2},
        source="manifest.json", timestamp=1.0, git_sha="s", host="h")
    assert record["kind"] == "manifest"
    assert record["meta"]["experiment"] == "E3"


def test_payload_dispatch_garbage_is_an_error():
    with pytest.raises(HistoryError):
        record_from_payload({"nothing": "here"}, source="x.json")
    with pytest.raises(HistoryError):
        record_from_payload("just a string", source="x.json")


# -- the store --------------------------------------------------------------


def test_directory_store_splits_by_kind(tmp_path):
    store = HistoryStore(str(tmp_path / "hist"))
    store.append(_record(kind="bench_interpreter"))
    store.append(_record(kind="bench_trace_overhead", timestamp=1001.0))
    files = sorted(os.listdir(tmp_path / "hist"))
    assert files == ["bench_interpreter.jsonl", "bench_trace_overhead.jsonl"]
    assert store.kinds() == ["bench_interpreter", "bench_trace_overhead"]
    assert len(store.records(kind="bench_interpreter")) == 1


def test_single_file_store_mixes_kinds(tmp_path):
    path = tmp_path / "ci.jsonl"
    store = HistoryStore(str(path))
    store.append(_record(kind="bench_interpreter"))
    store.append(_record(kind="manifest", timestamp=1001.0))
    assert path.read_text().count("\n") == 2
    assert store.kinds() == ["bench_interpreter", "manifest"]


def test_store_on_non_jsonl_file_is_an_error(tmp_path):
    stray = tmp_path / "history.txt"
    stray.write_text("not a store")
    with pytest.raises(HistoryError):
        HistoryStore(str(stray))


def test_reads_deduplicate_by_record_id(tmp_path):
    store = HistoryStore(str(tmp_path / "hist"))
    record = _record()
    store.append(record)
    store.append(record)  # idempotent re-append
    assert len(store.records()) == 1


def test_records_sorted_oldest_first(tmp_path):
    store = HistoryStore(str(tmp_path / "hist"))
    store.append(_record(value=3.0, timestamp=3000.0))
    store.append(_record(value=1.0, timestamp=1000.0))
    store.append(_record(value=2.0, timestamp=2000.0))
    values = [r["rows"]["mcf"]["instructions_per_sec"]
              for r in store.records()]
    assert values == [1.0, 2.0, 3.0]
    assert [r["rows"]["mcf"]["instructions_per_sec"]
            for r in store.tail(count=2)] == [2.0, 3.0]


def test_corrupt_lines_are_counted_not_fatal(tmp_path):
    store = HistoryStore(str(tmp_path / "hist"))
    store.append(_record())
    target = store.file_for("bench_interpreter")
    with open(target, "a") as handle:
        handle.write('{"torn": ')          # crashed writer's tail
        handle.write("\n[1, 2, 3]\n")      # foreign JSON line
    assert len(store.records()) == 1
    assert store.corrupt_lines == 2


def test_host_filter_partitions_shared_files(tmp_path):
    store = HistoryStore(str(tmp_path / "hist"))
    store.append(_record())
    store.append(make_record("bench_interpreter",
                             {"mcf": {"instructions_per_sec": 9.0}},
                             git_sha="s", host="otherhost", timestamp=2.0))
    assert len(store.records(host="testhost")) == 1
    assert len(store.records(host="otherhost")) == 1


def test_append_payload_convenience(tmp_path):
    record_id = append_payload(
        str(tmp_path / "hist"),
        {"kind": "bench_interpreter",
         "rows": {"mcf": {"instructions_per_sec": 5.0}}},
        source="bench.json", timestamp=1.0, git_sha="s", host="h")
    assert len(record_id) == 64
    assert len(HistoryStore(str(tmp_path / "hist")).records()) == 1


def test_iter_row_metrics_flattens_numeric_cells():
    cells = list(iter_row_metrics([_record(value=7.0)]))
    assert cells == [("bench_interpreter", "mcf", "instructions_per_sec",
                      cells[0][3], 7.0)]


# -- concurrent appends (two real processes) --------------------------------


def _append_many(path, worker, count):
    store = HistoryStore(path)
    for i in range(count):
        store.append(make_record(
            "bench_interpreter",
            {"mcf": {"instructions_per_sec": float(worker * 1000 + i)}},
            source=f"worker-{worker}", git_sha=f"sha-{worker}-{i}",
            host="testhost", timestamp=float(i)))


def test_two_processes_append_whole_lines(tmp_path):
    """O_APPEND single-write appends from two processes interleave whole
    records: every line parses and nothing is lost."""
    path = str(tmp_path / "hist" / "shared.jsonl")
    count = 100
    procs = [multiprocessing.Process(target=_append_many,
                                     args=(path, worker, count))
             for worker in (1, 2)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    with open(path) as handle:
        lines = handle.readlines()
    assert len(lines) == 2 * count
    parsed = [json.loads(line) for line in lines]  # no torn lines
    store = HistoryStore(path)
    records = store.records()
    assert len(records) == 2 * count
    assert store.corrupt_lines == 0
    values = {r["rows"]["mcf"]["instructions_per_sec"] for r in parsed}
    assert values == {float(w * 1000 + i)
                      for w in (1, 2) for i in range(count)}
