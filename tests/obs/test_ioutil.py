"""Atomic artifact writes: rename-into-place, aborts, orphan sweeping."""

import json
import multiprocessing
import os

import pytest

from repro.obs.ioutil import (AtomicBinaryWriter, atomic_write_bytes,
                              atomic_write_text, cleanup_orphan_tmp)


def test_atomic_write_text_round_trip(tmp_path):
    path = tmp_path / "artifact.json"
    atomic_write_text(str(path), "{\"a\": 1}\n")
    assert path.read_text() == "{\"a\": 1}\n"
    assert list(tmp_path.iterdir()) == [path]  # no temp debris


def test_atomic_write_bytes_round_trip(tmp_path):
    path = tmp_path / "artifact.bin"
    atomic_write_bytes(str(path), b"\x00\x01\xff")
    assert path.read_bytes() == b"\x00\x01\xff"


def test_binary_writer_commit_publishes_and_reports_bytes(tmp_path):
    path = tmp_path / "out.ctrace"
    writer = AtomicBinaryWriter(str(path))
    assert writer.write(b"abc") == 3
    assert writer.write(b"def") == 3
    assert writer.tell() == writer.bytes_written == 6
    assert not path.exists()  # nothing published before commit
    writer.commit()
    assert path.read_bytes() == b"abcdef"


def test_binary_writer_abort_keeps_previous_artifact(tmp_path):
    path = tmp_path / "out.bin"
    path.write_bytes(b"old complete artifact")
    writer = AtomicBinaryWriter(str(path))
    writer.write(b"half-finished replace")
    writer.abort()
    assert path.read_bytes() == b"old complete artifact"
    assert list(tmp_path.iterdir()) == [path]


def test_binary_writer_context_manager_aborts_on_exception(tmp_path):
    path = tmp_path / "out.bin"
    with pytest.raises(RuntimeError):
        with AtomicBinaryWriter(str(path)) as writer:
            writer.write(b"doomed")
            raise RuntimeError("simulated crash")
    assert not path.exists()
    assert not list(tmp_path.iterdir())


def test_write_after_close_is_an_error(tmp_path):
    writer = AtomicBinaryWriter(str(tmp_path / "x.bin"))
    writer.commit()
    with pytest.raises(ValueError, match="already closed"):
        writer.write(b"late")


def test_cleanup_sweeps_only_stale_tmp_files(tmp_path):
    stale = tmp_path / "tmpdead1.tmp"
    stale.write_bytes(b"x")
    os.utime(stale, (1, 1))  # ancient
    fresh = tmp_path / "tmplive2.tmp"
    fresh.write_bytes(b"y")  # mtime = now, inside the grace window
    unrelated = tmp_path / "keep.json"
    unrelated.write_text("{}")
    removed = cleanup_orphan_tmp(str(tmp_path))
    assert removed == 1
    assert not stale.exists()
    assert fresh.exists()
    assert unrelated.exists()


def test_cleanup_of_missing_directory_is_quiet(tmp_path):
    assert cleanup_orphan_tmp(str(tmp_path / "nope")) == 0


def test_writers_self_heal_their_directory(tmp_path):
    stale = tmp_path / "tmpcrash.tmp"
    stale.write_bytes(b"z")
    os.utime(stale, (1, 1))
    atomic_write_text(str(tmp_path / "new.txt"), "hello")
    assert not stale.exists()


# -- concurrent writers (real processes, satellite of the status-file /
# history work: a heartbeat path shared by racing runs must degrade to
# last-writer-wins, never to interleaved bytes) ------------------------------


def _hammer_writes(path, worker, rounds, barrier):
    barrier.wait()  # maximize overlap
    for i in range(rounds):
        # each payload is self-consistent: a torn mix of two writers
        # would break the writer == len(payload["fill"]) invariant
        payload = {"writer": worker, "round": i, "fill": "x" * worker * 512}
        atomic_write_text(path, json.dumps(payload))


def test_concurrent_atomic_writers_never_tear(tmp_path):
    """N processes replacing one path: every observed read is one
    writer's complete payload (last-writer-wins, no interleaving)."""
    path = str(tmp_path / "status.json")
    rounds = 40
    barrier = multiprocessing.Barrier(3)
    procs = [multiprocessing.Process(target=_hammer_writes,
                                     args=(path, worker, rounds, barrier))
             for worker in (1, 2)]
    for proc in procs:
        proc.start()
    barrier.wait()
    observed = 0
    while any(proc.is_alive() for proc in procs) or observed == 0:
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.loads(handle.read())  # must always parse
        except FileNotFoundError:
            continue
        assert len(data["fill"]) == data["writer"] * 512
        observed += 1
        if observed > 10_000:  # plenty of interleaved reads seen
            break
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    # settled state is exactly one writer's final payload
    final = json.loads(open(path, encoding="utf-8").read())
    assert final["round"] == rounds - 1
    assert final["writer"] in (1, 2)
    assert observed > 0
    # no tmp debris left behind by either racer
    debris = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
    assert debris == []
