"""CFG layer: call/ret modeling, region slicing, blocks, dominators."""

import pytest

from repro.analysis.cfg import (CFG, call_return_map, main_cfg, reachable_pcs,
                                slice_pcs, successor_map, thread_cfg,
                                thread_regions)
from repro.errors import ProgramValidationError
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program


def build_shared_subroutine():
    """Two callers share one subroutine; its ret must flow to both."""
    b = ProgramBuilder()
    with b.function("main"):
        b.call("sub")        # pc 0
        b.call("sub")        # pc 1
        b.halt()             # pc 2
    with b.function("sub"):
        b.nop()              # pc 3
        b.ret()              # pc 4
    return b.build()


def test_cfg_requires_finalized_program():
    with pytest.raises(ProgramValidationError):
        CFG(Program(), 0)


def test_ret_flows_to_every_callers_return_site():
    program = build_shared_subroutine()
    successors = successor_map(program)
    assert successors[0] == (3,)        # call enters the subroutine
    assert set(successors[4]) == {1, 2}  # ret returns to both call sites


def test_call_return_map_least_fixpoint():
    program = build_shared_subroutine()
    can_return, ret_map = call_return_map(program)
    assert can_return == {3}
    assert ret_map[3] == {4}


def test_never_returning_callee_kills_fallthrough():
    b = ProgramBuilder()
    with b.function("main"):
        b.call("spin")       # pc 0
        b.halt()             # pc 1: dead — spin never returns
    with b.function("spin"):
        b.label("loop")      # pc 2
        b.jmp("loop")
    program = b.build()
    can_return, _ = call_return_map(program)
    assert can_return == set()
    assert 1 not in reachable_pcs(program)


def test_tail_call_hands_ret_to_original_caller():
    b = ProgramBuilder()
    with b.function("main"):
        b.call("outer")      # pc 0
        b.halt()             # pc 1
    with b.function("outer"):
        b.jmp("inner")       # pc 2: tail call
    with b.function("inner"):
        b.ret()              # pc 3: pops main's return site
    program = b.build()
    successors = successor_map(program)
    assert successors[3] == (1,)
    assert 1 in reachable_pcs(program)


def test_nested_call_is_stepped_over_not_into():
    # helper's ret must not be attributed to main's call of outer
    b = ProgramBuilder()
    with b.function("main"):
        b.call("outer")      # pc 0
        b.halt()             # pc 1
    with b.function("outer"):
        b.call("helper")     # pc 2
        b.ret()              # pc 3: the only ret returning from outer
    with b.function("helper"):
        b.nop()              # pc 4
        b.ret()              # pc 5
    program = b.build()
    _, ret_map = call_return_map(program)
    assert ret_map[2] == {3}   # outer returns via pc 3 only
    assert ret_map[4] == {5}
    successors = successor_map(program)
    assert successors[5] == (3,)   # helper's ret -> outer's return site
    assert successors[3] == (1,)   # outer's ret -> main's return site


def test_thread_regions_from_function_records():
    b = ProgramBuilder()
    with b.thread("worker"):
        b.nop()
        b.treturn()
    with b.function("main"):
        b.halt()
    regions = thread_regions(b.build())
    assert set(regions) == {"worker"}
    assert len(regions["worker"]) == 2


def test_region_slices_are_isolated():
    b = ProgramBuilder()
    with b.thread("worker"):
        b.nop()
        b.treturn()
    with b.function("main"):
        b.nop()
        b.halt()
    program = b.build()
    main = main_cfg(program)
    worker = thread_cfg(program, "worker")
    assert main.pcs.isdisjoint(worker.pcs)
    # but both are reachable program-wide
    assert reachable_pcs(program) == main.pcs | worker.pcs


def test_shared_subroutine_in_both_slices():
    b = ProgramBuilder()
    with b.thread("worker"):
        b.call("sub")
        b.treturn()
    with b.function("main"):
        b.call("sub")
        b.halt()
    with b.function("sub"):
        b.nop()
        b.ret()
    program = b.build()
    sub_start = next(f.start for f in program.functions if f.name == "sub")
    assert sub_start in main_cfg(program).pcs
    assert sub_start in thread_cfg(program, "worker").pcs


def test_basic_blocks_partition_the_slice():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 3)
            b.label("loop")
            b.subi(r, r, 1)
            b.bnez(r, "loop")
        b.halt()
    cfg = main_cfg(b.build())
    covered = sorted(pc for block in cfg.blocks for pc in block.pcs)
    assert covered == sorted(cfg.pcs)
    # every pc maps to exactly the block that contains it
    for block in cfg.blocks:
        for pc in block.pcs:
            assert cfg.block_at(pc) is block
    # succ/pred lists are consistent
    for block in cfg.blocks:
        for succ in block.succs:
            assert block.index in cfg.blocks[succ].preds


def test_loop_back_edge_creates_block_boundary():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 3)           # pc 0
            b.label("loop")
            b.subi(r, r, 1)      # pc 1: leader (branch target)
            b.bnez(r, "loop")    # pc 2
        b.halt()                 # pc 3
    cfg = main_cfg(b.build())
    loop_head = cfg.block_at(1)
    assert loop_head.start == 1
    branch_block = cfg.block_at(2)
    assert set(branch_block.succs) == {loop_head.index,
                                       cfg.block_at(3).index}


def test_dominators_on_a_diamond():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 1)           # pc 0: entry
            b.beqz(r, "right")   # pc 1
            b.nop()              # pc 2: left arm
            b.jmp("join")        # pc 3
            b.label("right")
            b.nop()              # pc 4: right arm
            b.label("join")
            b.halt()             # pc 5: join
    cfg = main_cfg(b.build())
    dom = cfg.dominators()
    entry = cfg.block_at(0).index
    left = cfg.block_at(2).index
    right = cfg.block_at(4).index
    join = cfg.block_at(5).index
    assert dom[join] == {entry, join}  # neither arm dominates the join
    assert entry in dom[left] and entry in dom[right]


def test_slice_pcs_accepts_precomputed_successors():
    program = build_shared_subroutine()
    successors = successor_map(program)
    assert slice_pcs(program, [0], successors) == \
        slice_pcs(program, [0])
