"""Unit and property tests for the symbolic affine analysis.

Three layers, mirroring the module:

* the :class:`Affine` algebra and the per-op transfer function
  (``step_affine`` / ``access_affine``), including an exactness
  property — any register the symbolic walk resolves must equal the
  machine's concrete value under substitution of the seeds;
* the overlap algebra (``overlap_verdict``), with a brute-force
  property oracle over small instantiation spaces;
* the feeder-segment proof (``prove_param_recovery``) — constant
  plans, the vpr single-case shape, the twolf two-region shape, and
  the rejection paths (non-affine parameter, ambiguous regions,
  clobbered load value numbering);

plus clean/flagging twins for the ``symbolic-unresolved-region``
finding the race checks emit when both lattices widen to top.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_program
from repro.analysis.cfg import main_cfg, thread_cfg
from repro.analysis.symbolic import (ALL, NONE, SOME, UNKNOWN, Affine,
                                     SymbolicValues, access_affine,
                                     overlap_verdict, prove_param_recovery,
                                     segment_start, step_affine,
                                     symbolic_access_map, symbolic_report,
                                     thread_entry_env)
from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.machine.context import ContextState
from repro.machine.machine import Machine


def r1():
    return Affine.term(("param", 1))


def _codes(findings):
    return {f.code for f in findings}


# -- the Affine algebra --------------------------------------------------------


def test_affine_constant_and_term_basics():
    five = Affine.constant(5)
    assert five.is_const and five.const == 5
    expr = r1().add(Affine.constant(3))
    assert not expr.is_const
    assert expr.const == 3 and expr.terms == ((("param", 1), 1),)


def test_affine_add_sub_cancel_to_constant():
    expr = r1().add(Affine.constant(10)).sub(r1())
    assert expr == Affine.constant(10)
    assert expr.is_const


def test_affine_scale_distributes():
    expr = r1().add(Affine.constant(2)).scale(3)
    assert expr.const == 6
    assert expr.terms == ((("param", 1), 3),)


def test_affine_diff_const():
    a = r1().add(Affine.constant(272))
    assert a.diff_const(r1()) == 272
    assert a.diff_const(Affine.term(("param", 2))) is None


def test_affine_equality_ignores_term_order_and_zero_coeffs():
    a = Affine(1, [(("param", 1), 1), (("param", 2), 1)])
    b = Affine(1, [(("param", 2), 1), (("param", 1), 1), (("load", 9), 0)])
    assert a == b and hash(a) == hash(b)


def test_affine_describe_is_human_readable():
    assert r1().sub(Affine.constant(272)).describe() == "r1 - 272"
    assert Affine.constant(7).describe() == "7"
    assert r1().scale(-1).add(Affine.constant(4)).describe() == "-r1 + 4"


# -- the per-op transfer function ----------------------------------------------


def _instructions(build):
    """Emit ``build(b)`` into a throwaway function; return instructions."""
    b = ProgramBuilder()
    b.zeros("scratch", 8)
    with b.function("main"):
        build(b)
        b.halt()
    return b.build().instructions


def _env(**regs):
    env = {reg: None for reg in range(32)}
    env[1] = r1()
    for name, value in regs.items():
        env[int(name[1:])] = value
    return env


def test_transfer_li_and_mov():
    ins = _instructions(lambda b: (b.li(4, 7), b.mov(5, 1)))
    env = _env()
    step_affine(ins[0], env)
    step_affine(ins[1], env)
    assert env[4] == Affine.constant(7)
    assert env[5] == r1()


def test_transfer_li_float_widens():
    ins = _instructions(lambda b: b.li(4, 2.5))
    env = _env(r4=Affine.constant(1))
    step_affine(ins[0], env)
    assert env[4] is None


def test_transfer_add_sub_with_params():
    ins = _instructions(lambda b: (b.add(4, 1, 5), b.subi(6, 4, 3)))
    env = _env(r5=Affine.constant(10))
    step_affine(ins[0], env)
    assert env[4] == r1().add(Affine.constant(10))
    step_affine(ins[1], env)
    assert env[6] == r1().add(Affine.constant(7))


def test_transfer_mul_by_constant_scales_either_side():
    ins = _instructions(lambda b: (b.mul(4, 1, 5), b.mul(6, 5, 1),
                                   b.emit("muli", 7, 1, 3)))
    env = _env(r5=Affine.constant(4))
    for i in ins[:3]:
        step_affine(i, env)
    assert env[4] == r1().scale(4)
    assert env[6] == r1().scale(4)
    assert env[7] == r1().scale(3)


def test_transfer_bilinear_mul_widens():
    ins = _instructions(lambda b: b.mul(4, 1, 2))
    env = _env()
    env[2] = Affine.term(("param", 2))
    step_affine(ins[0], env)
    assert env[4] is None


def test_transfer_constants_fold_through_modeled_ops():
    ins = _instructions(lambda b: (b.emit("xor", 4, 5, 6),
                                   b.emit("idiv", 7, 5, 6)))
    env = _env(r5=Affine.constant(12), r6=Affine.constant(10))
    step_affine(ins[0], env)
    step_affine(ins[1], env)
    assert env[4] == Affine.constant(12 ^ 10)
    assert env[7] is None  # division is outside the folding table: widen


def test_transfer_nonaffine_op_on_symbolic_operand_widens():
    ins = _instructions(lambda b: (b.emit("idiv", 4, 1, 5),
                                   b.emit("and_", 6, 1, 5)))
    env = _env(r5=Affine.constant(2))
    step_affine(ins[0], env)
    step_affine(ins[1], env)
    assert env[4] is None and env[6] is None


def test_transfer_unknown_operand_poisons_dest():
    ins = _instructions(lambda b: b.add(4, 1, 9))
    env = _env()  # r9 unknown
    step_affine(ins[0], env)
    assert env[4] is None


def test_transfer_load_widens_without_value_numbering():
    ins = _instructions(lambda b: b.ld(4, 1, 0))
    env = _env(r4=Affine.constant(1))
    step_affine(ins[0], env)
    assert env[4] is None


def test_access_affine_const_and_indexed_offsets():
    ins = _instructions(lambda b: (b.ld(4, 1, 3), b.ldx(4, 1, 5),
                                   b.ldx(4, 1, 9)))
    env = _env(r5=Affine.constant(2))
    assert access_affine(ins[0], env) == r1().add(Affine.constant(3))
    assert access_affine(ins[1], env) == r1().add(Affine.constant(2))
    assert access_affine(ins[2], env) is None  # r9 unknown offset


_SEED_REGS = (1, 2, 3)
_WORK_REGS = (10, 11, 12, 13)


@st.composite
def _transfer_program(draw):
    ops = []
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.sampled_from(["li", "mov", "add", "sub", "mul",
                                     "addi", "subi", "muli"]))
        rd = draw(st.sampled_from(_WORK_REGS))
        rs = draw(st.sampled_from(_SEED_REGS + _WORK_REGS))
        if kind == "li":
            ops.append(("li", rd, draw(st.integers(-50, 50))))
        elif kind == "mov":
            ops.append(("mov", rd, rs))
        elif kind in ("addi", "subi", "muli"):
            ops.append((kind, rd, rs, draw(st.integers(-9, 9))))
        else:
            rt = draw(st.sampled_from(_SEED_REGS + _WORK_REGS))
            ops.append((kind, rd, rs, rt))
    seeds = {reg: draw(st.integers(-100, 100)) for reg in _SEED_REGS}
    return ops, seeds


@given(_transfer_program())
@settings(max_examples=80, deadline=None)
def test_transfer_resolved_values_match_concrete_execution(case):
    """Exactness: substitute the seeds into any expression the symbolic
    walk resolves — it must equal the machine's concrete register."""
    ops, seeds = case
    b = ProgramBuilder()
    b.zeros("scratch", 8)
    with b.function("main"):
        for reg, value in seeds.items():
            b.li(reg, value)
        first = b.li(9, 0) + 1  # marker: symbolic walk starts after this
        for op in ops:
            b.emit(*op)
        b.halt()
    program = b.build()

    env = {reg: None for reg in range(32)}
    for reg in _SEED_REGS:
        env[reg] = Affine.term(("param", reg))
    for pc in range(first, len(program.instructions) - 1):
        step_affine(program.instructions[pc], env)

    machine = Machine(program)
    main = machine.main_context
    while main.state is ContextState.RUNNING:
        machine.step(main)

    for reg in _WORK_REGS:
        expr = env[reg]
        if expr is None:
            continue
        value = expr.const + sum(coeff * seeds[term[1]]
                                 for term, coeff in expr.terms)
        assert main.regs[reg] == value, (reg, expr, ops)


# -- the overlap algebra -------------------------------------------------------


def test_overlap_constant_point_is_all_or_none():
    expr = Affine.constant(12)
    assert overlap_verdict(expr, [(0, 4)], [(10, 20)]) == ALL
    assert overlap_verdict(expr, [(0, 4)], [(0, 10)]) == NONE


def test_overlap_identity_coefficient_tracks_feasible_range():
    assert overlap_verdict(r1(), [(10, 14)], [(10, 14)]) == ALL
    assert overlap_verdict(r1(), [(10, 14)], [(12, 20)]) == SOME
    assert overlap_verdict(r1(), [(10, 14)], [(14, 20)]) == NONE


def test_overlap_negative_coefficient_reflects_the_range():
    expr = r1().scale(-1).add(Affine.constant(20))  # 20 - r1
    assert overlap_verdict(expr, [(10, 12)], [(9, 11)]) == ALL
    assert overlap_verdict(expr, [(10, 12)], [(10, 11)]) == SOME
    assert overlap_verdict(expr, [(10, 12)], [(11, 20)]) == NONE


def test_overlap_offset_translation():
    expr = r1().sub(Affine.constant(272))  # the vpr channel id
    assert overlap_verdict(expr, [(272, 284)], [(0, 12)]) == ALL
    assert overlap_verdict(expr, [(272, 284)], [(6, 12)]) == SOME


def test_overlap_strided_uses_interval_hull():
    # 2*r1 over r1 in [0,3) really hits {0, 2, 4}; the hull may say
    # SOME for the missed odd cell — sound (adds a finding), not exact
    expr = r1().scale(2)
    assert overlap_verdict(expr, [(0, 3)], [(1, 2)]) == SOME
    assert overlap_verdict(expr, [(0, 3)], [(5, 9)]) == NONE
    # a single-point feasible set is exact for any coefficient
    assert overlap_verdict(expr, [(5, 6)], [(10, 11)]) == ALL


def test_overlap_unknowns():
    assert overlap_verdict(r1(), [(0, 4)], []) == NONE
    assert overlap_verdict(r1(), [], [(0, 4)]) == UNKNOWN
    r2_expr = Affine.term(("param", 2))
    assert overlap_verdict(r2_expr, [(0, 4)], [(0, 4)]) == UNKNOWN


@st.composite
def _overlap_case(draw):
    coeff = draw(st.integers(-2, 2))
    const = draw(st.integers(-8, 8))
    expr = Affine(const, [(("param", 1), coeff)])
    ranges = st.tuples(st.integers(0, 12), st.integers(1, 4)).map(
        lambda t: (t[0], t[0] + t[1]))
    feasible = draw(st.lists(ranges, min_size=1, max_size=2))
    targets = draw(st.lists(ranges, min_size=0, max_size=2))
    return expr, coeff, feasible, targets


@given(_overlap_case())
@settings(max_examples=150, deadline=None)
def test_overlap_verdict_sound_always_exact_for_unit_coefficients(case):
    expr, coeff, feasible, targets = case
    verdict = overlap_verdict(expr, feasible, targets)
    hits = [any(lo <= expr.const + coeff * a < hi for lo, hi in targets)
            for piece_lo, piece_hi in feasible
            for a in range(piece_lo, piece_hi)]
    if verdict == NONE:
        assert not any(hits)
    elif verdict == ALL:
        assert all(hits)
    if abs(coeff) <= 1 or not targets:  # exact fragment
        truth = (NONE if not any(hits)
                 else ALL if all(hits) else SOME)
        assert verdict == truth, (expr, feasible, targets)


# -- the feeder-segment proof --------------------------------------------------


def _feeder_program(second_region=False, clobber=False, reload_idx=False,
                    ambiguous=False):
    """A main function shaped like the paper's parameterized feeders:
    load an index, form ``base + index``, triggering-store through it,
    then (the would-be region) read through the index register."""
    b = ProgramBuilder()
    b.data("idx", [3])
    b.data("xs", [0] * 8)
    b.data("ys", [0] * 8)
    feeders = []
    with b.function("main"):
        b.la(4, "idx")
        b.ld(9, 4, 0)          # r9 = the region parameter
        b.li(7, 1)
        b.la(5, "xs")
        b.add(6, 5, 9)
        feeders.append(b.tst(7, 6, 0))
        if second_region:
            b.la(5, "ys")
            b.add(6, 5, 9)
            feeders.append(b.tst(7, 6, 0))
        if ambiguous:
            b.la(5, "xs")
            b.add(6, 5, 9)
            feeders.append(b.tst(7, 6, 1))  # same region, delta + 1
        if clobber:
            b.st(20, 4, 0)     # overwrite idx with an unknown value
        if reload_idx or clobber:
            b.ld(9, 4, 0)      # region will use the re-loaded index
        region_start = b.ldx(8, 5, 9)  # region entry: reads base + r9
        b.out(8)
        b.halt()
    return b.build(), feeders, region_start


def test_recovery_single_case_is_the_vpr_shape():
    program, feeders, region_start = _feeder_program()
    cfg = main_cfg(program)
    recovery = prove_param_recovery(program, cfg, region_start, [9], feeders)
    assert recovery is not None
    kind, cases = recovery.plans[9]
    assert kind == "cases" and len(cases) == 1
    lo, hi, delta = cases[0]
    xs_base, xs_size = program.layout["xs"]
    assert (lo, hi, delta) == (xs_base, xs_base + xs_size, xs_base)


def test_recovery_two_regions_is_the_twolf_shape():
    program, feeders, region_start = _feeder_program(second_region=True)
    cfg = main_cfg(program)
    recovery = prove_param_recovery(program, cfg, region_start, [9], feeders)
    assert recovery is not None
    kind, cases = recovery.plans[9]
    assert kind == "cases" and len(cases) == 2
    # descending by region base, one delta per disjoint feeder region
    assert cases[0][0] > cases[1][0]
    assert cases[0][2] != cases[1][2]


def test_recovery_constant_parameter():
    b = ProgramBuilder()
    b.data("xs", [0] * 4)
    with b.function("main"):
        b.li(7, 1)
        b.la(5, "xs")
        tst_pc = b.tst(7, 5, 0)
        b.la(9, "xs")          # the "parameter" is a materialized base
        region_start = b.ld(8, 9, 1)
        b.out(8)
        b.halt()
    program = b.build()
    recovery = prove_param_recovery(program, main_cfg(program), region_start,
                                    [9], [tst_pc])
    assert recovery is not None
    assert recovery.plans[9] == ("const", program.layout["xs"][0])
    assert recovery.as_dict() == {
        "r9": {"kind": "const", "value": program.layout["xs"][0]}}


def test_recovery_value_numbering_survives_a_reload():
    program, feeders, region_start = _feeder_program(reload_idx=True)
    recovery = prove_param_recovery(program, main_cfg(program), region_start,
                                    [9], feeders)
    assert recovery is not None  # re-load shares the first load's symbol


def test_recovery_rejects_a_clobbered_index():
    program, feeders, region_start = _feeder_program(clobber=True)
    recovery = prove_param_recovery(program, main_cfg(program), region_start,
                                    [9], feeders)
    assert recovery is None  # the store killed the memoized load


def test_recovery_rejects_same_region_different_deltas():
    program, feeders, region_start = _feeder_program(ambiguous=True)
    recovery = prove_param_recovery(program, main_cfg(program), region_start,
                                    [9], feeders)
    assert recovery is None  # r1 cannot tell the two deltas apart


def test_recovery_rejects_a_parameter_the_feeder_does_not_determine():
    b = ProgramBuilder()
    b.data("idx", [3])
    b.data("xs", [0] * 8)
    with b.function("main"):
        b.la(4, "idx")
        b.ld(9, 4, 0)          # r9 = a loaded index...
        b.li(7, 1)
        b.la(5, "xs")
        tst_pc = b.tst(7, 5, 0)  # ...but the feeder address is constant
        region_start = b.ldx(8, 5, 9)
        b.out(8)
        b.halt()
    program = b.build()
    recovery = prove_param_recovery(program, main_cfg(program), region_start,
                                    [9], [tst_pc])
    # address(feeder) - value(r9) is symbolic, not a constant: r1 at
    # thread entry carries no information about the loaded index
    assert recovery is None


def test_segment_start_stops_at_joins():
    b = ProgramBuilder()
    b.data("xs", [0] * 4)
    with b.function("main"):
        b.li(4, 1)
        skip = b.fresh_label("j")
        b.beqz(4, skip)
        b.li(5, 2)
        b.label(skip)
        join_pc = b.la(6, "xs")   # two predecessors: segment starts here
        b.li(7, 3)
        region = b.ld(8, 6, 0)
        b.out(8)
        b.halt()
    program = b.build()
    assert segment_start(main_cfg(program), region) == join_pc


# -- the symbolic dataflow over thread bodies ----------------------------------


def _thread_program(body):
    b = ProgramBuilder()
    b.data("xs", [5, 6, 7, 8])
    b.zeros("ys", 4)
    with b.thread("worker"):
        body(b)
        b.treturn()
    with b.function("main"):
        b.la(4, "xs")
        b.li(5, 9)
        tst_pc = b.tst(5, 4, 1)
        b.tcheck_thread("worker")
        b.halt()
    return b.build(), TriggerSpec("worker", store_pcs=[tst_pc])


def test_thread_accesses_resolve_as_r1_affine_and_constants():
    def body(b):
        b.ld(4, 1, 0)          # mem[r1]
        b.la(5, "ys")
        b.st(4, 5, 2)          # constant address

    program, spec = _thread_program(body)
    values = SymbolicValues(thread_cfg(program, "worker"),
                            thread_entry_env())
    addresses = symbolic_access_map(values)
    exprs = {pc: e for pc, e in addresses.items() if e is not None}
    assert len(addresses) == 2 and len(exprs) == 2
    described = sorted(e.describe() for e in exprs.values())
    ys_base = program.layout["ys"][0]
    assert described == sorted(["r1", str(ys_base + 2)])


def test_loop_carried_addresses_widen_to_none():
    def body(b):
        b.la(5, "xs")
        b.li(6, 0)
        with b.scratch(1) as (i,):
            with b.for_range(i, 0, 4):
                b.ldx(4, 5, i)   # i joins over iterations: widened
                b.add(6, 6, 4)
        b.la(7, "ys")
        b.st(6, 7, 0)

    program, spec = _thread_program(body)
    values = SymbolicValues(thread_cfg(program, "worker"),
                            thread_entry_env())
    addresses = symbolic_access_map(values)
    loads = [e for pc, e in sorted(addresses.items())][:-1]
    assert any(e is None for e in loads)  # the loop body ldx widened
    report = symbolic_report(program, [spec])
    assert report[0]["thread"] == "worker"
    assert report[0]["resolved"] < len(report[0]["accesses"])


# -- clean/flagging twins: symbolic-unresolved-region --------------------------


def test_unresolved_region_flags_a_top_top_access():
    def body(b):
        b.ld(4, 9, 0)          # r9 is stale: concrete top, symbolic None

    program, spec = _thread_program(body)
    findings = analyze_program(program, [spec])
    assert "symbolic-unresolved-region" in _codes(findings)


def test_unresolved_region_stays_quiet_when_addresses_resolve():
    def body(b):
        b.ld(4, 1, 0)
        b.la(5, "ys")
        b.st(4, 5, 0)

    program, spec = _thread_program(body)
    findings = analyze_program(program, [spec])
    assert "symbolic-unresolved-region" not in _codes(findings)
