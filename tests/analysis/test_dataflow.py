"""Dataflow layer: reaching defs, liveness, value/address propagation."""

from repro.analysis.cfg import main_cfg
from repro.analysis.dataflow import (ENTRY_DEF, TOP, UNDEF, AddressSet,
                                     Liveness, ReachingDefinitions,
                                     ValueAnalysis, access_summary,
                                     const_value, meet_values,
                                     region_containing, region_value,
                                     union_addresses, value_to_addresses)
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import NUM_REGISTERS


def zero_env():
    return {reg: const_value(0) for reg in range(NUM_REGISTERS)}


# -- reaching definitions -----------------------------------------------------


def test_one_armed_definition_reaches_join_as_maybe_undef():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (cond, x):
            b.li(cond, 1)            # pc 0
            b.beqz(cond, "skip")     # pc 1
            b.li(x, 5)               # pc 2: only one arm defines x
            b.label("skip")
            use = b.add(x, x, x)     # pc 3
        b.halt()
    rd = ReachingDefinitions(main_cfg(b.build()))
    defs = rd.defs_at(use)[int(x)]
    assert UNDEF in defs and 2 in defs


def test_entry_regs_are_defined_at_entry():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            use = b.add(r, r, r)
        b.halt()
    cfg = main_cfg(b.build())
    rd = ReachingDefinitions(cfg, entry_regs=(int(r),))
    assert rd.defs_at(use)[int(r)] == frozenset([ENTRY_DEF])
    # without the seed, the same read is maybe-uninitialized
    rd = ReachingDefinitions(cfg)
    assert rd.defs_at(use)[int(r)] == frozenset([UNDEF])


def test_defs_at_recomputes_within_a_block():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            first = b.li(r, 1)
            b.li(r, 2)
            use = b.add(r, r, r)
        b.halt()
    rd = ReachingDefinitions(main_cfg(b.build()))
    # just before the second li, the first one still reaches
    assert rd.defs_at(first + 1)[int(r)] == frozenset([first])
    assert rd.defs_at(use)[int(r)] == frozenset([first + 1])


# -- liveness -----------------------------------------------------------------


def test_liveness_kills_at_definition_and_gens_at_use():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (a, c):
            define = b.li(a, 1)      # a dead before, live after
            use = b.add(c, a, a)     # last use of a
        b.halt()
    live = Liveness(main_cfg(b.build()))
    assert int(a) not in live.live_into(define)
    assert int(a) in live.live_into(use)
    assert int(c) not in live.live_into(use)   # c written, never read


def test_loop_carried_register_stays_live():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 3)
            b.label("loop")
            back = b.subi(r, r, 1)
            b.bnez(r, "loop")
        b.halt()
    live = Liveness(main_cfg(b.build()))
    assert int(r) in live.live_into(back)


# -- value lattice ------------------------------------------------------------


def test_meet_values_lattice():
    assert meet_values(const_value(3), const_value(3)) == const_value(3)
    assert meet_values(const_value(3), const_value(4)) == TOP
    assert meet_values(region_value(["xs"]), region_value(["ys"])) == \
        region_value(["xs", "ys"])
    assert meet_values(const_value(3), TOP) == TOP
    assert region_value([]) == TOP  # no regions means anything


def test_constant_folding_through_arithmetic():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (x, y):
            b.li(x, 6)
            b.li(y, 7)
            b.mul(x, x, y)
            b.addi(x, x, 1)
            probe = b.mov(y, x)
        b.halt()
    values = ValueAnalysis(main_cfg(b.build()), zero_env())
    assert values.env_at(probe)[int(x)] == const_value(43)
    assert values.env_at(probe + 1)[int(y)] == const_value(43)


def test_load_result_is_top():
    b = ProgramBuilder()
    b.data("xs", [0, 0])
    with b.function("main"):
        with b.scratch(2) as (p, v):
            b.la(p, "xs")
            probe = b.ld(v, p, 0)
        b.halt()
    values = ValueAnalysis(main_cfg(b.build()), zero_env())
    assert values.env_at(probe + 1)[int(v)] == TOP


def test_pointer_plus_unknown_index_widens_to_containing_region():
    b = ProgramBuilder()
    b.data("xs", [0, 0, 0, 0])
    with b.function("main"):
        with b.scratch(3) as (p, i, v):
            b.la(p, "xs")
            b.ld(i, p, 0)            # i becomes top
            probe = b.add(p, p, i)   # const base + top -> region "xs"
        b.halt()
    values = ValueAnalysis(main_cfg(b.build()), zero_env())
    assert values.env_at(probe + 1)[int(p)] == region_value(["xs"])


def test_region_survives_further_offset_arithmetic():
    b = ProgramBuilder()
    b.data("xs", [0, 0, 0, 0])
    with b.function("main"):
        with b.scratch(2) as (p, i):
            b.la(p, "xs")
            b.ld(i, p, 0)
            b.add(p, p, i)
            probe = b.addi(p, p, 1)  # region ± const stays in region
        b.halt()
    values = ValueAnalysis(main_cfg(b.build()), zero_env())
    assert values.env_at(probe + 1)[int(p)] == region_value(["xs"])


def test_divergent_constants_meet_to_top():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (cond, x):
            b.li(cond, 1)
            b.beqz(cond, "other")
            b.li(x, 5)
            b.jmp("join")
            b.label("other")
            b.li(x, 6)
            b.label("join")
            probe = b.mov(x, x)
        b.halt()
    values = ValueAnalysis(main_cfg(b.build()), zero_env())
    assert values.env_at(probe)[int(x)] == TOP


# -- address sets -------------------------------------------------------------


def test_address_set_overlap_rules():
    layout = {"xs": (100, 4), "ys": (104, 4)}
    xs = AddressSet(regions=["xs"])
    ys = AddressSet(regions=["ys"])
    cell = AddressSet(exact=[102])
    assert xs.overlaps(cell, layout)
    assert not ys.overlaps(cell, layout)
    assert not xs.overlaps(ys, layout)
    assert AddressSet.anywhere().overlaps(xs, layout)
    assert not AddressSet().overlaps(xs, layout)  # empty set hits nothing
    assert xs.intersects_ranges([(103, 105)], layout)
    assert not xs.intersects_ranges([(104, 105)], layout)


def test_address_set_describe_uses_layout_symbols():
    layout = {"xs": (100, 4)}
    assert AddressSet(exact=[102]).describe(layout) == "xs[2]"
    assert AddressSet(regions=["xs"]).describe(layout) == "xs[*]"
    assert AddressSet(exact=[999]).describe(layout) == "999"
    assert AddressSet().describe(layout) == "nothing"
    assert AddressSet.anywhere().describe(layout) == "any address"


def test_union_addresses_merges_components():
    merged = union_addresses([AddressSet(exact=[1]),
                              AddressSet(regions=["xs"])])
    assert merged == AddressSet(exact=[1], regions=["xs"])
    assert union_addresses([AddressSet(), AddressSet.anywhere()]).top


def test_value_to_addresses():
    layout = {"xs": (100, 4)}
    assert value_to_addresses(const_value(102), layout) == \
        AddressSet(exact=[102])
    assert value_to_addresses(region_value(["xs"]), layout) == \
        AddressSet(regions=["xs"])
    assert value_to_addresses(TOP, layout).top


def test_region_containing():
    layout = {"xs": (100, 4), "flag": (104, 1)}
    assert region_containing(101, layout) == "xs"
    assert region_containing(104, layout) == "flag"
    assert region_containing(99, layout) is None
    assert region_containing(None, layout) is None


# -- access summaries ---------------------------------------------------------


def test_access_summary_classifies_and_resolves_addresses():
    b = ProgramBuilder()
    b.data("xs", [0, 0, 0, 0])
    b.data("ys", [0, 0])
    with b.function("main"):
        with b.scratch(3) as (p, q, v):
            b.la(p, "xs")
            b.la(q, "ys")
            b.ld(v, p, 1)        # exact read xs[1]
            b.st(v, q, 0)        # exact write ys[0]
            b.ld(v, p, 0)
            b.add(p, p, v)       # p widens to xs region
            b.tst(v, p, 0)       # triggering store somewhere in xs
        b.halt()
    program = b.build()
    summary = access_summary(ValueAnalysis(main_cfg(program), zero_env()))
    xs_base = program.layout["xs"][0]
    ys_base = program.layout["ys"][0]
    read_addrs = [s for _pc, s in summary.reads]
    assert AddressSet(exact=[xs_base + 1]) in read_addrs
    write_addrs = [s for _pc, s in summary.writes]
    assert AddressSet(exact=[ys_base]) in write_addrs
    # the triggering store counts as both a write and a tstore
    assert len(summary.tstores) == 1
    assert summary.tstores[0][1] == AddressSet(regions=["xs"])
    assert summary.tstores[0] in summary.writes
    assert summary.write_set().overlaps(
        AddressSet(regions=["xs"]), program.layout)
