"""DTT safety checks: one flagging fixture and one clean twin per check,
plus granularity widening, cascading suppression, and the bundled-workload
expectations committed in expected_workloads.json."""

import json
import pathlib

import pytest

from repro.analysis import CHECKS, analyze_program
from repro.analysis.checks import (analysis_summary, analyze_build,
                                   analyze_workload, summarize_workload)
from repro.core.config import DttConfig
from repro.core.registry import TriggerSpec
from repro.errors import DttError
from repro.isa.builder import ProgramBuilder
from repro.workloads.suite import SUITE

EXPECTED = pathlib.Path(__file__).parent / "expected_workloads.json"


def fixture(*, store_xs_in_window=False, store_ys_in_window=False,
            load_ys_in_window=False, load_ys_after_tcheck=False,
            store_xs_after_tcheck=False, tcheck=True,
            uninit_thread=False, thread_tstore=False):
    """The refresh-style skeleton all check tests share: a worker thread
    recomputing ys[0] from the triggered xs cell, and a main region that
    triggers it and (optionally) misbehaves inside the trigger window."""
    b = ProgramBuilder()
    b.data("xs", [1, 2, 3, 4])
    b.data("ys", [0, 0])
    with b.thread("worker"):
        with b.scratch(2) as (v, out):
            if not uninit_thread:
                b.ld(v, 1, 0)        # the triggered cell, via r1
            b.la(out, "ys")
            if thread_tstore:
                b.tst(v, out, 1)
            b.st(v, out, 0)          # v read uninitialized when requested
        b.treturn()
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 7)
            b.tst(v, base, 0)
            if store_xs_in_window:
                b.st(v, base, 1)
            if store_ys_in_window:
                with b.scratch(1) as (t,):
                    b.la(t, "ys")
                    b.st(v, t, 0)
            if load_ys_in_window:
                with b.scratch(1) as (t,):
                    b.la(t, "ys")
                    b.ld(t, t, 0)
            if tcheck:
                b.tcheck_thread("worker")
            if load_ys_after_tcheck:
                with b.scratch(1) as (t,):
                    b.la(t, "ys")
                    b.ld(t, t, 0)
            if store_xs_after_tcheck:
                b.st(v, base, 1)
        b.halt()
    return b.build()


def xs_spec(program, thread="worker"):
    base, size = program.layout["xs"]
    return TriggerSpec(thread, watch=[(base, base + size)])


def ys_spec(program, thread="worker"):
    base, size = program.layout["ys"]
    return TriggerSpec(thread, watch=[(base, base + size)])


def codes(program, specs, config=None):
    return [f.code for f in analyze_program(program, specs, config=config,
                                            include_lint=False)]


def tst_pc(program):
    return next(pc for pc, instruction in enumerate(program.instructions)
                if instruction.op == "tst")


# -- the happy path -----------------------------------------------------------


def test_well_formed_conversion_is_clean():
    program = fixture()
    assert codes(program, [xs_spec(program)]) == []
    # lint included by default, still clean
    assert analyze_program(program, [xs_spec(program)]) == []


# -- read-race ----------------------------------------------------------------


def test_store_to_thread_input_inside_window_is_a_parameterized_race():
    # the thread reads cell r1, so the store to xs[1] collides only for
    # the instantiation r1 == &xs[1] — since the symbolic pass (race
    # checks v2) that demotes to parameterized-race, still an error
    program = fixture(store_xs_in_window=True)
    found = codes(program, [xs_spec(program)])
    assert "parameterized-race" in found
    assert "read-race" not in found


def test_store_hitting_every_instantiation_is_a_classic_read_race():
    # a thread that reads a *fixed* cell overlaps the in-window store
    # for every trigger address: the classic read-race code stands
    b = ProgramBuilder()
    b.data("xs", [1, 2, 3, 4])
    b.data("ys", [0, 0])
    with b.thread("worker"):
        with b.scratch(2) as (v, out):
            b.la(v, "xs")
            b.ld(v, v, 1)            # always xs[1], whatever r1 was
            b.la(out, "ys")
            b.st(v, out, 0)
        b.treturn()
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 7)
            b.tst(v, base, 0)
            b.st(v, base, 1)         # clobbers the cell the thread reads
            b.tcheck_thread("worker")
        b.halt()
    program = b.build()
    found = codes(program, [xs_spec(program)])
    assert "read-race" in found
    assert "parameterized-race" not in found


def test_same_store_after_the_tcheck_is_clean():
    program = fixture(store_xs_after_tcheck=True)
    assert codes(program, [xs_spec(program)]) == []


def test_retrigger_of_same_spec_is_not_a_read_race():
    # the triggering store itself writes thread input, but the engine
    # cancels-and-restarts the same-key activation instead of racing
    program = fixture()
    findings = analyze_program(program, [xs_spec(program)],
                               include_lint=False)
    assert all(f.pc != tst_pc(program) for f in findings)
    assert "read-race" not in [f.code for f in findings]


# -- write-race ---------------------------------------------------------------


def test_store_to_thread_output_inside_window_is_a_write_race():
    program = fixture(store_ys_in_window=True)
    assert "write-race" in codes(program, [xs_spec(program)])


def test_consume_without_any_tcheck_is_a_write_race():
    program = fixture(load_ys_in_window=True, tcheck=False)
    found = codes(program, [xs_spec(program)])
    assert "write-race" in found
    assert "consume-before-complete" not in found


# -- consume-before-complete --------------------------------------------------


def test_consume_inside_window_with_downstream_tcheck():
    program = fixture(load_ys_in_window=True)
    assert "consume-before-complete" in codes(program, [xs_spec(program)])


def test_consume_after_tcheck_is_clean():
    program = fixture(load_ys_after_tcheck=True)
    assert codes(program, [xs_spec(program)]) == []


# -- uninitialized-register ---------------------------------------------------


def test_thread_reading_stale_register_is_flagged():
    program = fixture(uninit_thread=True)
    findings = analyze_program(program, [xs_spec(program)],
                               include_lint=False)
    flagged = [f for f in findings if f.code == "uninitialized-register"]
    assert len(flagged) == 1
    assert "worker" in flagged[0].message


def test_trigger_registers_count_as_initialized():
    # the default thread body reads r1 without defining it: fine, since
    # start_support seeds r1/r2/r3 at dispatch
    program = fixture()
    assert "uninitialized-register" not in codes(program, [xs_spec(program)])


def test_uninit_runs_without_specs():
    program = fixture(uninit_thread=True)
    findings = analyze_program(program, include_lint=False)
    assert [f.code for f in findings] == ["uninitialized-register"]


# -- dead-trigger / dead-thread -----------------------------------------------


def test_unmatched_spec_yields_dead_thread_and_dead_trigger():
    program = fixture()
    found = codes(program, [ys_spec(program)])  # watches ys; stores hit xs
    assert "dead-trigger" in found
    assert "dead-thread" in found


def test_matching_spec_is_not_dead():
    program = fixture()
    found = codes(program, [xs_spec(program)])
    assert "dead-trigger" not in found and "dead-thread" not in found


def test_dead_thread_points_at_the_thread_entry():
    program = fixture()
    findings = analyze_program(program, [ys_spec(program)],
                               include_lint=False)
    dead = next(f for f in findings if f.code == "dead-thread")
    assert dead.pc == program.thread_entry_pc("worker")
    assert "watch" in dead.detail


def test_store_pc_spec_matches_exactly():
    program = fixture()
    pc = tst_pc(program)
    assert codes(program, [TriggerSpec("worker", store_pcs=[pc])]) == []
    found = codes(program, [TriggerSpec("worker", store_pcs=[pc + 99])])
    assert "dead-trigger" in found and "dead-thread" in found


def test_granularity_widening_revives_a_neighbor_watch():
    # watch only xs[1]; the store hits xs[0].  Exact matching calls both
    # sides dead, but a granularity wider than the address space widens
    # the range over the store — exactly what the engine's prefilter does.
    program = fixture()
    base, _size = program.layout["xs"]
    spec = TriggerSpec("worker", watch=[(base + 1, base + 2)])
    narrow = codes(program, [spec])
    assert "dead-trigger" in narrow and "dead-thread" in narrow
    wide = codes(program, [spec], DttConfig(granularity=base + 16))
    assert "dead-trigger" not in wide and "dead-thread" not in wide


def test_cascading_suppresses_dead_thread_not_dead_trigger():
    program = fixture(thread_tstore=True)
    spec = ys_spec(program)
    cascading = codes(program, [spec], DttConfig(allow_cascading=True))
    assert "dead-thread" not in cascading  # thread tstores are sources now
    assert "dead-trigger" in cascading     # main's xs store still fires nothing
    plain = codes(program, [spec])
    assert "dead-thread" in plain


# -- spec-unknown-thread ------------------------------------------------------


def test_ghost_thread_spec_is_an_error():
    program = fixture()
    findings = analyze_program(program, [ys_spec(program, thread="ghost")],
                               include_lint=False)
    found = [f.code for f in findings]
    assert "spec-unknown-thread" in found
    assert "dead-trigger" in found          # xs store matches nothing either
    assert "dead-thread" not in found       # no entry pc to point at
    ghost = next(f for f in findings if f.code == "spec-unknown-thread")
    assert ghost.severity == "error" and ghost.pc is None


def test_known_thread_spec_is_not_a_ghost():
    program = fixture()
    assert "spec-unknown-thread" not in codes(program, [xs_spec(program)])


# -- aggregation --------------------------------------------------------------


def test_every_check_code_is_registered():
    program = fixture(store_xs_in_window=True, load_ys_in_window=True,
                      uninit_thread=True)
    findings = analyze_program(
        program,
        [xs_spec(program), ys_spec(program, thread="ghost")],
        include_lint=False)
    for finding in findings:
        assert finding.code in CHECKS
        assert finding.severity is CHECKS[finding.code][0]
    # sorted: errors first, then by pc
    assert [f.severity for f in findings] == sorted(
        (f.severity for f in findings),
        key=lambda s: 0 if s == "error" else 1)


def test_analysis_summary_counts():
    program = fixture(store_xs_in_window=True)
    findings = analyze_program(program, [xs_spec(program)],
                               include_lint=False)
    summary = analysis_summary(findings)
    assert summary["errors"] == len(findings)
    assert summary["warnings"] == 0
    assert summary["codes"]["parameterized-race"] >= 1


def test_analyze_workload_kinds():
    assert analyze_workload("mcf") == analyze_workload(SUITE["mcf"])
    assert analyze_workload("mcf", kind="baseline") == []
    with pytest.raises(DttError):
        analyze_workload("mcf", kind="nonsense")
    with pytest.raises(DttError):
        # perlbmk has no address-watched variant
        analyze_workload("perlbmk", kind="dtt-watch")


def test_analyze_build_matches_analyze_program():
    workload = SUITE["mcf"]
    build = workload.build_dtt(workload.make_input(None, None))
    assert analyze_build(build) == analyze_program(build.program, build.specs)


# -- the bundled suite, pinned ------------------------------------------------


def expected_rows():
    return json.loads(EXPECTED.read_text())


def test_expectations_file_covers_the_whole_suite():
    covered = {(row["workload"], row["kind"]) for row in expected_rows()}
    for name, workload in SUITE.items():
        assert (name, "dtt") in covered
        has_watch = workload.build_dtt_watch(
            workload.make_input(None, None)) is not None
        assert ((name, "dtt-watch") in covered) == has_watch


@pytest.mark.parametrize("row", expected_rows(),
                         ids=lambda row: f"{row['workload']}:{row['kind']}")
def test_workload_verdict_matches_committed_expectation(row):
    summary = summarize_workload(row["workload"], kind=row["kind"])
    assert summary == row


def test_every_bundled_dtt_build_is_error_free():
    for name in SUITE:
        assert analyze_workload(name, kind="dtt") == [], name
