"""Property-based tier equivalence: legacy / closure / superblock.

Random well-formed DTIR programs — nested bounded loops, if-diamonds,
forward jumps, integer/float ALU traffic, and wild computed addresses —
are executed under all three ``Machine.run`` tiers.  Registers, memory,
output, counters, final pc/state, and any fault (type and message) must
be identical; the superblock tier's if-conversion, tail duplication,
side exits, and mid-block fault reconciliation may not be observable.

Counterexamples found by hypothesis are committed to
``tier_fuzz_corpus.json`` (one named plan per historical divergence,
plus hand-picked seeds for known-tricky shapes) and replayed here as
plain regression cases, so shrunk repros outlive the fuzz run that
found them.  ROADMAP item 5 grows from this harness.

A second differential family lives at the bottom of this file: random
*DTT* programs (feeder ``tst`` + support thread + optional ``tcheck``)
are judged twice — statically by ``repro.analysis.checks`` and
dynamically by running the engine under every schedule/poison corner —
and the two verdicts must agree.  See the "analyzer vs engine" section
for the construction that makes the analyzer exact on this family.
"""

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_program
from repro.analysis.findings import Severity
from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.core.trace import EngineTrace
from repro.isa.builder import ProgramBuilder
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion

from tests.conftest import build_dtt_sum

CORPUS_PATH = Path(__file__).with_name("tier_fuzz_corpus.json")
CORPUS = json.loads(CORPUS_PATH.read_text())

#: register window the generated programs use
REGS = [4, 5, 6, 7, 8]
#: loop counters, one per nesting depth (kept clear of REGS)
LOOP_REGS = [9, 10, 11]
ARRAY = 16  # words of in-bounds scratch
BASE_REG = 12  # holds the scratch base address
MAX_INSTRUCTIONS = 50_000

_ALU_OPS = ["add", "sub", "mul", "and_", "or_", "xor", "slt", "seq",
            "idiv", "imod", "shl", "shr"]
_ALUI_OPS = ["addi", "subi", "muli", "andi", "ori", "xori", "slti", "seqi"]
_FALU_OPS = ["fadd", "fsub", "fmul", "fdiv"]
_FUNARY_OPS = ["fsqrt", "fabs", "fneg", "itof", "ftoi"]


# -- plan lowering (shared by fuzz and corpus replay) --------------------------


def lower(plan):
    """Lower a JSON-serializable plan into a finalized program."""
    b = ProgramBuilder()
    b.zeros("scratch", ARRAY)
    with b.function("main"):
        b.program.add_symbol_patch(b.li(BASE_REG, 0), "b", "scratch")
        _lower_body(b, plan, 0)
        b.halt()
    return b.build()


def _lower_body(b, body, depth):
    for item in body:
        kind = item[0]
        if kind == "li":
            b.li(item[1], item[2])
        elif kind == "alu":
            b.emit(item[1], item[2], item[3], item[4])
        elif kind == "alui":
            b.emit(item[1], item[2], item[3], item[4])
        elif kind == "funary":
            b.emit(item[1], item[2], item[3])
        elif kind == "ld":
            b.ld(item[1], BASE_REG, item[2])
        elif kind == "st":
            b.st(item[1], BASE_REG, item[2])
        elif kind == "ldx":
            b.ldx(item[1], BASE_REG, item[2])
        elif kind == "stx":
            b.stx(item[1], BASE_REG, item[2])
        elif kind == "out":
            b.out(item[1])
        elif kind == "loop":
            counter = LOOP_REGS[depth]
            top = b.fresh_label("fuzzloop")
            b.li(counter, item[1])
            b.label(top)
            _lower_body(b, item[2], depth + 1)
            b.subi(counter, counter, 1)
            b.bnez(counter, top)
        elif kind == "if":
            skip = b.fresh_label("fuzzskip")
            b.beqz(item[1], skip)
            _lower_body(b, item[2], depth)
            b.label(skip)
        elif kind == "jmpfwd":
            over = b.fresh_label("fuzzjmp")
            b.jmp(over)
            _lower_body(b, item[1], depth)
            b.label(over)
        else:  # pragma: no cover - malformed corpus entry
            raise AssertionError(f"unknown plan item {item!r}")


# -- three-tier differential check ---------------------------------------------


def _norm(value):
    """NaN-safe comparison key (NaN != NaN would hide agreement)."""
    if isinstance(value, float) and value != value:
        return "NaN"
    return value


def _run_tier(program, tier):
    machine = Machine(program, max_instructions=MAX_INSTRUCTIONS)
    fault = None
    try:
        if tier == "step":
            main = machine.main_context
            while main.state is ContextState.RUNNING:
                machine.step(main)
        else:
            run_to_completion(machine, tier=tier)
    except Exception as exc:  # noqa: BLE001 - fault identity is the point
        fault = (type(exc).__name__, str(exc))
    main = machine.main_context
    return {
        "fault": fault,
        "regs": [_norm(v) for v in main.regs],
        "memory": {k: _norm(v)
                   for k, v in machine.memory.snapshot().items()},
        "output": [_norm(v) for v in machine.output],
        "instructions_executed": machine.instructions_executed,
        "load_count": machine.memory.load_count,
        "store_count": machine.memory.store_count,
        "pc": main.pc,
        "state": main.state.name,
        "instruction_count": main.instruction_count,
    }


def assert_tiers_agree(plan):
    program = lower(plan)
    reference = _run_tier(program, "step")
    for tier in ("closure", "superblock"):
        result = _run_tier(program, tier)
        assert result == reference, f"tier {tier} diverged on {plan!r}"
    return reference


# -- hypothesis generators -----------------------------------------------------


@st.composite
def plan_step(draw):
    rd = draw(st.sampled_from(REGS))
    rs = draw(st.sampled_from(REGS))
    rt = draw(st.sampled_from(REGS))
    kind = draw(st.sampled_from(
        ["li", "alu", "alui", "funary", "ld", "st", "ldx", "stx", "out"]))
    if kind == "li":
        imm = draw(st.one_of(
            st.integers(-100, 100),
            st.integers(-(10 ** 40), 10 ** 40),
            st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e6, max_value=1e6),
        ))
        return ["li", rd, imm]
    if kind == "alu":
        return ["alu", draw(st.sampled_from(_ALU_OPS)), rd, rs, rt]
    if kind == "alui":
        return ["alui", draw(st.sampled_from(_ALUI_OPS)), rd, rs,
                draw(st.integers(-50, 50))]
    if kind == "funary":
        return ["funary", draw(st.sampled_from(_FUNARY_OPS)), rd, rs]
    if kind in ("ld", "st"):
        return [kind, rd, draw(st.integers(0, ARRAY - 1))]
    if kind in ("ldx", "stx"):
        return [kind, rd, rs]
    return ["out", rs]


def plan_body(depth):
    step = plan_step()
    if depth >= 2:
        return st.lists(step, min_size=1, max_size=6)
    nested = st.deferred(lambda: plan_body(depth + 1))
    compound = st.one_of(
        st.tuples(st.integers(1, 6), nested).map(
            lambda t: ["loop", t[0], t[1]]),
        st.tuples(st.sampled_from(REGS), nested).map(
            lambda t: ["if", t[0], t[1]]),
        nested.map(lambda body: ["jmpfwd", body]),
    )
    return st.lists(st.one_of(step, compound), min_size=1, max_size=8)


@given(plan_body(0))
@settings(max_examples=60, deadline=None)
def test_random_programs_agree_across_tiers(plan):
    assert_tiers_agree(plan)


# -- committed counterexample corpus -------------------------------------------


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_case_agrees_across_tiers(name):
    assert_tiers_agree(CORPUS[name])


def test_corpus_exercises_fault_and_loop_paths():
    # the corpus must keep covering the interesting regimes: at least
    # one faulting case and one clean loop-heavy case
    outcomes = {name: assert_tiers_agree(CORPUS[name])
                for name in CORPUS}
    assert any(r["fault"] for r in outcomes.values())
    assert any(r["fault"] is None and r["instructions_executed"] > 50
               for r in outcomes.values())


# -- engine traces under fuzz-shaped DTT programs ------------------------------


@pytest.mark.parametrize("tier", ["closure", "superblock"])
def test_dtt_trace_streams_identical_across_tiers(tier):
    program, spec = build_dtt_sum([3, 1, 4, 1, 5], [0, 2, 4], [9, 8, 7])

    def run(selected_tier):
        from repro.core.engine import DttEngine
        from repro.core.registry import ThreadRegistry

        machine = Machine(program, num_contexts=2)
        engine = DttEngine(ThreadRegistry([spec]))
        machine.attach_engine(engine)
        trace = EngineTrace(engine)
        if selected_tier == "step":
            main = machine.main_context
            while main.state is ContextState.RUNNING:
                machine.step(main)
        else:
            run_to_completion(machine, tier=selected_tier)
        return machine, [repr(e) for e in trace.events]

    legacy_machine, legacy_events = run("step")
    tier_machine, tier_events = run(tier)
    assert tier_events == legacy_events
    assert list(tier_machine.output) == list(legacy_machine.output)
    assert (tier_machine.instructions_executed
            == legacy_machine.instructions_executed)


# -- analyzer vs engine differential fuzz (DTT programs) -----------------------
#
# Random DTT programs from a restricted family on which the static
# analyzer is *exact*, so its error verdict and the engine's dynamic
# verdict must coincide:
#
#   * one feeder ``tst`` into xs[trigger_cell] (constant addressing, a
#     fresh value, so the same-value filter never suppresses it);
#   * a straight-line support thread that derives one value (from the
#     trigger cell, the trigger value, constants, fixed xs/ys cells, or
#     a deliberately-uninitialized register) and stores it to ys;
#   * main-context loads/stores between the ``tst`` and an optional
#     ``tcheck``, then a final print of every ys cell.
#
# Dynamic verdict = four runs pooled: {late, early} schedule x {zero,
# poison} support-context registers.  "Late" is the synchronous engine
# (activations run at the tcheck; never, absent one).  "Early" is a
# deferred engine driven eagerly (activations dispatched and run to
# completion the moment they fire).  Any paper-contract violation the
# analyzer can flag on this family is observable as a difference
# between those runs because the construction guarantees:
#
#   * every fresh value is a distinct power of eight, and a thread
#     sums at most four reads, so sums can never carry one value into
#     another and two different read-sets never collide to the same
#     output word (a raced read's late value is always a fresh window
#     store, strictly larger than anything the early read can see);
#   * the thread always stores to ys[3] and main never stores to
#     ys[3], so whether/when/with-what the thread ran is always
#     witnessed by the final print;
#   * a thread register read either is seeded (r1/r2), is written
#     first (the scratch regs), or is the deliberate uninitialized
#     register — whose stale content differs across the poison pair.
#
# Single-trigger programs only: dedupe/cancel/overflow paths have their
# own unit tests; this harness targets the *race* checks.  Note the
# feeder address is a compile-time constant, so the feasible trigger
# set is a single address and every race is all-or-nothing — the
# ``parameterized-race`` SOME-instantiation verdict needs symbolic
# feeders and is exercised by tests/analysis/test_checks.py instead.
#
# Disagreements shrunk by hypothesis get committed to
# ``dtt_fuzz_corpus.json`` with a note (status: fixed or explained)
# and replayed as regression cases, mirroring the tier corpus above.

DTT_CORPUS_PATH = Path(__file__).with_name("dtt_fuzz_corpus.json")
DTT_CORPUS = json.loads(DTT_CORPUS_PATH.read_text())

_TV, _TT = 4, 5  # thread value / scratch registers (always written first)
_UNINIT_REG = 8  # never written anywhere; read only by "add_uninit"
_V, _T, _XB, _YB = 4, 5, 6, 7  # main-context registers
_POISON = 1 << 60  # stale-register sentinel, beyond any program value
YS_CELLS = 4


def lower_dtt(plan):
    """Lower a DTT plan into ``(program, trigger_spec)``.

    Every ``li`` immediate is a fresh power of eight (64, 512, ...):
    a thread sums at most four reads, so repeated reads of one value
    can never carry into a different value's digit, and distinct
    read-sets always sum to distinct outputs — no dynamic race can
    hide behind a value collision.
    """
    fresh = [64]

    def value():
        v = fresh[0]
        fresh[0] <<= 3
        return v

    b = ProgramBuilder()
    b.data("xs", [1, 2, 3, 4])
    b.zeros("ys", YS_CELLS)
    thread = plan["thread"]
    with b.thread("worker"):
        init = thread["init"]
        if init == "ld_trig":
            b.ld(_TV, 1, 0)  # the triggered cell, via r1
        elif init == "use_r2":
            b.mov(_TV, 2)  # the stored value, via r2
        else:  # "li"
            b.li(_TV, value())
        for op in thread["ops"]:
            kind = op[0]
            if kind == "add_const":
                b.addi(_TV, _TV, value())
            elif kind == "add_uninit":
                b.add(_TV, _TV, _UNINIT_REG)
            elif kind == "add_trig":
                b.ld(_TT, 1, 0)
                b.add(_TV, _TV, _TT)
            else:  # add_xs / add_ys: a fixed cell
                b.la(_TT, "xs" if kind == "add_xs" else "ys")
                b.ld(_TT, _TT, op[1])
                b.add(_TV, _TV, _TT)
        b.la(_TT, "ys")
        for cell in thread["stores"]:
            b.st(_TV, _TT, cell)
        b.treturn()

    def main_ops(ops):
        for kind, cell in ops:
            if kind == "st_xs":
                b.li(_T, value())
                b.st(_T, _XB, cell)
            elif kind == "st_ys":
                b.li(_T, value())
                b.st(_T, _YB, cell)
            elif kind == "ld_xs":
                b.ld(_T, _XB, cell)
                b.out(_T)
            else:  # ld_ys
                b.ld(_T, _YB, cell)
                b.out(_T)

    with b.function("main"):
        b.la(_XB, "xs")
        b.la(_YB, "ys")
        b.li(_V, value())
        tst_pc = b.tst(_V, _XB, plan["trigger_cell"])
        main_ops(plan["window"])
        if plan["tcheck"]:
            b.tcheck_thread("worker")
        main_ops(plan["after"])
        for cell in range(YS_CELLS):
            b.ld(_V, _YB, cell)
            b.out(_V)
        b.halt()
    return b.build(), TriggerSpec("worker", store_pcs=[tst_pc])


def _run_dtt(program, spec, schedule, poison):
    machine = Machine(program, num_contexts=2,
                      max_instructions=MAX_INSTRUCTIONS)
    engine = DttEngine(ThreadRegistry([spec]),
                       deferred=(schedule == "early"))
    machine.attach_engine(engine)
    main = machine.main_context
    supports = [ctx for ctx in machine.contexts if ctx is not main]
    for ctx in supports:  # r0 stays 0; everything else goes stale
        ctx.regs[1:] = [poison] * (len(ctx.regs) - 1)
    fault = None
    try:
        if schedule == "late":
            # synchronous engine: activations run inside the tcheck hook
            while main.state is ContextState.RUNNING:
                machine.step(main)
        else:
            # eager deferred driver: drain the queue and run support
            # contexts to completion before main takes another step
            while True:
                engine.dispatch_pending()
                support = next(
                    (ctx for ctx in supports if ctx.runnable), None)
                if support is not None:
                    machine.step(support)
                    continue
                if main.state is ContextState.RUNNING:
                    machine.step(main)
                    continue
                assert main.state is not ContextState.BLOCKED, (
                    "main deadlocked at tcheck with a drained queue")
                break
    except Exception as exc:  # noqa: BLE001 - fault identity is the point
        fault = (type(exc).__name__, str(exc))
    return {"fault": fault, "output": [_norm(v) for v in machine.output]}


def dtt_verdicts(plan):
    """(analyzer error codes, dynamic-clean flag, the four run outcomes).

    The dynamic oracle compares *output and fault only* — not raw
    memory: DTT's contract governs what main observes, and lazily vs
    eagerly evaluated derived data may legitimately sit in memory at
    different times.  The unconditional final ys print makes every
    contract-relevant difference reach the output.
    """
    program, spec = lower_dtt(plan)
    errors = sorted({f.code for f in analyze_program(program, [spec])
                     if f.severity is Severity.ERROR})
    outcomes = [_run_dtt(program, spec, schedule, poison)
                for schedule in ("late", "early")
                for poison in (0, _POISON)]
    dynamic_clean = all(run == outcomes[0] for run in outcomes[1:])
    return errors, dynamic_clean, outcomes


def assert_analyzer_and_engine_agree(plan):
    errors, dynamic_clean, outcomes = dtt_verdicts(plan)
    if errors:
        assert not dynamic_clean, (
            f"analyzer flagged {errors} but every schedule/poison run "
            f"agreed on {plan!r} — spurious error or unobservable race")
    else:
        assert dynamic_clean, (
            f"analyzer saw no errors but runs diverged on {plan!r}: "
            f"{outcomes!r} — analyzer soundness gap")
    return errors, dynamic_clean


def _compose_dtt_plan(pick, coin):
    """One plan from two primitives, shared by hypothesis and the
    seeded sweep so both explore the identical family."""
    thread_ops = []
    for _ in range(pick([0, 1, 2, 3])):
        kind = pick(["add_const", "add_uninit", "add_trig",
                     "add_xs", "add_ys"])
        if kind in ("add_xs", "add_ys"):
            thread_ops.append([kind, pick([0, 1, 2, 3])])
        else:
            thread_ops.append([kind])
    # ys[3] is the thread's reserved witness cell: main never stores it
    stores = [3] + ([pick([0, 1, 2])] if coin() else [])

    def main_op(avoid_ys=()):
        # post-tcheck stores avoid the thread's cells: a post-barrier
        # overwrite would mask a real in-window ordering race from the
        # dynamic oracle while the analyzer (rightly) still flags it
        kind = pick(["st_xs", "st_ys", "ld_xs", "ld_ys"])
        if kind == "st_ys":
            return [kind, pick([c for c in (0, 1, 2) if c not in avoid_ys])]
        return [kind, pick([0, 1, 2, 3])]

    return {
        "trigger_cell": pick([0, 1, 2, 3]),
        "tcheck": coin() or coin(),  # ~75% consume via tcheck
        "thread": {"init": pick(["ld_trig", "use_r2", "li"]),
                   "ops": thread_ops,
                   "stores": stores},
        "window": [main_op() for _ in range(pick([0, 1, 2, 3]))],
        "after": [main_op(avoid_ys=stores)
                  for _ in range(pick([0, 1, 2]))],
    }


@st.composite
def dtt_plan(draw):
    return _compose_dtt_plan(
        lambda options: draw(st.sampled_from(options)),
        lambda: draw(st.booleans()),
    )


@given(dtt_plan())
@settings(max_examples=60, deadline=None)
def test_random_dtt_programs_agree_with_the_analyzer(plan):
    assert_analyzer_and_engine_agree(plan)


def test_dtt_differential_sweep_is_disagreement_free():
    """Bounded CI sweep: 500 seeded programs, zero unexplained
    analyzer/engine disagreements, both verdicts well represented."""
    rng = random.Random(0xD77)
    disagreements = []
    clean = dirty = 0
    for index in range(500):
        plan = _compose_dtt_plan(rng.choice, lambda: rng.random() < 0.5)
        try:
            errors, _ = assert_analyzer_and_engine_agree(plan)
        except AssertionError as exc:
            disagreements.append((index, plan, str(exc)))
            continue
        if errors:
            dirty += 1
        else:
            clean += 1
    assert not disagreements, disagreements[:3]
    # a sweep that lands on one verdict only proves nothing
    assert clean >= 50 and dirty >= 50, (clean, dirty)


@pytest.mark.parametrize("name", sorted(DTT_CORPUS))
def test_dtt_corpus_case_agrees(name):
    case = DTT_CORPUS[name]
    errors, dynamic_clean = assert_analyzer_and_engine_agree(case["plan"])
    if case["expect"] == "clean":
        assert not errors and dynamic_clean, (errors, dynamic_clean)
    else:
        assert errors and not dynamic_clean, (errors, dynamic_clean)
    assert set(case["codes"]) <= set(errors), (case["codes"], errors)


def test_dtt_corpus_covers_both_verdicts_and_every_race_code():
    expects = {case["expect"] for case in DTT_CORPUS.values()}
    assert expects == {"clean", "dirty"}
    codes = set()
    for case in DTT_CORPUS.values():
        codes.update(case["codes"])
    assert {"read-race", "write-race", "consume-before-complete",
            "uninitialized-register"} <= codes, sorted(codes)
