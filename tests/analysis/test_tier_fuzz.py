"""Property-based tier equivalence: legacy / closure / superblock.

Random well-formed DTIR programs — nested bounded loops, if-diamonds,
forward jumps, integer/float ALU traffic, and wild computed addresses —
are executed under all three ``Machine.run`` tiers.  Registers, memory,
output, counters, final pc/state, and any fault (type and message) must
be identical; the superblock tier's if-conversion, tail duplication,
side exits, and mid-block fault reconciliation may not be observable.

Counterexamples found by hypothesis are committed to
``tier_fuzz_corpus.json`` (one named plan per historical divergence,
plus hand-picked seeds for known-tricky shapes) and replayed here as
plain regression cases, so shrunk repros outlive the fuzz run that
found them.  ROADMAP item 5 grows from this harness.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.trace import EngineTrace
from repro.isa.builder import ProgramBuilder
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion

from tests.conftest import build_dtt_sum

CORPUS_PATH = Path(__file__).with_name("tier_fuzz_corpus.json")
CORPUS = json.loads(CORPUS_PATH.read_text())

#: register window the generated programs use
REGS = [4, 5, 6, 7, 8]
#: loop counters, one per nesting depth (kept clear of REGS)
LOOP_REGS = [9, 10, 11]
ARRAY = 16  # words of in-bounds scratch
BASE_REG = 12  # holds the scratch base address
MAX_INSTRUCTIONS = 50_000

_ALU_OPS = ["add", "sub", "mul", "and_", "or_", "xor", "slt", "seq",
            "idiv", "imod", "shl", "shr"]
_ALUI_OPS = ["addi", "subi", "muli", "andi", "ori", "xori", "slti", "seqi"]
_FALU_OPS = ["fadd", "fsub", "fmul", "fdiv"]
_FUNARY_OPS = ["fsqrt", "fabs", "fneg", "itof", "ftoi"]


# -- plan lowering (shared by fuzz and corpus replay) --------------------------


def lower(plan):
    """Lower a JSON-serializable plan into a finalized program."""
    b = ProgramBuilder()
    b.zeros("scratch", ARRAY)
    with b.function("main"):
        b.program.add_symbol_patch(b.li(BASE_REG, 0), "b", "scratch")
        _lower_body(b, plan, 0)
        b.halt()
    return b.build()


def _lower_body(b, body, depth):
    for item in body:
        kind = item[0]
        if kind == "li":
            b.li(item[1], item[2])
        elif kind == "alu":
            b.emit(item[1], item[2], item[3], item[4])
        elif kind == "alui":
            b.emit(item[1], item[2], item[3], item[4])
        elif kind == "funary":
            b.emit(item[1], item[2], item[3])
        elif kind == "ld":
            b.ld(item[1], BASE_REG, item[2])
        elif kind == "st":
            b.st(item[1], BASE_REG, item[2])
        elif kind == "ldx":
            b.ldx(item[1], BASE_REG, item[2])
        elif kind == "stx":
            b.stx(item[1], BASE_REG, item[2])
        elif kind == "out":
            b.out(item[1])
        elif kind == "loop":
            counter = LOOP_REGS[depth]
            top = b.fresh_label("fuzzloop")
            b.li(counter, item[1])
            b.label(top)
            _lower_body(b, item[2], depth + 1)
            b.subi(counter, counter, 1)
            b.bnez(counter, top)
        elif kind == "if":
            skip = b.fresh_label("fuzzskip")
            b.beqz(item[1], skip)
            _lower_body(b, item[2], depth)
            b.label(skip)
        elif kind == "jmpfwd":
            over = b.fresh_label("fuzzjmp")
            b.jmp(over)
            _lower_body(b, item[1], depth)
            b.label(over)
        else:  # pragma: no cover - malformed corpus entry
            raise AssertionError(f"unknown plan item {item!r}")


# -- three-tier differential check ---------------------------------------------


def _norm(value):
    """NaN-safe comparison key (NaN != NaN would hide agreement)."""
    if isinstance(value, float) and value != value:
        return "NaN"
    return value


def _run_tier(program, tier):
    machine = Machine(program, max_instructions=MAX_INSTRUCTIONS)
    fault = None
    try:
        if tier == "step":
            main = machine.main_context
            while main.state is ContextState.RUNNING:
                machine.step(main)
        else:
            run_to_completion(machine, tier=tier)
    except Exception as exc:  # noqa: BLE001 - fault identity is the point
        fault = (type(exc).__name__, str(exc))
    main = machine.main_context
    return {
        "fault": fault,
        "regs": [_norm(v) for v in main.regs],
        "memory": {k: _norm(v)
                   for k, v in machine.memory.snapshot().items()},
        "output": [_norm(v) for v in machine.output],
        "instructions_executed": machine.instructions_executed,
        "load_count": machine.memory.load_count,
        "store_count": machine.memory.store_count,
        "pc": main.pc,
        "state": main.state.name,
        "instruction_count": main.instruction_count,
    }


def assert_tiers_agree(plan):
    program = lower(plan)
    reference = _run_tier(program, "step")
    for tier in ("closure", "superblock"):
        result = _run_tier(program, tier)
        assert result == reference, f"tier {tier} diverged on {plan!r}"
    return reference


# -- hypothesis generators -----------------------------------------------------


@st.composite
def plan_step(draw):
    rd = draw(st.sampled_from(REGS))
    rs = draw(st.sampled_from(REGS))
    rt = draw(st.sampled_from(REGS))
    kind = draw(st.sampled_from(
        ["li", "alu", "alui", "funary", "ld", "st", "ldx", "stx", "out"]))
    if kind == "li":
        imm = draw(st.one_of(
            st.integers(-100, 100),
            st.integers(-(10 ** 40), 10 ** 40),
            st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e6, max_value=1e6),
        ))
        return ["li", rd, imm]
    if kind == "alu":
        return ["alu", draw(st.sampled_from(_ALU_OPS)), rd, rs, rt]
    if kind == "alui":
        return ["alui", draw(st.sampled_from(_ALUI_OPS)), rd, rs,
                draw(st.integers(-50, 50))]
    if kind == "funary":
        return ["funary", draw(st.sampled_from(_FUNARY_OPS)), rd, rs]
    if kind in ("ld", "st"):
        return [kind, rd, draw(st.integers(0, ARRAY - 1))]
    if kind in ("ldx", "stx"):
        return [kind, rd, rs]
    return ["out", rs]


def plan_body(depth):
    step = plan_step()
    if depth >= 2:
        return st.lists(step, min_size=1, max_size=6)
    nested = st.deferred(lambda: plan_body(depth + 1))
    compound = st.one_of(
        st.tuples(st.integers(1, 6), nested).map(
            lambda t: ["loop", t[0], t[1]]),
        st.tuples(st.sampled_from(REGS), nested).map(
            lambda t: ["if", t[0], t[1]]),
        nested.map(lambda body: ["jmpfwd", body]),
    )
    return st.lists(st.one_of(step, compound), min_size=1, max_size=8)


@given(plan_body(0))
@settings(max_examples=60, deadline=None)
def test_random_programs_agree_across_tiers(plan):
    assert_tiers_agree(plan)


# -- committed counterexample corpus -------------------------------------------


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_case_agrees_across_tiers(name):
    assert_tiers_agree(CORPUS[name])


def test_corpus_exercises_fault_and_loop_paths():
    # the corpus must keep covering the interesting regimes: at least
    # one faulting case and one clean loop-heavy case
    outcomes = {name: assert_tiers_agree(CORPUS[name])
                for name in CORPUS}
    assert any(r["fault"] for r in outcomes.values())
    assert any(r["fault"] is None and r["instructions_executed"] > 50
               for r in outcomes.values())


# -- engine traces under fuzz-shaped DTT programs ------------------------------


@pytest.mark.parametrize("tier", ["closure", "superblock"])
def test_dtt_trace_streams_identical_across_tiers(tier):
    program, spec = build_dtt_sum([3, 1, 4, 1, 5], [0, 2, 4], [9, 8, 7])

    def run(selected_tier):
        from repro.core.engine import DttEngine
        from repro.core.registry import ThreadRegistry

        machine = Machine(program, num_contexts=2)
        engine = DttEngine(ThreadRegistry([spec]))
        machine.attach_engine(engine)
        trace = EngineTrace(engine)
        if selected_tier == "step":
            main = machine.main_context
            while main.state is ContextState.RUNNING:
                machine.step(main)
        else:
            run_to_completion(machine, tier=selected_tier)
        return machine, [repr(e) for e in trace.events]

    legacy_machine, legacy_events = run("step")
    tier_machine, tier_events = run(tier)
    assert tier_events == legacy_events
    assert list(tier_machine.output) == list(legacy_machine.output)
    assert (tier_machine.instructions_executed
            == legacy_machine.instructions_executed)
