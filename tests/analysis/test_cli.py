"""CLI surface: dtt-harness lint / analyze exit codes, JSON, baselines."""

import json

from repro.harness.cli import main
from repro.isa.assembler import format_program
from repro.isa.builder import ProgramBuilder


def racy_program_text():
    """An assembly file with one lint error and one uninit-register error."""
    b = ProgramBuilder()
    b.data("ys", [0])
    with b.thread("worker"):
        with b.scratch(2) as (v, out):
            b.la(out, "ys")
            b.st(v, out, 0)      # v never defined
        b.treturn()
    with b.function("main"):
        b.tcheck_thread("worker")
        b.nop()                  # no halt: lint error
    return format_program(b.build())


def clean_program_text():
    b = ProgramBuilder()
    with b.function("main"):
        b.halt()
    return format_program(b.build())


# -- lint ---------------------------------------------------------------------


def test_lint_clean_workload(capsys):
    assert main(["lint", "--workload", "mcf"]) == 0
    out = capsys.readouterr().out
    assert "mcf:dtt: 0 error(s), 0 warning(s)" in out


def test_lint_all_workloads(capsys):
    assert main(["lint", "--workload", "all"]) == 0
    out = capsys.readouterr().out
    assert "mcf:dtt" in out and "equake:dtt" in out


def test_lint_program_file_with_errors(tmp_path, capsys):
    path = tmp_path / "bad.dtt"
    path.write_text(racy_program_text())
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert "no-halt" in out


def test_lint_json_shape(tmp_path, capsys):
    path = tmp_path / "bad.dtt"
    path.write_text(racy_program_text())
    assert main(["lint", str(path), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["target"] == "bad.dtt"
    assert "no-halt" in [f["code"] for f in payload[0]["findings"]]


def test_lint_rejects_unknown_workload(capsys):
    assert main(["lint", "--workload", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().out


def test_lint_requires_a_target(capsys):
    assert main(["lint"]) == 2
    assert "nothing to check" in capsys.readouterr().out


# -- analyze ------------------------------------------------------------------


def test_analyze_clean_workload(capsys):
    assert main(["analyze", "--workload", "mcf"]) == 0
    out = capsys.readouterr().out
    assert "mcf:dtt: 0 error(s), 0 warning(s)" in out
    assert "total: 0 error(s), 0 warning(s) across 1 target(s)" in out


def test_analyze_whole_suite_even_at_fail_on_warning(capsys):
    assert main(["analyze", "--workload", "all",
                 "--fail-on", "warning"]) == 0


def test_analyze_runs_lint_first(tmp_path, capsys):
    path = tmp_path / "bad.dtt"
    path.write_text(racy_program_text())
    assert main(["analyze", str(path)]) == 1
    out = capsys.readouterr().out
    assert "no-halt" in out                   # lint finding
    assert "uninitialized-register" in out    # semantic finding


def test_analyze_json_shape(tmp_path, capsys):
    path = tmp_path / "bad.dtt"
    path.write_text(racy_program_text())
    assert main(["analyze", str(path), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    target = payload["targets"][0]
    assert target["target"] == "bad.dtt"
    assert target["summary"]["errors"] >= 2
    assert payload["summary"]["errors"] == target["summary"]["errors"]


def test_analyze_clean_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "ok.dtt"
    path.write_text(clean_program_text())
    assert main(["analyze", str(path)]) == 0


def test_write_baseline_then_suppress(tmp_path, capsys):
    path = tmp_path / "bad.dtt"
    path.write_text(racy_program_text())
    baseline = tmp_path / "baseline.json"
    # record the current findings...
    assert main(["analyze", str(path),
                 "--write-baseline", str(baseline)]) == 0
    assert "wrote" in capsys.readouterr().out
    # ...then the same invocation passes against them
    assert main(["analyze", str(path), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # a different target label is NOT covered by those fingerprints
    other = tmp_path / "other.dtt"
    other.write_text(racy_program_text())
    assert main(["analyze", str(other), "--baseline", str(baseline)]) == 1


def test_analyze_rejects_malformed_baseline(tmp_path, capsys):
    bad = tmp_path / "broken.json"
    bad.write_text("not json")
    assert main(["analyze", "--workload", "mcf",
                 "--baseline", str(bad)]) == 2


def test_analyze_rejects_unreadable_program(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "missing.dtt")]) == 2
    assert "cannot load" in capsys.readouterr().out


def test_analyze_against_committed_baseline(capsys):
    # the repo-level gate: the bundled suite is clean under the committed
    # (empty) baseline even with warnings promoted to failures
    assert main(["analyze", "--workload", "all", "--fail-on", "warning",
                 "--baseline", "benchmarks/analysis_baseline.json"]) == 0
