"""Property: the analyzer never crashes and subsumes the linter.

Mirrors tests/isa/test_lint_property.py: random finalized programs
(straight-line bodies with random forward jumps/branches) are analyzed;
the analyzer must complete, report only registered codes, and include
every lint finding.  Registering a spec for an undeclared thread must
always surface spec-unknown-thread, never an exception.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import CHECKS, analyze_program
from repro.core.registry import TriggerSpec
from repro.isa.instructions import Instruction
from repro.isa.lint import CODES, lint_program
from repro.isa.program import Program


@st.composite
def random_program(draw):
    """A finalized program of nops and forward jumps/branches + halt."""
    length = draw(st.integers(1, 20))
    program = Program()
    program.add_label("main")
    plan = []
    for pc in range(length):
        kind = draw(st.sampled_from(["nop", "jmp", "beqz"]))
        plan.append((pc, kind, draw(st.integers(pc + 1, length))))
    for pc, kind, target in plan:
        label = f"L{target}"
        if label not in program.labels:
            program.add_label(label, target)
        if kind == "nop":
            program.append(Instruction("nop"))
        elif kind == "jmp":
            program.append(Instruction("jmp", label=label))
        else:
            program.append(Instruction("beqz", 4, label=label))
    program.add_label(f"L{length}_halt")
    program.append(Instruction("halt"))
    return program.finalize()


@given(random_program())
@settings(max_examples=60, deadline=None)
def test_analyzer_completes_and_subsumes_lint(program):
    findings = analyze_program(program)
    known = set(CHECKS) | set(CODES)
    assert all(f.code in known for f in findings)
    assert set(lint_program(program)) <= set(findings)
    # output is deterministically ordered
    assert findings == sorted(findings, key=type(findings[0]).sort_key) \
        if findings else findings == []


@given(random_program())
@settings(max_examples=30, deadline=None)
def test_ghost_spec_reports_instead_of_raising(program):
    spec = TriggerSpec("ghost", store_pcs=[0])
    findings = analyze_program(program, [spec], include_lint=False)
    assert "spec-unknown-thread" in [f.code for f in findings]
