"""Shared finding model: repr compatibility, ordering, JSON, baselines."""

import json

import pytest

from repro.analysis.findings import (ERROR, WARNING, Baseline, Finding,
                                     Severity, errors_only, findings_to_json)
from repro.errors import DttError


def test_repr_is_byte_compatible_with_historical_linter():
    finding = Finding(ERROR, "no-halt", None, "no halt instruction")
    assert repr(finding) == "[error] no-halt: no halt instruction"
    located = Finding(WARNING, "unreachable", 7, "dead code")
    assert repr(located) == "[warning] unreachable at pc 7: dead code"


def test_severity_compares_to_plain_strings():
    finding = Finding("error", "x", None, "m")
    assert finding.severity == "error"
    assert finding.severity is Severity.ERROR
    assert Finding("warning", "x", None, "m").severity == "warning"


def test_unknown_severity_rejected():
    with pytest.raises(ValueError):
        Finding("fatal", "x", None, "m")


def test_sort_key_orders_errors_first_then_pc():
    findings = [
        Finding(WARNING, "b", 1, "w1"),
        Finding(ERROR, "a", 9, "e9"),
        Finding(ERROR, "a", None, "global"),
        Finding(WARNING, "b", 0, "w0"),
    ]
    findings.sort(key=Finding.sort_key)
    assert [f.message for f in findings] == ["global", "e9", "w0", "w1"]


def test_to_dict_round_trip():
    finding = Finding(ERROR, "read-race", 12, "race", detail="xs[*]")
    payload = finding.to_dict()
    assert payload == {"severity": "error", "code": "read-race", "pc": 12,
                       "message": "race", "detail": "xs[*]"}
    assert Finding.from_dict(payload) == finding
    # detail omitted when empty
    assert "detail" not in Finding(ERROR, "x", None, "m").to_dict()


def test_findings_to_json_is_a_json_array():
    findings = [Finding(ERROR, "a", 1, "m")]
    assert json.loads(findings_to_json(findings)) == [findings[0].to_dict()]


def test_errors_only():
    findings = [Finding(ERROR, "a", 1, "m"), Finding(WARNING, "b", 2, "m")]
    assert [f.code for f in errors_only(findings)] == ["a"]


def test_fingerprint_excludes_message_includes_target_and_pc():
    one = Finding(ERROR, "read-race", 12, "worded one way", version=2)
    two = Finding(ERROR, "read-race", 12, "worded another way", version=2)
    assert one.fingerprint() == two.fingerprint() == "read-race.v2@12"
    assert one.fingerprint("mcf:dtt") == "mcf:dtt:read-race.v2@12"
    assert (Finding(ERROR, "no-halt", None, "m").fingerprint()
            == "no-halt.v1@-")


def test_fingerprint_version_bump_invalidates_baseline():
    # a suppression written against v1 semantics must NOT silently
    # swallow the same code/pc once the check's version is bumped
    v1 = Finding(ERROR, "read-race", 12, "old semantics", version=1)
    baseline = Baseline()
    baseline.add([v1], target="t")
    v2 = Finding(ERROR, "read-race", 12, "new semantics", version=2)
    kept, suppressed = baseline.filter([v2], target="t")
    assert suppressed == 0
    assert kept == [v2]


def test_to_dict_carries_version_only_when_not_default():
    assert "version" not in Finding(ERROR, "x", None, "m").to_dict()
    payload = Finding(ERROR, "x", None, "m", version=3).to_dict()
    assert payload["version"] == 3
    assert Finding.from_dict(payload).version == 3
    assert Finding.from_dict({"severity": "error", "code": "x",
                              "message": "m"}).version == 1


def test_baseline_filter_and_add():
    findings = [Finding(ERROR, "a", 1, "m"), Finding(ERROR, "b", 2, "m")]
    baseline = Baseline()
    baseline.add(findings[:1], target="t")
    kept, suppressed = baseline.filter(findings, target="t")
    assert suppressed == 1
    assert [f.code for f in kept] == ["b"]
    # a different target does not match the fingerprint
    kept, suppressed = baseline.filter(findings, target="other")
    assert suppressed == 0 and len(kept) == 2


def test_baseline_save_load_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    baseline = Baseline(["t:a@1", "t:b@2"])
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.suppress == baseline.suppress
    data = json.loads(open(path).read())
    assert data["version"] == Baseline.VERSION
    assert data["suppress"] == sorted(baseline.suppress)


def test_baseline_load_rejects_malformed(tmp_path):
    path = tmp_path / "bad.json"
    for content in ("not json", "[1, 2]", '{"suppress": "nope"}',
                    '{"suppress": [1]}'):
        path.write_text(content)
        with pytest.raises(DttError):
            Baseline.load(str(path))
    with pytest.raises(DttError):
        Baseline.load(str(tmp_path / "missing.json"))
