"""Optional I-cache model: fetch latency, sensitivity, and neutrality."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyParams
from repro.isa.builder import ProgramBuilder
from repro.timing.params import named_config
from repro.timing.system import TimingSimulator
from repro.workloads.suite import SUITE


def test_fetch_requires_enable():
    hierarchy = CacheHierarchy(1)
    with pytest.raises(IndexError):
        hierarchy.fetch(0, 0)


def test_fetch_latencies_compose():
    params = HierarchyParams(line_words=4, l1_latency=2, l2_latency=10,
                             memory_latency=100)
    hierarchy = CacheHierarchy(1, params)
    hierarchy.enable_icache(lines=4, associativity=1)
    assert hierarchy.fetch(0, 0) == 112  # cold
    assert hierarchy.fetch(0, 1) == 2    # same code line
    assert hierarchy.fetch(0, 64) == 112  # far-away code


def test_code_and_data_do_not_alias():
    hierarchy = CacheHierarchy(1)
    hierarchy.enable_icache()
    hierarchy.fetch(0, 0)
    # a data access to address 0 is a separate line in a separate cache
    first = hierarchy.access(0, 0, False)
    assert first > hierarchy.params.l1_latency  # still cold


def test_icache_stats_reported():
    result = TimingSimulator(
        _loop_program(64), named_config("smt2", model_icache=True)
    ).run()
    assert "L1I.core0" in result.cache_stats
    assert result.cache_stats["L1I.core0"]["hits"] > 0


def _loop_program(iterations):
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (i, acc):
            b.li(acc, 0)
            with b.for_range(i, 0, iterations):
                b.addi(acc, acc, 1)
            b.out(acc)
        b.halt()
    return b.build()


def _straightline_program(n):
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 0)
            for _ in range(n):
                b.addi(r, r, 1)
            b.out(r)
        b.halt()
    return b.build()


def test_tight_loop_barely_notices_the_icache():
    # long enough that the single cold fetch miss (one code line)
    # amortizes away; steady-state fetches are all hits
    off = TimingSimulator(_loop_program(4000), named_config("smt2")).run()
    on = TimingSimulator(_loop_program(4000),
                         named_config("smt2", model_icache=True)).run()
    assert on.output == off.output
    assert on.cycles <= off.cycles * 1.10
    assert on.cache_stats["L1I.core0"]["misses"] <= 2


def test_huge_straightline_code_pays_fetch_misses():
    # 4000 instructions = 250 code lines >> 64-line I-cache
    off = TimingSimulator(_straightline_program(4000),
                          named_config("smt2")).run()
    on = TimingSimulator(_straightline_program(4000),
                         named_config("smt2", model_icache=True)).run()
    assert on.output == off.output
    assert on.cycles > 1.5 * off.cycles


def test_speedup_shape_survives_icache_modeling():
    """The paper-shape claim must not depend on ideal fetch."""
    workload = SUITE["mcf"]
    inp = workload.make_input()
    speedups = {}
    for model_icache in (False, True):
        config = named_config("smt2", model_icache=model_icache)
        baseline = TimingSimulator(workload.build_baseline(inp), config).run()
        build = workload.build_dtt(inp)
        dtt = TimingSimulator(
            build.program, named_config("smt2", model_icache=model_icache),
            engine=build.engine(deferred=True),
        ).run()
        assert dtt.output == baseline.output
        speedups[model_icache] = baseline.cycles / dtt.cycles
    assert speedups[True] > 4.0
    assert abs(speedups[True] - speedups[False]) / speedups[False] < 0.25
