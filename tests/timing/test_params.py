"""Machine configurations: named configs and the parameter table."""

import pytest

from repro.isa.instructions import OpClass
from repro.timing.params import CoreParams, SystemConfig, named_config


def test_core_params_defaults_cover_all_classes():
    params = CoreParams()
    for op_class in OpClass:
        assert op_class in params.latency


def test_core_params_latency_override():
    params = CoreParams(latency={OpClass.IMUL: 5})
    assert params.latency[OpClass.IMUL] == 5
    assert params.latency[OpClass.IALU] == 1  # untouched


def test_system_config_total_contexts():
    config = SystemConfig(num_cores=2, contexts_per_core=3)
    assert config.total_contexts == 6


def test_system_config_rejects_zero():
    with pytest.raises(ValueError):
        SystemConfig(num_cores=0)
    with pytest.raises(ValueError):
        SystemConfig(contexts_per_core=0)


@pytest.mark.parametrize("name,cores,contexts", [
    ("smt2", 1, 2),
    ("smt4", 1, 4),
    ("cmp2", 2, 1),
    ("serial", 1, 1),
])
def test_named_configs(name, cores, contexts):
    config = named_config(name)
    assert config.name == name
    assert config.num_cores == cores
    assert config.contexts_per_core == contexts


def test_named_config_with_overrides():
    config = named_config("smt2", max_cycles=123)
    assert config.max_cycles == 123


def test_named_config_unknown():
    with pytest.raises(ValueError, match="unknown configuration"):
        named_config("smt16")


def test_parameter_table_mentions_key_parameters():
    table = named_config("smt2").parameter_table()
    joined = " ".join(f"{k}={v}" for k, v in table.items())
    assert "gshare" in joined
    assert "issue width" in joined
    assert "L1D" in joined
    assert "memory latency" in joined
