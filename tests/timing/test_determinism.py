"""Determinism: identical configurations give identical results, always.

Every number the harness reports must be exactly reproducible — that is
the contract EXPERIMENTS.md relies on.
"""

import pytest

from repro.timing.params import named_config
from repro.timing.system import TimingSimulator
from repro.workloads.suite import SUITE


def _run_pair(workload_name, kind, config_name):
    workload = SUITE[workload_name]
    inp = workload.make_input()
    results = []
    for _ in range(2):
        if kind == "baseline":
            sim = TimingSimulator(workload.build_baseline(inp),
                                  named_config(config_name))
        else:
            build = workload.build_dtt(inp)
            sim = TimingSimulator(build.program, named_config(config_name),
                                  engine=build.engine(deferred=True))
        results.append(sim.run())
    return results


@pytest.mark.parametrize("kind", ["baseline", "dtt"])
def test_repeated_runs_cycle_exact(kind):
    a, b = _run_pair("perlbmk", kind, "smt2")
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.output == b.output
    assert a.energy == b.energy
    assert a.branch_mispredicts == b.branch_mispredicts


def test_repeated_runs_cache_exact():
    a, b = _run_pair("vpr", "dtt", "cmp2")
    assert a.cache_stats == b.cache_stats
    assert a.coherence_invalidations == b.coherence_invalidations


def test_engine_stats_deterministic():
    workload = SUITE["gap"]
    inp = workload.make_input()
    summaries = []
    for _ in range(2):
        build = workload.build_dtt(inp)
        engine = build.engine(deferred=True)
        TimingSimulator(build.program, named_config("smt2"),
                        engine=engine).run()
        summaries.append(engine.summary())
    assert summaries[0] == summaries[1]


def test_program_builds_are_structurally_identical():
    workload = SUITE["gcc"]
    inp = workload.make_input()
    a = workload.build_dtt(inp)
    b = workload.build_dtt(inp)
    assert a.program.instructions == b.program.instructions
    assert a.program.labels == b.program.labels
    assert [s.store_pcs for s in a.specs] == [s.store_pcs for s in b.specs]
