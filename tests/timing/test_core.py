"""SmtCore issue logic in isolation: width sharing, rotation, stalls."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyParams
from repro.isa.builder import ProgramBuilder
from repro.machine.context import ContextState
from repro.machine.machine import Machine
from repro.timing.branch import make_predictor
from repro.timing.core import SmtCore
from repro.timing.params import CoreParams


def make_core(program, num_contexts=2, **core_kwargs):
    machine = Machine(program, num_contexts=num_contexts)
    hierarchy = CacheHierarchy(1, HierarchyParams())
    core = SmtCore(0, machine.contexts, CoreParams(**core_kwargs),
                   hierarchy, make_predictor("gshare"), machine)
    return machine, core


def alu_spin(n):
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 0)
            for _ in range(n):
                b.addi(r, r, 1)
        b.halt()
    return b.build()


def test_single_context_issues_up_to_width():
    machine, core = make_core(alu_spin(40), issue_width=4)
    issued = core.cycle(0)
    assert issued == 4


def test_width_one_issues_one():
    machine, core = make_core(alu_spin(40), issue_width=1)
    assert core.cycle(0) == 1


def test_two_contexts_share_width():
    program = alu_spin(40)
    machine, core = make_core(program, num_contexts=2, issue_width=4)
    # put the support context to work on the same code
    machine.contexts[1].start_support(0, "w", 0, 0, 0)
    issued = core.cycle(0)
    assert issued == 4
    # both contexts made progress
    assert machine.contexts[0].instruction_count > 0
    assert machine.contexts[1].instruction_count > 0


def test_idle_context_does_not_issue():
    machine, core = make_core(alu_spin(10), num_contexts=2)
    core.cycle(0)
    assert machine.contexts[1].instruction_count == 0


def test_long_latency_marks_context_busy():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (x, y):
            b.li(x, 9)
            b.idiv(y, x, x)
            b.addi(y, y, 1)
        b.halt()
    machine, core = make_core(b.build(), issue_width=4)
    core.cycle(0)  # li + idiv issue; idiv latency stalls the context
    ctx = machine.contexts[0]
    assert ctx.busy_until > 1
    # context cannot issue while busy
    assert core.cycle(1) == 0
    assert core.cycle(ctx.busy_until) > 0


def test_halted_context_stops_issuing():
    machine, core = make_core(alu_spin(2), issue_width=16)
    core.cycle(0)
    assert machine.main_context.state is ContextState.HALTED
    assert core.cycle(1) == 0


def test_class_counts_accumulate():
    from repro.isa.instructions import OpClass

    machine, core = make_core(alu_spin(7), issue_width=16)
    core.cycle(0)
    assert core.class_counts[OpClass.IALU] == 8  # li + 7 addi
    assert core.class_counts[OpClass.SYS] == 1  # halt


def test_min_ready_time():
    machine, core = make_core(alu_spin(40))
    assert core.min_ready_time(5) == 5  # ready now
    machine.main_context.busy_until = 30
    assert core.min_ready_time(5) == 30
    machine.main_context.state = ContextState.HALTED
    assert core.min_ready_time(5) == -1  # nothing running


def test_busy_cycles_counted():
    machine, core = make_core(alu_spin(10), issue_width=2)
    cycles = 0
    while machine.main_context.state is ContextState.RUNNING:
        core.cycle(cycles)
        cycles += 1
    assert core.busy_cycles == cycles  # pure ALU: never a dead cycle


def test_requires_contexts():
    with pytest.raises(ValueError):
        SmtCore(0, [], CoreParams(), CacheHierarchy(1),
                make_predictor("gshare"), None)
