"""Timing simulator: cycle accounting, stalls, SMT sharing, deadlocks."""

import pytest

from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.errors import ExecutionLimitExceeded, MachineError
from repro.isa.builder import ProgramBuilder
from repro.timing.params import named_config
from repro.timing.stats import EnergyModel
from repro.timing.system import TimingSimulator

from tests.conftest import build_dtt_sum, expected_dtt_sum


def straightline_program(n_alu=100):
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 0)
            for _ in range(n_alu):
                b.addi(r, r, 1)
            b.out(r)
        b.halt()
    return b.build()


def test_result_fields_and_output():
    result = TimingSimulator(straightline_program(50)).run()
    assert result.output == [50]
    assert result.cycles > 0
    assert result.instructions == 53  # li + 50 addi + out + halt
    assert 0 < result.ipc <= 4


def test_issue_width_bounds_ipc():
    config = named_config("smt2")
    result = TimingSimulator(straightline_program(400), config).run()
    assert result.ipc <= config.core_params.issue_width
    # pure dependent ALU chain on one context still flows at >1 IPC here
    # (no stalls), bounded below loosely
    assert result.ipc > 0.5


def test_long_latency_ops_cost_more():
    def make(op):
        b = ProgramBuilder()
        with b.function("main"):
            with b.scratch(2) as (x, y):
                b.li(x, 7)
                for _ in range(60):
                    b.emit(op, y, x, x)
            b.halt()
        return b.build()

    fast = TimingSimulator(make("add")).run()
    slow = TimingSimulator(make("idiv")).run()
    assert slow.cycles > 3 * fast.cycles


def test_memory_stalls_show_up_in_cycles():
    def make(stride):
        b = ProgramBuilder()
        b.zeros("xs", 16 * 64)
        with b.function("main"):
            with b.scratch(3) as (base, i, v):
                b.la(base, "xs")
                with b.for_range(i, 0, 60):
                    with b.scratch(1) as (a,):
                        b.muli(a, i, stride)
                        b.ldx(v, base, a)
            b.halt()
        return b.build()

    # stride 0 re-reads one word (L1 hits); stride 16 touches a new line
    # every iteration (cold misses all the way)
    hits = TimingSimulator(make(0)).run()
    misses = TimingSimulator(make(16)).run()
    assert misses.cycles > 2 * hits.cycles
    assert misses.dram_accesses > 50


def test_mispredict_penalty_costs_cycles():
    def make(pattern):
        b = ProgramBuilder()
        b.data("bits", pattern)
        with b.function("main"):
            with b.scratch(3) as (base, i, v):
                b.la(base, "bits")
                with b.for_range(i, 0, len(pattern)):
                    b.ldx(v, base, i)
                    with b.if_(v):
                        b.nop()
            b.halt()
        return b.build()

    steady = TimingSimulator(make([1] * 256)).run()
    import random

    rng = random.Random(7)
    noisy = TimingSimulator(make([rng.randrange(2) for _ in range(256)])).run()
    assert noisy.cycles > steady.cycles
    assert noisy.branch_accuracy < steady.branch_accuracy


def test_cycle_limit_enforced():
    b = ProgramBuilder()
    with b.function("main"):
        b.label("spin")
        b.jmp("spin")
    config = named_config("smt2", max_cycles=500)
    with pytest.raises(ExecutionLimitExceeded):
        TimingSimulator(b.build(), config).run()


def test_deferred_engine_required():
    program, spec = build_dtt_sum([1, 2], [0], [5])
    engine = DttEngine(ThreadRegistry([spec]), deferred=False)
    with pytest.raises(MachineError, match="deferred"):
        TimingSimulator(program, engine=engine)


@pytest.mark.parametrize("config_name", ["smt2", "smt4", "cmp2", "serial"])
def test_dtt_output_correct_under_every_config(config_name):
    values, idx, vals = [1, 2, 3, 4], [0, 1, 1, 2, 0], [5, 2, 9, 3, 5]
    program, spec = build_dtt_sum(values, idx, vals)
    engine = DttEngine(ThreadRegistry([spec]), deferred=True)
    result = TimingSimulator(program, named_config(config_name),
                             engine=engine).run()
    assert result.output == expected_dtt_sum(values, idx, vals)
    assert result.engine_summary is not None


def test_support_instructions_counted_separately():
    values, idx, vals = [1, 2, 3], [0, 1], [9, 9]
    program, spec = build_dtt_sum(values, idx, vals)
    engine = DttEngine(ThreadRegistry([spec]), deferred=True)
    result = TimingSimulator(program, named_config("smt2"),
                             engine=engine).run()
    assert result.support_instructions > 0
    assert (result.main_instructions + result.support_instructions
            == result.instructions)


def test_fast_forward_skips_stall_time():
    """A single DRAM-bound load must not cost one host iteration per cycle;
    we can only observe the *result*: total cycles >> issued instructions
    while the run still completes quickly (covered by the suite timeout),
    and the cycle count is exact: stall cycles appear in the total."""
    b = ProgramBuilder()
    b.zeros("xs", 1)
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)  # cold miss: 2 + 12 + 200
        b.halt()
    result = TimingSimulator(b.build()).run()
    assert result.cycles >= 200


def test_energy_model_composition():
    model = EnergyModel(per_instruction=1.0, per_l1_access=0.0,
                        per_l2_access=0.0, per_dram_access=0.0,
                        per_writeback=0.0)
    result = TimingSimulator(straightline_program(10),
                             energy_model=model).run()
    assert result.energy == result.instructions


def test_speedup_over():
    fast = TimingSimulator(straightline_program(10)).run()
    slow = TimingSimulator(straightline_program(1000)).run()
    assert fast.speedup_over(slow) > 1.0
    assert slow.speedup_over(fast) < 1.0


def test_as_dict_round_trips_key_fields():
    result = TimingSimulator(straightline_program(10)).run()
    d = result.as_dict()
    assert d["cycles"] == result.cycles
    assert d["instructions"] == result.instructions
    assert d["engine"] is None
