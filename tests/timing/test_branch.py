"""Branch predictors: learning, accuracy accounting, aliasing behavior."""

import pytest

from repro.timing.branch import (
    BimodalPredictor,
    GsharePredictor,
    make_predictor,
)


@pytest.mark.parametrize("cls", [BimodalPredictor, GsharePredictor])
def test_learns_always_taken(cls):
    p = cls()
    for _ in range(100):
        p.predict_and_update(12, True)
    # after warmup, a steady branch is predicted essentially always
    assert p.accuracy > 0.95


@pytest.mark.parametrize("cls", [BimodalPredictor, GsharePredictor])
def test_learns_always_not_taken(cls):
    p = cls()
    for _ in range(100):
        p.predict_and_update(12, False)
    assert p.accuracy > 0.9


def test_bimodal_loop_exit_costs_one_mispredict_per_trip():
    p = BimodalPredictor()
    # a loop taken 9 times then exiting, repeated: classic ~90% accuracy
    for _ in range(50):
        for _ in range(9):
            p.predict_and_update(7, True)
        p.predict_and_update(7, False)
    assert 0.85 <= p.accuracy <= 0.95


def test_gshare_learns_alternating_pattern():
    """Global history lets gshare nail a strict alternation; bimodal can't."""
    gshare = GsharePredictor()
    bimodal = BimodalPredictor()
    outcome = True
    for _ in range(400):
        gshare.predict_and_update(9, outcome)
        bimodal.predict_and_update(9, outcome)
        outcome = not outcome
    assert gshare.accuracy > bimodal.accuracy
    assert gshare.accuracy > 0.9


def test_accuracy_of_fresh_predictor_is_one():
    assert BimodalPredictor().accuracy == 1.0


def test_counters_saturate():
    p = BimodalPredictor(table_bits=4)
    for _ in range(10):
        p.update(3, True)
    # one not-taken shouldn't flip the prediction immediately (2-bit)
    p.update(3, False)
    assert p.predict(3) is True


def test_make_predictor():
    assert isinstance(make_predictor("bimodal"), BimodalPredictor)
    assert isinstance(make_predictor("gshare"), GsharePredictor)
    with pytest.raises(ValueError):
        make_predictor("ttage")


def test_distinct_pcs_use_distinct_counters():
    p = BimodalPredictor()
    for _ in range(10):
        p.update(1, True)
        p.update(2, False)
    assert p.predict(1) is True
    assert p.predict(2) is False
