"""Exception-hierarchy contract: one base to catch them all."""

import pytest

from repro import errors


BRANCH_BASES = {
    errors.IsaError: [
        errors.InvalidInstructionError,
        errors.InvalidRegisterError,
        errors.ProgramValidationError,
        errors.AssemblerError,
        errors.BuilderError,
    ],
    errors.MachineError: [
        errors.MemoryFault,
        errors.AlignmentFault,
        errors.ExecutionFault,
        errors.ExecutionLimitExceeded,
        errors.ContextError,
    ],
    errors.DttError: [
        errors.RegistryError,
        errors.ThreadQueueError,
        errors.RuntimeApiError,
        errors.CascadeError,
    ],
    errors.ObservabilityError: [
        errors.MetricsError,
    ],
    errors.HarnessError: [
        errors.UnknownExperimentError,
        errors.UnknownWorkloadError,
        errors.CorrectnessError,
    ],
}


def test_every_branch_derives_from_repro_error():
    for base in BRANCH_BASES:
        assert issubclass(base, errors.ReproError)


@pytest.mark.parametrize(
    "base,leaf",
    [(base, leaf) for base, leaves in BRANCH_BASES.items() for leaf in leaves],
)
def test_leaves_derive_from_their_branch(base, leaf):
    assert issubclass(leaf, base)
    assert issubclass(leaf, errors.ReproError)


def test_memory_fault_formats_address():
    fault = errors.MemoryFault(0x40, "load outside address space")
    assert "0x40" in str(fault)
    assert fault.address == 0x40


def test_assembler_error_carries_line():
    error = errors.AssemblerError("bad operand", line=17)
    assert "line 17" in str(error)
    assert error.line == 17


def test_assembler_error_without_line():
    error = errors.AssemblerError("bad operand")
    assert "line" not in str(error)
