"""SuiteRunner memoization and correctness cross-checks."""

import pytest

from repro.core.config import DttConfig
from repro.harness.runner import SuiteRunner
from repro.workloads.suite import SUITE


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner()


def test_timed_results_are_memoized(runner):
    workload = SUITE["perlbmk"]
    first = runner.timed(workload, "baseline")
    second = runner.timed(workload, "baseline")
    assert first is second


def test_distinct_kinds_not_aliased(runner):
    workload = SUITE["perlbmk"]
    baseline = runner.timed(workload, "baseline")
    dtt = runner.timed(workload, "dtt")
    assert baseline is not dtt
    assert dtt.engine_summary is not None
    assert baseline.engine_summary is None


def test_dtt_config_fingerprint_distinguishes(runner):
    workload = SUITE["perlbmk"]
    default = runner.timed(workload, "dtt")
    unfiltered = runner.timed(workload, "dtt",
                              dtt_config=DttConfig(same_value_filter=False))
    assert default is not unfiltered
    assert (unfiltered.engine_summary["triggers_fired"]
            > default.engine_summary["triggers_fired"])


def test_dtt_output_checked_against_baseline(runner):
    workload = SUITE["perlbmk"]
    baseline = runner.timed(workload, "baseline")
    dtt = runner.timed(workload, "dtt")
    assert dtt.output == baseline.output


def test_speedup_and_engine_access(runner):
    workload = SUITE["perlbmk"]
    speedup = runner.speedup(workload)
    assert speedup > 0.9
    engine = runner.engine_for(workload, "dtt")
    assert engine.summary()["consumes"] > 0


def test_profile_memoized(runner):
    workload = SUITE["perlbmk"]
    assert runner.profile(workload) is runner.profile(workload)


def test_suite_iterates_canonical_order(runner):
    assert [w.name for w in runner.suite()] == list(SUITE)


def test_different_seed_runner_is_distinct():
    a = SuiteRunner(seed=1)
    b = SuiteRunner(seed=2)
    workload = SUITE["perlbmk"]
    ra = a.timed(workload, "baseline")
    rb = b.timed(workload, "baseline")
    assert ra.output != rb.output
