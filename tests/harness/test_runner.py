"""SuiteRunner memoization and correctness cross-checks."""

import pytest

from repro.core.config import DttConfig
from repro.harness.runner import SuiteRunner
from repro.workloads.suite import SUITE


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner()


def test_timed_results_are_memoized(runner):
    workload = SUITE["perlbmk"]
    first = runner.timed(workload, "baseline")
    second = runner.timed(workload, "baseline")
    assert first is second


def test_distinct_kinds_not_aliased(runner):
    workload = SUITE["perlbmk"]
    baseline = runner.timed(workload, "baseline")
    dtt = runner.timed(workload, "dtt")
    assert baseline is not dtt
    assert dtt.engine_summary is not None
    assert baseline.engine_summary is None


def test_dtt_config_fingerprint_distinguishes(runner):
    workload = SUITE["perlbmk"]
    default = runner.timed(workload, "dtt")
    unfiltered = runner.timed(workload, "dtt",
                              dtt_config=DttConfig(same_value_filter=False))
    assert default is not unfiltered
    assert (unfiltered.engine_summary["triggers_fired"]
            > default.engine_summary["triggers_fired"])


def test_dtt_output_checked_against_baseline(runner):
    workload = SUITE["perlbmk"]
    baseline = runner.timed(workload, "baseline")
    dtt = runner.timed(workload, "dtt")
    assert dtt.output == baseline.output


def test_speedup_and_engine_access(runner):
    workload = SUITE["perlbmk"]
    speedup = runner.speedup(workload)
    assert speedup > 0.9
    engine = runner.engine_for(workload, "dtt")
    assert engine.summary()["consumes"] > 0


def test_profile_memoized(runner):
    workload = SUITE["perlbmk"]
    assert runner.profile(workload) is runner.profile(workload)


def test_suite_iterates_canonical_order(runner):
    assert [w.name for w in runner.suite()] == list(SUITE)


def test_different_seed_runner_is_distinct():
    a = SuiteRunner(seed=1)
    b = SuiteRunner(seed=2)
    workload = SUITE["perlbmk"]
    ra = a.timed(workload, "baseline")
    rb = b.timed(workload, "baseline")
    assert ra.output != rb.output


def test_cache_stats_counts_hits_and_misses():
    runner = SuiteRunner()
    workload = SUITE["perlbmk"]
    runner.timed(workload, "baseline")            # miss
    runner.timed(workload, "baseline")            # hit
    runner.profile(workload)                      # miss
    runner.profile(workload)                      # hit
    stats = runner.cache_stats()
    assert stats["misses"] == 2
    assert stats["hits"] == 2
    assert stats["timed_entries"] == 1
    assert stats["profile_entries"] == 1
    # keys are the documented canonical strings, serialization-safe
    assert sorted(stats["keys"]) == [
        "perlbmk:baseline:smt2:seed=default:scale=default",
        "perlbmk:profile:-:seed=default:scale=default",
    ]


def test_clear_drops_memoized_runs():
    runner = SuiteRunner()
    workload = SUITE["perlbmk"]
    first = runner.timed(workload, "baseline")
    runner.clear()
    stats = runner.cache_stats()
    assert stats == {"hits": 0, "misses": 0, "store_hits": 0,
                     "store_misses": 0, "timed_entries": 0,
                     "profile_entries": 0, "keys": []}
    assert runner.phase_seconds() == {}
    second = runner.timed(workload, "baseline")
    assert second is not first  # genuinely re-run
    assert second.output == first.output


def test_runner_records_phase_seconds_and_peak_depth():
    runner = SuiteRunner()
    workload = SUITE["perlbmk"]
    runner.timed(workload, "dtt")
    phases = runner.phase_seconds()
    assert "perlbmk:dtt:smt2" in phases
    assert "perlbmk:baseline:smt2" in phases  # run by the correctness check
    assert all(seconds > 0 for seconds in phases.values())
    assert runner.peak_queue_depth() >= 0


def test_runner_metrics_and_traces_opt_in():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    runner = SuiteRunner(metrics=registry, trace=True)
    workload = SUITE["perlbmk"]
    runner.timed(workload, "dtt")
    runner.timed(workload, "dtt")
    assert registry.counter("runner.cache_hits").value >= 1
    assert registry.counter("runner.cache_misses").value == 2
    assert registry.counter("engine.triggering_stores").value > 0
    assert registry.gauge("timing.cycles").value > 0
    (label, trace), = runner.traces()
    assert label == "perlbmk:dtt:smt2"
    assert len(trace) > 0
