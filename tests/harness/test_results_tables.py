"""ExperimentResult records and text rendering."""

import json

import pytest

from repro.harness.results import ExperimentResult, ShapeCheck
from repro.harness.tables import ascii_table, bar_series


def sample_result():
    return ExperimentResult(
        "E9", "A sample", ["name", "value"],
        [["a", 1.23456], ["b", 2]],
        paper_claim="things go up",
    )


def test_check_range_pass_and_fail():
    result = sample_result()
    result.check_range("in band", 0.5, 0.4, 0.6)
    result.check_range("out of band", 0.9, 0.4, 0.6)
    assert result.checks[0].passed
    assert not result.checks[1].passed
    assert not result.all_passed


def test_all_passed_with_no_checks():
    assert sample_result().all_passed


def test_render_contains_table_and_checks():
    result = sample_result()
    result.add_check("looks right", True, "detail here")
    text = result.render()
    assert "E9" in text
    assert "paper claim" in text
    assert "[PASS] looks right" in text
    assert "| a" in text


def test_render_marks_failures():
    result = sample_result()
    result.add_check("broken", False, "oops")
    assert "[FAIL] broken" in result.render()


def test_json_round_trip():
    result = sample_result()
    result.add_check("c", True)
    payload = json.loads(result.to_json())
    assert payload["experiment"] == "E9"
    assert payload["rows"] == [["a", 1.23456], ["b", 2]]
    assert payload["checks"][0]["name"] == "c"


def test_shape_check_repr():
    assert "PASS" in repr(ShapeCheck("x", True))
    assert "FAIL" in repr(ShapeCheck("x", False))


# -- tables --------------------------------------------------------------------


def test_ascii_table_alignment():
    text = ascii_table(["col", "x"], [["aaa", 1], ["b", 22.5]])
    lines = text.splitlines()
    assert len({len(line) for line in lines}) == 1  # rectangular
    assert "aaa" in text
    assert "22.500" in text  # float formatting


def test_ascii_table_handles_wide_cells():
    text = ascii_table(["c"], [["a very long cell indeed"]])
    assert "a very long cell indeed" in text


def test_bar_series_scales_to_peak():
    text = bar_series(["small", "big"], [1.0, 4.0], width=8)
    lines = text.splitlines()
    assert lines[1].count("#") == 8
    assert lines[0].count("#") == 2


def test_bar_series_validates_lengths():
    with pytest.raises(ValueError):
        bar_series(["a"], [1.0, 2.0])


def test_bar_series_empty():
    assert "empty" in bar_series([], [])


def test_bar_series_units():
    assert "2.000x" in bar_series(["a"], [2.0], unit="x")
