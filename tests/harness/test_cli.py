"""CLI: list, verify, run with JSON export."""

import json

import pytest

from repro.harness.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "E3" in out
    assert "mcf" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_single_experiment_with_json(tmp_path, capsys):
    target = tmp_path / "out.json"
    assert main(["run", "E6", "--json", str(target)]) == 0
    payload = json.loads(target.read_text())
    assert payload[0]["experiment"] == "E6"
    out = capsys.readouterr().out
    assert "E6" in out
    assert "[PASS]" in out


def test_verify_command(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 15


def test_run_exports_metrics_and_trace(tmp_path, capsys):
    metrics_file = tmp_path / "m.json"
    trace_file = tmp_path / "t.json"
    json_file = tmp_path / "out.json"
    assert main(["run", "E9", "--json", str(json_file),
                 "--metrics-out", str(metrics_file),
                 "--trace-out", str(trace_file)]) == 0
    metrics = json.loads(metrics_file.read_text())
    for name in ("engine.triggers_fired", "queue.depth_high_water",
                 "runner.cache_misses", "timing.cycles"):
        assert name in metrics, f"missing {name}"
    trace = json.loads(trace_file.read_text())
    timestamps = [e["ts"] for e in trace["traceEvents"]]
    assert timestamps and timestamps == sorted(timestamps)
    payload = json.loads(json_file.read_text())
    assert payload[0]["manifest"]["cache_misses"] > 0


def test_stats_command_prints_registry(capsys):
    assert main(["stats", "--workload", "perlbmk"]) == 0
    out = capsys.readouterr().out
    assert "engine.triggers_fired" in out
    assert "timing.cycles" in out
    assert "runner.cache_misses" in out


def test_stats_rejects_unknown_workload(capsys):
    assert main(["stats", "--workload", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().out


def test_explain_list(capsys):
    assert main(["explain", "--workload", "mcf", "--list"]) == 0
    out = capsys.readouterr().out
    assert "activations in mcf:dtt:smt2" in out
    assert "#1:" in out


def test_explain_activation_lineage(capsys):
    assert main(["explain", "--workload", "mcf", "--activation", "1"]) == 0
    out = capsys.readouterr().out
    assert "activation #1" in out
    assert "triggering store" in out
    assert "registry match" in out
    assert "dispatched" in out


def test_explain_address(capsys):
    # find a suppressed address from the trace, then explain it
    from repro.harness.runner import SuiteRunner
    from repro.workloads.suite import SUITE
    from repro.core import trace as T

    runner = SuiteRunner(trace=True)
    runner.timed(SUITE["mcf"], "dtt")
    trace = runner.trace_for("mcf", "dtt")
    suppressed = trace.of_kind(T.SUPPRESSED)[0].address
    assert main(["explain", "--workload", "mcf",
                 "--address", str(suppressed)]) == 0
    out = capsys.readouterr().out
    assert "same-value" in out


def test_explain_rejects_unknown_workload(capsys):
    assert main(["explain", "--workload", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().out


def test_report_from_store_and_results(tmp_path, capsys):
    store = tmp_path / "store"
    results = tmp_path / "results.json"
    out_html = tmp_path / "report.html"
    assert main(["run", "E6", "--store", str(store),
                 "--json", str(results)]) == 0
    assert main(["report", "--store", str(store),
                 "--results", str(results),
                 "-o", str(out_html)]) == 0
    html_text = out_html.read_text(encoding="utf-8")
    assert "<!DOCTYPE html>" in html_text
    assert "E6" in html_text
    # every stored run is named in the report
    from repro.exec.store import ResultStore
    for entry in ResultStore(str(store)).entries():
        assert entry["canonical"] in html_text
    out = capsys.readouterr().out
    assert "wrote" in out


def test_report_rejects_missing_store(tmp_path, capsys):
    assert main(["report", "--store", str(tmp_path / "nope")]) == 2
    assert "not a result store" in capsys.readouterr().out


def test_report_requires_some_input(capsys):
    assert main(["report"]) == 2
    assert "nothing to report" in capsys.readouterr().out


# -- sampled profiling + compressed traces (--sample-rate / --ctrace) ----------


def test_stats_sampled_with_ctrace(tmp_path, capsys):
    ctrace = tmp_path / "mcf.ctrace"
    assert main(["stats", "--workload", "mcf", "--sample-rate", "64",
                 "--ctrace-out", str(ctrace)]) == 0
    out = capsys.readouterr().out
    assert "95% CI" in out
    assert "compressed trace" in out
    assert "smaller than the JSON Chrome export" in out
    assert ctrace.exists()


def test_stats_rejects_bad_sample_rate(capsys):
    assert main(["stats", "--workload", "mcf", "--sample-rate", "0"]) == 2
    assert "--sample-rate must be >= 1" in capsys.readouterr().out


def test_explain_and_report_from_ctrace(tmp_path, capsys):
    ctrace = tmp_path / "mcf.ctrace"
    assert main(["stats", "--workload", "mcf", "--sample-rate", "64",
                 "--ctrace-out", str(ctrace)]) == 0
    capsys.readouterr()

    assert main(["explain", "--ctrace", str(ctrace),
                 "--workload", "mcf", "--list"]) == 0
    out = capsys.readouterr().out
    assert "mcf:dtt:smt2" in out

    html = tmp_path / "report.html"
    assert main(["report", "--ctrace", str(ctrace),
                 "-o", str(html)]) == 0
    text = html.read_text()
    assert "mcf:dtt:smt2" in text


def test_explain_rejects_unreadable_ctrace(tmp_path, capsys):
    bogus = tmp_path / "nope.ctrace"
    bogus.write_bytes(b"not a trace")
    assert main(["explain", "--ctrace", str(bogus)]) == 2
    assert "cannot read compressed trace" in capsys.readouterr().out


def test_bench_trace_writes_overhead_json(tmp_path, capsys):
    target = tmp_path / "BENCH_trace_overhead.json"
    assert main(["bench", "--trace", "--workloads", "mcf",
                 "--repeat", "1", "-o", str(target)]) == 0
    payload = json.loads(target.read_text())
    assert payload["kind"] == "bench_trace_overhead"
    row = payload["rows"]["mcf"]
    assert row["compression_ratio"] >= 5.0
    assert row["sampled_in_ci"] is True
    out = capsys.readouterr().out
    assert "trace-overhead benchmark" in out


def test_run_e1_sampled_passes_with_ci_checks(tmp_path, capsys):
    target = tmp_path / "e1.json"
    assert main(["run", "E1", "--sample-rate", "64",
                 "--json", str(target)]) == 0
    out = capsys.readouterr().out
    assert "CI overlap" in out
    assert "[FAIL]" not in out
    payload = json.loads(target.read_text())
    manifest = payload[0]["manifest"]
    assert manifest["schema_version"] == 7
    assert manifest["sampling"]["sample_rate"] == 64


# -- performance observatory: history / dashboard / telemetry ------------------


def _seed_history(tmp_path, values, metric="instructions_per_sec"):
    from repro.obs.history import HistoryStore, make_record

    store = HistoryStore(str(tmp_path / "hist"))
    for i, value in enumerate(values):
        store.append(make_record("bench_interpreter",
                                 {"mcf": {metric: value}},
                                 git_sha=f"sha{i}", host="testhost",
                                 timestamp=1000.0 + i))
    return str(tmp_path / "hist")


def test_bench_appends_to_history(tmp_path, capsys):
    hist = str(tmp_path / "hist")
    for _ in range(3):
        assert main(["bench", "--workloads", "mcf", "--repeat", "1",
                     "-o", "", "--history", hist]) == 0
    out = capsys.readouterr().out
    assert out.count("history: appended bench_interpreter record") == 3
    from repro.obs.history import HistoryStore
    assert len(HistoryStore(hist).records(kind="bench_interpreter")) == 3


def test_history_gate_flags_injected_regression(tmp_path, capsys):
    stable = [100.0, 100.3, 99.8, 100.1, 99.9]
    hist = _seed_history(tmp_path, stable)
    assert main(["history", hist, "--gate"]) == 0  # green series passes
    capsys.readouterr()
    _seed_history(tmp_path, stable + [90.0])       # inject a 10% drop
    assert main(["history", hist, "--gate"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "instructions_per_sec" in out
    # without --gate the same analysis reports but does not fail
    assert main(["history", hist]) == 0


def test_history_append_then_analyze(tmp_path, capsys):
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({
        "kind": "bench_interpreter",
        "rows": {"mcf": {"instructions_per_sec": 100.0}},
    }))
    ci = str(tmp_path / "ci.jsonl")
    assert main(["history", ci, "--append", str(bench), "--gate"]) == 0
    out = capsys.readouterr().out
    assert "appended bench_interpreter record" in out
    assert "insufficient-data" in out


def test_history_json_and_errors(tmp_path, capsys):
    hist = _seed_history(tmp_path, [100.0, 100.0, 100.0])
    assert main(["history", hist, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["records"] == 3
    assert main(["history", str(tmp_path / "empty")]) == 2
    assert "no records" in capsys.readouterr().out
    assert main(["history", hist, "--append",
                 str(tmp_path / "missing.json")]) == 2


def test_dashboard_writes_selfcontained_html(tmp_path, capsys):
    hist = _seed_history(tmp_path, [100.0, 100.3, 99.8, 100.1, 90.0])
    target = tmp_path / "trends.html"
    assert main(["dashboard", "--history", hist, "-o", str(target),
                 "--no-flames"]) == 0
    text = target.read_text()
    assert "GATE FAILS" in text
    assert "instructions_per_sec" in text
    assert "<script" not in text
    assert "Verdict catalog" in text


def test_dashboard_flames_link_flagged_workload(tmp_path):
    hist = _seed_history(tmp_path, [100.0, 100.3, 99.8, 100.1, 90.0])
    target = tmp_path / "trends.html"
    assert main(["dashboard", "--history", hist, "-o", str(target)]) == 0
    text = target.read_text()
    # the flagged mcf series deep-links its flame-attributed sites
    assert "href='#flame-mcf'" in text
    assert "id='flame-mcf'" in text
    assert "hottest site" in text


def test_run_with_status_file_and_history(tmp_path, capsys):
    status = tmp_path / "status.json"
    hist = str(tmp_path / "hist")
    assert main(["run", "E6", "--status-file", str(status),
                 "--history", hist]) == 0
    heartbeat = json.loads(status.read_text())
    assert heartbeat["status"] == "done"
    assert heartbeat["runs_completed"] >= 1
    assert heartbeat["eta_seconds"] == 0.0
    from repro.obs.history import HistoryStore
    records = HistoryStore(hist).records(kind="results")
    assert len(records) == 1
    out = capsys.readouterr().out
    assert "history: appended results record" in out


def test_convert_history_record_lands_in_manifest(tmp_path):
    hist = str(tmp_path / "hist")
    manifest_path = tmp_path / "manifest.json"
    assert main(["convert", "--workload", "mcf", "--history", hist,
                 "--json", str(manifest_path)]) == 0
    manifest = json.loads(manifest_path.read_text())
    (row,) = manifest["history"]
    assert row["kind"] == "bench_autoconvert"
    assert len(row["record_id"]) == 64
    from repro.obs.history import HistoryStore
    (record,) = HistoryStore(hist).records(kind="bench_autoconvert")
    assert record["record_id"] == row["record_id"]
    assert record["rows"]["mcf"]["speedup"] > 1.0


def test_run_rejects_bad_status_file_directory(tmp_path, capsys):
    assert main(["run", "E6", "--status-file",
                 str(tmp_path / "gone" / "s.json")]) == 2
    assert "does not exist" in capsys.readouterr().out
