"""CLI: list, verify, run with JSON export."""

import json

import pytest

from repro.harness.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "E3" in out
    assert "mcf" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_single_experiment_with_json(tmp_path, capsys):
    target = tmp_path / "out.json"
    assert main(["run", "E6", "--json", str(target)]) == 0
    payload = json.loads(target.read_text())
    assert payload[0]["experiment"] == "E6"
    out = capsys.readouterr().out
    assert "E6" in out
    assert "[PASS]" in out


def test_verify_command(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 15


def test_run_exports_metrics_and_trace(tmp_path, capsys):
    metrics_file = tmp_path / "m.json"
    trace_file = tmp_path / "t.json"
    json_file = tmp_path / "out.json"
    assert main(["run", "E9", "--json", str(json_file),
                 "--metrics-out", str(metrics_file),
                 "--trace-out", str(trace_file)]) == 0
    metrics = json.loads(metrics_file.read_text())
    for name in ("engine.triggers_fired", "queue.depth_high_water",
                 "runner.cache_misses", "timing.cycles"):
        assert name in metrics, f"missing {name}"
    trace = json.loads(trace_file.read_text())
    timestamps = [e["ts"] for e in trace["traceEvents"]]
    assert timestamps and timestamps == sorted(timestamps)
    payload = json.loads(json_file.read_text())
    assert payload[0]["manifest"]["cache_misses"] > 0


def test_stats_command_prints_registry(capsys):
    assert main(["stats", "--workload", "perlbmk"]) == 0
    out = capsys.readouterr().out
    assert "engine.triggers_fired" in out
    assert "timing.cycles" in out
    assert "runner.cache_misses" in out


def test_stats_rejects_unknown_workload(capsys):
    assert main(["stats", "--workload", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().out


def test_explain_list(capsys):
    assert main(["explain", "--workload", "mcf", "--list"]) == 0
    out = capsys.readouterr().out
    assert "activations in mcf:dtt:smt2" in out
    assert "#1:" in out


def test_explain_activation_lineage(capsys):
    assert main(["explain", "--workload", "mcf", "--activation", "1"]) == 0
    out = capsys.readouterr().out
    assert "activation #1" in out
    assert "triggering store" in out
    assert "registry match" in out
    assert "dispatched" in out


def test_explain_address(capsys):
    # find a suppressed address from the trace, then explain it
    from repro.harness.runner import SuiteRunner
    from repro.workloads.suite import SUITE
    from repro.core import trace as T

    runner = SuiteRunner(trace=True)
    runner.timed(SUITE["mcf"], "dtt")
    trace = runner.trace_for("mcf", "dtt")
    suppressed = trace.of_kind(T.SUPPRESSED)[0].address
    assert main(["explain", "--workload", "mcf",
                 "--address", str(suppressed)]) == 0
    out = capsys.readouterr().out
    assert "same-value" in out


def test_explain_rejects_unknown_workload(capsys):
    assert main(["explain", "--workload", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().out


def test_report_from_store_and_results(tmp_path, capsys):
    store = tmp_path / "store"
    results = tmp_path / "results.json"
    out_html = tmp_path / "report.html"
    assert main(["run", "E6", "--store", str(store),
                 "--json", str(results)]) == 0
    assert main(["report", "--store", str(store),
                 "--results", str(results),
                 "-o", str(out_html)]) == 0
    html_text = out_html.read_text(encoding="utf-8")
    assert "<!DOCTYPE html>" in html_text
    assert "E6" in html_text
    # every stored run is named in the report
    from repro.exec.store import ResultStore
    for entry in ResultStore(str(store)).entries():
        assert entry["canonical"] in html_text
    out = capsys.readouterr().out
    assert "wrote" in out


def test_report_rejects_missing_store(tmp_path, capsys):
    assert main(["report", "--store", str(tmp_path / "nope")]) == 2
    assert "not a result store" in capsys.readouterr().out


def test_report_requires_some_input(capsys):
    assert main(["report"]) == 2
    assert "nothing to report" in capsys.readouterr().out


# -- sampled profiling + compressed traces (--sample-rate / --ctrace) ----------


def test_stats_sampled_with_ctrace(tmp_path, capsys):
    ctrace = tmp_path / "mcf.ctrace"
    assert main(["stats", "--workload", "mcf", "--sample-rate", "64",
                 "--ctrace-out", str(ctrace)]) == 0
    out = capsys.readouterr().out
    assert "95% CI" in out
    assert "compressed trace" in out
    assert "smaller than the JSON Chrome export" in out
    assert ctrace.exists()


def test_stats_rejects_bad_sample_rate(capsys):
    assert main(["stats", "--workload", "mcf", "--sample-rate", "0"]) == 2
    assert "--sample-rate must be >= 1" in capsys.readouterr().out


def test_explain_and_report_from_ctrace(tmp_path, capsys):
    ctrace = tmp_path / "mcf.ctrace"
    assert main(["stats", "--workload", "mcf", "--sample-rate", "64",
                 "--ctrace-out", str(ctrace)]) == 0
    capsys.readouterr()

    assert main(["explain", "--ctrace", str(ctrace),
                 "--workload", "mcf", "--list"]) == 0
    out = capsys.readouterr().out
    assert "mcf:dtt:smt2" in out

    html = tmp_path / "report.html"
    assert main(["report", "--ctrace", str(ctrace),
                 "-o", str(html)]) == 0
    text = html.read_text()
    assert "mcf:dtt:smt2" in text


def test_explain_rejects_unreadable_ctrace(tmp_path, capsys):
    bogus = tmp_path / "nope.ctrace"
    bogus.write_bytes(b"not a trace")
    assert main(["explain", "--ctrace", str(bogus)]) == 2
    assert "cannot read compressed trace" in capsys.readouterr().out


def test_bench_trace_writes_overhead_json(tmp_path, capsys):
    target = tmp_path / "BENCH_trace_overhead.json"
    assert main(["bench", "--trace", "--workloads", "mcf",
                 "--repeat", "1", "-o", str(target)]) == 0
    payload = json.loads(target.read_text())
    assert payload["kind"] == "bench_trace_overhead"
    row = payload["rows"]["mcf"]
    assert row["compression_ratio"] >= 5.0
    assert row["sampled_in_ci"] is True
    out = capsys.readouterr().out
    assert "trace-overhead benchmark" in out


def test_run_e1_sampled_passes_with_ci_checks(tmp_path, capsys):
    target = tmp_path / "e1.json"
    assert main(["run", "E1", "--sample-rate", "64",
                 "--json", str(target)]) == 0
    out = capsys.readouterr().out
    assert "CI overlap" in out
    assert "[FAIL]" not in out
    payload = json.loads(target.read_text())
    manifest = payload[0]["manifest"]
    assert manifest["schema_version"] == 6
    assert manifest["sampling"]["sample_rate"] == 64
