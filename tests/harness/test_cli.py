"""CLI: list, verify, run with JSON export."""

import json

import pytest

from repro.harness.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "E3" in out
    assert "mcf" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_single_experiment_with_json(tmp_path, capsys):
    target = tmp_path / "out.json"
    assert main(["run", "E6", "--json", str(target)]) == 0
    payload = json.loads(target.read_text())
    assert payload[0]["experiment"] == "E6"
    out = capsys.readouterr().out
    assert "E6" in out
    assert "[PASS]" in out


def test_verify_command(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 15
