"""Experiment functions: structure and shape checks.

The full experiments are the repository's acceptance tests: each one's
shape checks must pass.  A single module-scoped runner shares the timed
runs, so this module costs roughly one full harness run.
"""

import pytest

from repro.errors import UnknownExperimentError
from repro.harness.experiments import (
    EXPERIMENTS,
    geometric_mean,
    run_experiment,
)
from repro.harness.runner import SuiteRunner
from repro.workloads.suite import SUITE


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner()


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([3.0]) == pytest.approx(3.0)
    assert geometric_mean([]) == 0.0


def test_registry_lists_all_nine():
    assert sorted(EXPERIMENTS) == [f"E{i}" for i in range(1, 10)]


def test_unknown_experiment_rejected():
    with pytest.raises(UnknownExperimentError):
        run_experiment("E99")


def test_run_experiment_is_case_insensitive(runner):
    result = run_experiment("e6", runner)
    assert result.experiment_id == "E6"


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_passes_its_shape_checks(experiment_id, runner):
    result = run_experiment(experiment_id, runner)
    failing = [c for c in result.checks if not c.passed]
    assert not failing, f"{experiment_id} failing checks: {failing}"
    assert result.rows
    assert result.checks


def test_e1_has_a_row_per_benchmark_plus_average(runner):
    result = run_experiment("E1", runner)
    assert len(result.rows) == len(SUITE) + 1
    assert result.rows[-1][0] == "average"


def test_e3_reports_both_means(runner):
    result = run_experiment("E3", runner)
    labels = [row[0] for row in result.rows]
    assert "geo-mean" in labels
    assert "arith-mean" in labels


def test_e6_one_row_per_benchmark(runner):
    result = run_experiment("E6", runner)
    assert [row[0] for row in result.rows] == list(SUITE)


def test_e7_includes_config_rows(runner):
    result = run_experiment("E7", runner)
    config_rows = [row for row in result.rows if str(row[0]).startswith("[config]")]
    assert len(config_rows) >= 10


def test_headline_results_match_goldens(runner):
    """E1/E3 reproduce the committed golden rows exactly (determinism +
    calibration lock at full fidelity; see results/README.md)."""
    import json
    import pathlib

    results_dir = pathlib.Path(__file__).resolve().parents[2] / "results"
    for experiment_id, golden_name in (("E1", "golden_e1"),
                                       ("E3", "golden_e3")):
        fresh = run_experiment(experiment_id, runner).as_dict()
        golden = json.loads((results_dir / f"{golden_name}.json").read_text())
        assert fresh["rows"] == golden["rows"], experiment_id
        assert fresh["headers"] == golden["headers"], experiment_id
