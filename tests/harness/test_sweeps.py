"""Robustness sweeps over two seeds (a fast subset of the CLI's three)."""

import pytest

from repro.harness.sweeps import sweep_redundancy, sweep_speedup


@pytest.fixture(scope="module")
def seeds():
    return (1234, 999)


def test_redundancy_sweep_stable(seeds):
    result = sweep_redundancy(seeds)
    assert result.all_passed, [c for c in result.checks if not c.passed]
    assert len(result.rows) == len(seeds) + 1  # per-seed + summary


def test_speedup_sweep_stable(seeds):
    result = sweep_speedup(seeds)
    assert result.all_passed, [c for c in result.checks if not c.passed]
    # mcf is the max at both seeds
    assert all("(mcf)" in row[2] for row in result.rows[:-1])
