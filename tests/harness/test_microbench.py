"""Mechanism-overhead microbenchmarks behave as the design promises."""

import pytest

from repro.harness import microbench


@pytest.fixture(scope="module")
def result():
    return microbench.run_micro_overheads()


def test_all_overhead_checks_pass(result):
    failing = [c for c in result.checks if not c.passed]
    assert not failing, failing


def test_silent_tstore_is_free():
    assert abs(microbench.silent_tstore_overhead()) < 0.5


def test_clean_tcheck_is_free():
    assert abs(microbench.clean_tcheck_overhead()) < 2.0


def test_roundtrip_grows_then_pays_off_with_overlap():
    """For a tiny body the thread round trip costs a few cycles; the
    mechanism's payoff comes from skipping and overlap (E3/E9), not from
    making a hot 8-op computation cheaper."""
    small = microbench.trigger_roundtrip_overhead(work=8)
    assert -5.0 < small < 100.0
