"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.machine.machine import Machine


@pytest.fixture
def tiny_program():
    """A minimal finalized program: out(7); halt."""
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 7)
            b.out(r)
        b.halt()
    return b.build()


@pytest.fixture
def sum_program():
    """Sums a 5-element array into the output."""
    b = ProgramBuilder()
    b.data("xs", [3, 1, 4, 1, 5])
    with b.function("main"):
        with b.scratch(3) as (i, base, acc):
            b.la(base, "xs")
            b.li(acc, 0)
            with b.for_range(i, 0, 5):
                with b.scratch(1) as (v,):
                    b.ldx(v, base, i)
                    b.add(acc, acc, v)
            b.out(acc)
            b.halt()
    return b.build()


def build_dtt_sum(values, upd_idx, upd_val, per_address=False):
    """A small DTT program: writes + tcheck + read derived sum.

    Used across engine/timing tests.  Returns (program, trigger_spec).
    """
    n = len(values)
    b = ProgramBuilder()
    b.data("xs", values)
    b.data("upd_idx", upd_idx)
    b.data("upd_val", upd_val)
    # the derived sum starts valid (programming-model rule R2: derived
    # data must be initialized before the first consume, since an
    # all-silent schedule never runs the support thread)
    b.data("sum", [sum(values)])
    with b.thread("sumthr"):
        with b.scratch(4) as (i, base, acc, v):
            b.la(base, "xs")
            b.li(acc, 0)
            with b.for_range(i, 0, n):
                b.ldx(v, base, i)
                b.add(acc, acc, v)
            with b.scratch(1) as (sp,):
                b.la(sp, "sum")
                b.st(acc, sp, 0)
        b.treturn()
    tst_pc = None
    with b.function("main"):
        xs = b.global_reg("xs")
        ui = b.global_reg("ui")
        uv = b.global_reg("uv")
        sp = b.global_reg("sp")
        t = b.global_reg("t")
        b.la(xs, "xs")
        b.la(ui, "upd_idx")
        b.la(uv, "upd_val")
        b.la(sp, "sum")
        with b.for_range(t, 0, len(upd_idx)):
            with b.scratch(2) as (idx, val):
                b.ldx(idx, ui, t)
                b.ldx(val, uv, t)
                pc = b.emit("tstx", val, xs, idx)
                if tst_pc is None:
                    tst_pc = pc
            b.tcheck_thread("sumthr")
            with b.scratch(1) as (s,):
                b.ld(s, sp, 0)
                b.out(s)
        b.halt()
    program = b.build()
    spec = TriggerSpec("sumthr", store_pcs=[tst_pc],
                       per_address_dedupe=per_address)
    return program, spec


def expected_dtt_sum(values, upd_idx, upd_val):
    """Oracle for :func:`build_dtt_sum`'s output stream."""
    xs = list(values)
    out = []
    for i, v in zip(upd_idx, upd_val):
        xs[i] = v
        out.append(sum(xs))
    return out


@pytest.fixture
def dtt_sum_machine():
    """Factory: a machine + synchronous engine over the DTT sum program."""

    def factory(values=(1, 2, 3, 4), upd_idx=(0, 1, 1, 2), upd_val=(5, 2, 9, 3),
                num_contexts=2, config=None):
        program, spec = build_dtt_sum(list(values), list(upd_idx),
                                      list(upd_val))
        machine = Machine(program, num_contexts=num_contexts)
        engine = DttEngine(ThreadRegistry([spec]), config=config)
        machine.attach_engine(engine)
        return machine, engine

    return factory
