"""Examples stay runnable: execute each script and check its story.

Each example is run in-process (imported and ``main()`` called) with its
stdout captured — faster than subprocesses and still end-to-end through
the public API.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart": ["2 recomputations, 5 eliminated"],
    "sparse_engine": ["eliminated:", "solution checksum"],
    "mcf_network": ["outputs identical: yes", "speedup: 5.96x"],
    "profile_redundancy": ["measured: 75.9%", "hottest redundant-load"],
    "convert_with_advisor": ["outputs identical over 120 steps: yes",
                             "speedup:"],
    "export_trace": ["(5.96x)", "trace events",
                     "engine.triggers_fired"],
}

# Examples that take an output path get one under tmp_path so running
# the suite never litters the working directory.
WRITES_FILE = {"export_trace": "mcf_trace.json"}


def run_example(name, capsys, monkeypatch, tmp_path):
    path = EXAMPLES_DIR / f"{name}.py"
    argv = [str(path)]
    if name in WRITES_FILE:
        argv.append(str(tmp_path / WRITES_FILE[name]))
    monkeypatch.setattr(sys, "argv", argv)
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
        return capsys.readouterr().out
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs_and_tells_its_story(name, capsys, monkeypatch,
                                          tmp_path):
    output = run_example(name, capsys, monkeypatch, tmp_path)
    for expected in CASES[name]:
        assert expected in output, f"{name}: missing {expected!r}"


def test_every_example_is_covered():
    on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(CASES)
