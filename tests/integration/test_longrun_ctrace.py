"""Long-run observability: a run far past the in-memory event cap must
still explain and report from the compressed trace alone.

This is the acceptance scenario for the bounded-memory trace tier: the
in-memory buffer holds a tiny tail window (here 100x+ smaller than the
event stream), every event spills to the ctrace file, and ``explain`` /
``report`` reconstruct activations from the file with a compression
ratio of at least 5x over the JSON Chrome export of the same events.
"""

import json

import pytest

from repro.harness.runner import SuiteRunner
from repro.obs.causality import CausalGraph
from repro.obs.ctrace import CTraceReader
from repro.obs.report import html_report
from repro.obs.timeline import traces_to_chrome
from repro.workloads.suite import SUITE

CAP = 3  # in-memory window; the mcf run emits 100x+ more events


@pytest.fixture(scope="module")
def longrun(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("ctrace") / "longrun.ctrace")
    runner = SuiteRunner(ctrace_out=path, trace_keep="tail",
                         trace_max_events=CAP)
    runner.timed(SUITE["mcf"], "dtt")
    trace = runner.trace_for("mcf", "dtt")
    footer = runner.close_ctrace()
    return path, trace, footer


def test_run_overflows_the_window_100x(longrun):
    path, trace, footer = longrun
    stream = CTraceReader(path).stream("mcf:dtt:smt2")
    assert len(stream) >= 100 * CAP
    assert len(trace.events) == CAP  # the in-memory tail window
    assert trace.dropped == len(stream) - CAP
    assert stream.meta["memory_dropped"] == trace.dropped
    assert stream.meta["drop_policy"] == "tail"
    assert footer["events"] == len(stream)


def test_spilled_stream_is_complete_and_ordered(longrun):
    path, _trace, _footer = longrun
    stream = CTraceReader(path).stream()
    sequences = [event.sequence for event in stream.events]
    assert sequences == list(range(1, len(sequences) + 1))


def test_explain_works_from_the_ctrace_alone(longrun):
    path, _trace, _footer = longrun
    stream = CTraceReader(path).stream()
    graph = CausalGraph.from_trace(stream)
    summary = graph.summary()
    assert summary["activations"] > 0
    first = min(graph.activations)
    lineage = graph.lineage(first)
    assert lineage and lineage[-1].activation_id == first


def test_report_renders_from_the_ctrace_alone(longrun):
    path, _trace, _footer = longrun
    reader = CTraceReader(path)
    html = html_report(ctrace_streams=reader.named_streams())
    assert "mcf:dtt:smt2" in html
    assert "buffer dropped" in html


def test_compression_ratio_is_at_least_5x_over_chrome_json(longrun):
    path, _trace, _footer = longrun
    stream = CTraceReader(path).stream()
    chrome_bytes = len(json.dumps(
        traces_to_chrome([("mcf:dtt:smt2", stream)]),
        indent=1).encode("utf-8"))
    assert stream.compressed_bytes > 0
    assert chrome_bytes / stream.compressed_bytes >= 5.0
