"""Cross-module integration stories.

Each test exercises a pipeline a real user would run: author a program
with the builder, serialize it, execute it functionally and timed, attach
the DTT machinery, profile it, and compare the answers across every path.
"""

import pytest

from repro.core.config import DttConfig
from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry
from repro.core.runtime import DttRuntime
from repro.isa.assembler import format_program, parse_program
from repro.machine.machine import Machine, run_to_completion
from repro.profiling.report import profile_program
from repro.timing.params import named_config
from repro.timing.system import TimingSimulator
from repro.workloads.suite import SUITE

from tests.conftest import build_dtt_sum, expected_dtt_sum


VALUES = [3, 1, 4, 1, 5, 9, 2, 6]
IDX = [0, 2, 2, 5, 7, 0, 3, 2]
VAL = [7, 4, 4, 1, 6, 7, 8, 4]
EXPECTED = expected_dtt_sum(VALUES, IDX, VAL)


def test_assembled_program_runs_identically():
    """builder -> text -> parser -> machine gives the same results."""
    program, spec = build_dtt_sum(VALUES, IDX, VAL)
    reparsed = parse_program(format_program(program)).finalize()
    machine = Machine(reparsed, num_contexts=2)
    machine.attach_engine(DttEngine(ThreadRegistry([spec])))
    assert run_to_completion(machine) == EXPECTED


def test_functional_and_timed_outputs_agree():
    program, spec = build_dtt_sum(VALUES, IDX, VAL)
    functional = Machine(program, num_contexts=2)
    functional.attach_engine(DttEngine(ThreadRegistry([spec])))
    functional_output = run_to_completion(functional)

    program2, spec2 = build_dtt_sum(VALUES, IDX, VAL)
    timed = TimingSimulator(
        program2, named_config("smt2"),
        engine=DttEngine(ThreadRegistry([spec2]), deferred=True),
    ).run()
    assert timed.output == functional_output == EXPECTED


def test_hardware_and_software_dtt_agree():
    """The simulated DTT machine and the Python DttRuntime implement the
    same semantics: same outputs AND same trigger statistics."""
    program, spec = build_dtt_sum(VALUES, IDX, VAL)
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    machine.attach_engine(engine)
    hw_output = run_to_completion(machine)

    rt = DttRuntime()
    xs = rt.array("xs", VALUES)
    derived = {"sum": sum(VALUES)}

    @rt.support_thread(triggers=[xs], per_index_dedupe=False)
    def refresh(event):
        derived["sum"] = sum(xs)

    sw_output = []
    for i, v in zip(IDX, VAL):
        xs[i] = v
        rt.tcheck(refresh)
        sw_output.append(derived["sum"])

    assert hw_output == sw_output == EXPECTED
    hw = engine.status["sumthr"]
    sw = refresh.stats
    assert hw.triggering_stores == sw.triggering_stores
    assert hw.same_value_suppressed == sw.same_value_suppressed
    assert hw.clean_consumes == sw.clean_consumes


def test_profiler_sees_less_redundancy_in_dtt_build():
    """The conversion removes redundant work, so the DTT build's dynamic
    redundant-load fraction drops relative to the baseline."""
    workload = SUITE["mcf"]
    inp = workload.make_input()
    baseline = profile_program(workload.build_baseline(inp), "mcf-baseline")
    build = workload.build_dtt(inp)
    dtt = profile_program(build.program, "mcf-dtt",
                          engine=build.engine(), num_contexts=2)
    assert dtt.output == baseline.output
    assert dtt.instructions < baseline.instructions
    assert (dtt.loads.total_loads < baseline.loads.total_loads)


def test_energy_tracks_instruction_elimination():
    workload = SUITE["gcc"]
    inp = workload.make_input()
    config = named_config("smt2")
    baseline = TimingSimulator(workload.build_baseline(inp), config).run()
    build = workload.build_dtt(inp)
    dtt = TimingSimulator(build.program, named_config("smt2"),
                          engine=build.engine(deferred=True)).run()
    instruction_ratio = dtt.instructions / baseline.instructions
    energy_ratio = dtt.energy / baseline.energy
    assert energy_ratio < 1.0
    assert abs(energy_ratio - instruction_ratio) < 0.3


def test_queue_pressure_never_changes_results():
    for capacity in (1, 2, 4):
        program, spec = build_dtt_sum(VALUES, IDX, VAL)
        machine = Machine(program, num_contexts=2)
        machine.attach_engine(DttEngine(
            ThreadRegistry([spec]),
            config=DttConfig(queue_capacity=capacity),
        ))
        assert run_to_completion(machine) == EXPECTED


def test_machine_reuse_across_workloads():
    """Several workloads can be built and run in one process without any
    shared-state leakage (fresh machines, engines, memories)."""
    outputs = {}
    for name in ("perlbmk", "vpr", "gap"):
        workload = SUITE[name]
        inp = workload.make_input()
        outputs[name] = workload.run_dtt(inp)
    for name, output in outputs.items():
        workload = SUITE[name]
        assert output == workload.reference_output(workload.make_input())


@pytest.mark.parametrize("config_name", ["smt2", "smt4", "cmp2", "serial"])
def test_mcf_speedup_positive_on_every_machine(config_name):
    workload = SUITE["mcf"]
    inp = workload.make_input()
    baseline = TimingSimulator(workload.build_baseline(inp),
                               named_config(config_name)).run()
    build = workload.build_dtt(inp)
    dtt = TimingSimulator(build.program, named_config(config_name),
                          engine=build.engine(deferred=True)).run()
    assert dtt.output == baseline.output
    assert baseline.cycles / dtt.cycles > 3.0
