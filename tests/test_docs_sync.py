"""Generated documentation stays in sync with the code it describes."""

import pathlib
import subprocess
import sys

DOCS = pathlib.Path(__file__).resolve().parents[1] / "docs"
TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools"


def test_isa_reference_is_fresh():
    sys.path.insert(0, str(TOOLS))
    try:
        import gen_isa_reference
        expected = gen_isa_reference.render()
    finally:
        sys.path.pop(0)
    on_disk = (DOCS / "isa_reference.md").read_text()
    assert on_disk == expected, (
        "docs/isa_reference.md is stale; run tools/gen_isa_reference.py"
    )


def test_reference_covers_every_opcode():
    from repro.isa.instructions import OPCODES

    text = (DOCS / "isa_reference.md").read_text()
    missing = [op for op in OPCODES if f"`{op}`" not in text]
    assert not missing, f"opcodes missing from the reference: {missing}"
