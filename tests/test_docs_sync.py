"""Generated documentation stays in sync with the code it describes."""

import pathlib
import subprocess
import sys

DOCS = pathlib.Path(__file__).resolve().parents[1] / "docs"
TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools"


def test_isa_reference_is_fresh():
    sys.path.insert(0, str(TOOLS))
    try:
        import gen_isa_reference
        expected = gen_isa_reference.render()
    finally:
        sys.path.pop(0)
    on_disk = (DOCS / "isa_reference.md").read_text()
    assert on_disk == expected, (
        "docs/isa_reference.md is stale; run tools/gen_isa_reference.py"
    )


def test_reference_covers_every_opcode():
    from repro.isa.instructions import OPCODES

    text = (DOCS / "isa_reference.md").read_text()
    missing = [op for op in OPCODES if f"`{op}`" not in text]
    assert not missing, f"opcodes missing from the reference: {missing}"


def test_architecture_documents_every_check_code():
    """The Static Analysis check catalog must list every analyzer and
    linter code, so a new check cannot ship undocumented."""
    from repro.analysis.checks import CHECKS
    from repro.isa.lint import CODES

    text = (DOCS / "architecture.md").read_text()
    missing = [code for code in list(CHECKS) + list(CODES)
               if f"`{code}`" not in text]
    assert not missing, (
        f"check codes missing from docs/architecture.md: {missing}"
    )


def test_architecture_documents_symbolic_analysis():
    """The symbolic parameterized-analysis subsection must exist, name
    every overlap verdict, and carry the check-version fingerprint
    format, so the v2 race-check semantics cannot drift undocumented."""
    from repro.analysis.checks import CHECK_VERSIONS
    from repro.analysis.symbolic import ALL, NONE, SOME, UNKNOWN

    text = (DOCS / "architecture.md").read_text()
    assert "### Symbolic parameterized analysis" in text
    missing = [v for v in sorted({ALL, NONE, SOME, UNKNOWN})
               if f"`{v}`" not in text]
    missing += [f"{code}.v{version}"
                for code, version in sorted(CHECK_VERSIONS.items())
                if version > 1 and f"(v{version})" not in text]
    assert not missing, (
        f"symbolic surfaces missing from docs/architecture.md: {missing}"
    )


def test_architecture_documents_every_rejection_reason():
    """The Automatic conversion section must document every way the
    acceptance gate can reject a candidate."""
    from repro.autoconvert.gate import REJECTION_REASONS

    text = (DOCS / "architecture.md").read_text()
    missing = [reason for reason in REJECTION_REASONS
               if f"`{reason}`" not in text]
    assert not missing, (
        f"rejection reasons missing from docs/architecture.md: {missing}"
    )


def test_architecture_documents_superblock_tier():
    """The Performance section's superblock subsection must name every
    block-formation boundary opcode and every code-cache counter, so the
    formation rules and the obs surface cannot drift undocumented."""
    from repro.machine.superblock import BOUNDARY_OPCODES, cache_stats

    text = (DOCS / "architecture.md").read_text()
    assert "### Superblock tier" in text
    missing = [op for op in sorted(BOUNDARY_OPCODES)
               if f"`{op}`" not in text]
    missing += [key for key in sorted(cache_stats())
                if f"`{key}`" not in text]
    assert not missing, (
        f"superblock surfaces missing from docs/architecture.md: {missing}"
    )


def test_architecture_documents_every_trend_verdict():
    """The Performance observatory section must catalog every verdict
    the trend analyzer can emit, so a new verdict cannot ship silently."""
    from repro.obs.trends import VERDICTS

    text = (DOCS / "architecture.md").read_text()
    missing = [code for code in VERDICTS if f"`{code}`" not in text]
    assert not missing, (
        f"trend verdicts missing from docs/architecture.md: {missing}"
    )
