"""DttConfig validation."""

import pytest

from repro.core.config import DttConfig
from repro.errors import DttError


def test_defaults_match_paper_base_design():
    config = DttConfig()
    assert config.same_value_filter is True
    assert config.granularity == 1
    assert config.allow_cascading is False
    assert config.per_address_dedupe_default is True


def test_granularity_must_be_positive():
    with pytest.raises(DttError):
        DttConfig(granularity=0)


def test_queue_capacity_must_be_positive():
    with pytest.raises(DttError):
        DttConfig(queue_capacity=0)


def test_strict_cascading_conflicts_with_allow():
    with pytest.raises(DttError):
        DttConfig(allow_cascading=True, strict_cascading=True)


def test_strict_without_allow_is_fine():
    assert DttConfig(strict_cascading=True).strict_cascading
