"""Thread status table: counters, aggregates, skip fraction."""

import pytest

from repro.core.status import ThreadStatus, ThreadStatusTable
from repro.errors import DttError


def test_fresh_row_is_zeroed():
    row = ThreadStatus("t")
    assert row.triggers_fired == 0
    assert row.executing == 0
    assert row.skip_fraction == 0.0


def test_skip_fraction():
    row = ThreadStatus("t")
    row.consumes = 10
    row.clean_consumes = 7
    assert row.skip_fraction == 0.7


def test_as_dict_excludes_name():
    d = ThreadStatus("t").as_dict()
    assert "name" not in d
    assert d["cancels"] == 0


def test_table_lookup_and_membership():
    table = ThreadStatusTable(["a", "b"])
    assert table["a"].name == "a"
    assert "b" in table
    assert "c" not in table
    with pytest.raises(DttError):
        table["c"]


def test_table_iteration_and_rows():
    table = ThreadStatusTable(["a", "b"])
    assert {row.name for row in table} == {"a", "b"}
    assert set(table.rows()) == {"a", "b"}


def test_totals_and_summary():
    table = ThreadStatusTable(["a", "b"])
    table["a"].triggers_fired = 3
    table["b"].triggers_fired = 4
    table["a"].clean_consumes = 1
    assert table.total("triggers_fired") == 7
    summary = table.summary()
    assert summary["triggers_fired"] == 7
    assert summary["clean_consumes"] == 1
    assert "executing" not in summary  # transient state is not a total
