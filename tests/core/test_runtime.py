"""Software DTT runtime: tracked arrays, support threads, tcheck semantics.

Ends with a property test checking the runtime's core contract against an
eager-recomputation oracle over random write/consume schedules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.runtime import DttRuntime, TrackedArray, TriggerEvent
from repro.errors import RuntimeApiError


def make_sum_runtime(values=(1, 2, 3), **runtime_kwargs):
    rt = DttRuntime(**runtime_kwargs)
    xs = rt.array("xs", list(values))
    totals = {"sum": sum(values)}

    @rt.support_thread(triggers=[xs], per_index_dedupe=False)
    def refresh(event):
        totals["sum"] = sum(xs)

    return rt, xs, refresh, totals


def test_tracked_array_behaves_like_a_list():
    rt = DttRuntime()
    xs = rt.array("xs", [1, 2, 3])
    assert len(xs) == 3
    assert xs[1] == 2
    assert list(xs) == [1, 2, 3]
    assert xs.tolist() == [1, 2, 3]


def test_duplicate_array_name_rejected():
    rt = DttRuntime()
    rt.array("xs", [])
    with pytest.raises(RuntimeApiError):
        rt.array("xs", [])


def test_slice_assignment_rejected():
    rt = DttRuntime()
    xs = rt.array("xs", [1, 2, 3])
    with pytest.raises(RuntimeApiError):
        xs[0:2] = [9, 9]


def test_silent_write_fires_nothing():
    rt, xs, refresh, totals = make_sum_runtime()
    xs[0] = 1  # same value
    assert rt.pending_count() == 0
    assert refresh.stats.same_value_suppressed == 1
    assert rt.tcheck(refresh) == 0
    assert refresh.stats.clean_consumes == 1


def test_changing_write_defers_until_tcheck():
    rt, xs, refresh, totals = make_sum_runtime()
    xs[0] = 10
    assert totals["sum"] == 6  # not yet recomputed (lazy)
    assert rt.pending_count() == 1
    assert rt.tcheck(refresh) == 1
    assert totals["sum"] == 15


def test_negative_index_writes_normalize():
    rt, xs, refresh, totals = make_sum_runtime()
    xs[-1] = 30
    rt.tcheck(refresh)
    assert totals["sum"] == 1 + 2 + 30


def test_write_untracked_never_triggers():
    rt, xs, refresh, totals = make_sum_runtime()
    xs.write_untracked(0, 100)
    assert rt.pending_count() == 0
    assert refresh.stats.triggering_stores == 0


def test_untracked_scope():
    rt, xs, refresh, totals = make_sum_runtime()
    with rt.untracked():
        xs[0] = 50
        xs[1] = 60
    assert rt.pending_count() == 0
    xs[2] = 70  # tracking restored
    assert rt.pending_count() == 1


def test_per_thread_dedupe_collapses_writes():
    rt, xs, refresh, totals = make_sum_runtime()
    xs[0] = 10
    xs[1] = 20
    assert rt.pending_count() == 1  # per_index_dedupe=False
    rt.tcheck(refresh)
    assert refresh.stats.duplicates_suppressed == 1
    assert totals["sum"] == 10 + 20 + 3


def test_per_index_dedupe_queues_separately():
    rt = DttRuntime()
    xs = rt.array("xs", [0, 0])
    seen = []

    @rt.support_thread(triggers=[xs])  # per_index_dedupe=True default
    def track(event):
        seen.append((event.index, event.new_value))

    xs[0] = 1
    xs[1] = 2
    xs[0] = 3  # same index as first: suppressed as duplicate
    assert rt.pending_count() == 2
    rt.tcheck(track)
    assert seen == [(0, 1), (1, 2)]
    # the first activation observed the OLD event payload but current data
    # is read through the array, which holds 3
    assert xs[0] == 3


def test_event_payload():
    rt = DttRuntime()
    xs = rt.array("xs", [5])
    events = []

    @rt.support_thread(triggers=[xs])
    def grab(event):
        events.append(event)

    xs[0] = 9
    rt.tcheck(grab)
    event = events[0]
    assert isinstance(event, TriggerEvent)
    assert event.array is xs
    assert event.index == 0
    assert event.old_value == 5
    assert event.new_value == 9
    assert "xs" in repr(event)


def test_writes_inside_support_thread_do_not_cascade():
    rt = DttRuntime()
    xs = rt.array("xs", [0])
    ys = rt.array("ys", [0])
    calls = {"a": 0, "b": 0}

    @rt.support_thread(triggers=[xs], name="a")
    def thread_a(event):
        calls["a"] += 1
        ys[0] = ys[0] + 1  # would trigger b if cascading were allowed

    @rt.support_thread(triggers=[ys], name="b")
    def thread_b(event):
        calls["b"] += 1

    xs[0] = 1
    rt.tcheck(thread_a)
    rt.tcheck(thread_b)
    assert calls == {"a": 1, "b": 0}


def test_cascading_enabled():
    rt = DttRuntime(allow_cascading=True)
    xs = rt.array("xs", [0])
    ys = rt.array("ys", [0])
    calls = {"b": 0}

    @rt.support_thread(triggers=[xs], name="a")
    def thread_a(event):
        ys[0] = ys[0] + 1

    @rt.support_thread(triggers=[ys], name="b")
    def thread_b(event):
        calls["b"] += 1

    xs[0] = 1
    rt.tcheck(thread_a)
    rt.tcheck(thread_b)
    assert calls["b"] == 1


def test_queue_overflow_executes_immediately():
    rt = DttRuntime(queue_capacity=1)
    xs = rt.array("xs", [0, 0, 0])
    order = []

    @rt.support_thread(triggers=[xs])
    def track(event):
        order.append(event.index)

    xs[0] = 1  # queued
    xs[1] = 2  # overflow -> runs now
    xs[2] = 3  # overflow -> runs now
    assert order == [1, 2]
    assert track.stats.overflow_inline_runs == 2
    rt.tcheck(track)
    assert order == [1, 2, 0]


def test_drain_runs_everything():
    rt = DttRuntime()
    xs = rt.array("xs", [0, 0])
    hit = []

    @rt.support_thread(triggers=[xs])
    def track(event):
        hit.append(event.index)

    xs[0] = 1
    xs[1] = 2
    assert rt.drain() == 2
    assert sorted(hit) == [0, 1]
    assert rt.pending_count() == 0


def test_support_thread_validation():
    rt = DttRuntime()
    xs = rt.array("xs", [0])
    with pytest.raises(RuntimeApiError):
        rt.support_thread(triggers=[])(lambda e: None)
    with pytest.raises(RuntimeApiError):
        rt.support_thread(triggers=["xs"])(lambda e: None)
    other = DttRuntime().array("xs2", [0])
    with pytest.raises(RuntimeApiError):
        rt.support_thread(triggers=[other])(lambda e: None)


def test_duplicate_thread_name_rejected():
    rt = DttRuntime()
    xs = rt.array("xs", [0])
    rt.support_thread(triggers=[xs], name="t")(lambda e: None)
    with pytest.raises(RuntimeApiError):
        rt.support_thread(triggers=[xs], name="t")(lambda e: None)


def test_tcheck_of_foreign_thread_rejected():
    rt = DttRuntime()
    xs = rt.array("xs", [0])
    thread = rt.support_thread(triggers=[xs])(lambda e: None)
    other = DttRuntime()
    with pytest.raises(RuntimeApiError):
        other.tcheck(thread)


def test_direct_call_bypasses_machinery():
    rt = DttRuntime()
    xs = rt.array("xs", [0])
    hit = []
    thread = rt.support_thread(triggers=[xs])(lambda e: hit.append(e))
    thread(TriggerEvent(xs, 0, 0, 1))
    assert len(hit) == 1
    assert thread.stats.executions_started == 0  # direct call, not tracked


def test_invalid_capacity_rejected():
    with pytest.raises(RuntimeApiError):
        DttRuntime(queue_capacity=0)


# -- property: runtime result == eager-recompute oracle --------------------------


@given(st.lists(st.one_of(
    st.tuples(st.just("write"), st.integers(0, 4), st.integers(0, 3)),
    st.just(("tcheck",)),
), max_size=60))
@settings(max_examples=80, deadline=None)
def test_runtime_matches_eager_oracle(script):
    rt = DttRuntime()
    xs = rt.array("xs", [0] * 5)
    derived = {"sum": 0}

    @rt.support_thread(triggers=[xs], per_index_dedupe=False)
    def refresh(event):
        derived["sum"] = sum(xs)

    oracle = [0] * 5
    observed = []
    expected = []
    for step in script:
        if step[0] == "write":
            _tag, index, value = step
            xs[index] = value
            oracle[index] = value
        else:
            rt.tcheck(refresh)
            observed.append(derived["sum"])
            expected.append(sum(oracle))
    assert observed == expected
    # skip accounting: clean consumes never exceed total consumes
    stats = refresh.stats
    assert stats.clean_consumes + stats.wait_consumes == stats.consumes
