"""Thread queue: FIFO order, dedupe, capacity, plus property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.queue import EnqueueResult, QueueEntry, ThreadQueue
from repro.errors import ThreadQueueError


def entry(thread="t", address=0, seq=0):
    return QueueEntry(thread, address, 1, 0, seq)


def test_capacity_must_be_positive():
    with pytest.raises(ThreadQueueError):
        ThreadQueue(0)


def test_enqueue_and_pop_fifo():
    q = ThreadQueue()
    q.try_enqueue("a", entry(address=1, seq=1))
    q.try_enqueue("b", entry(address=2, seq=2))
    assert q.pop()[1].sequence == 1
    assert q.pop()[1].sequence == 2


def test_duplicate_key_suppressed():
    q = ThreadQueue()
    assert q.try_enqueue("k", entry(seq=1)) is EnqueueResult.ENQUEUED
    assert q.try_enqueue("k", entry(seq=2)) is EnqueueResult.DUPLICATE
    assert q.duplicates_suppressed == 1
    assert len(q) == 1
    # the FIRST entry is kept (its pending execution sees newest memory)
    assert q.pop()[1].sequence == 1


def test_overflow_reported():
    q = ThreadQueue(capacity=2)
    q.try_enqueue("a", entry())
    q.try_enqueue("b", entry())
    assert q.try_enqueue("c", entry()) is EnqueueResult.OVERFLOW
    assert q.overflows == 1
    assert len(q) == 2


def test_key_free_after_pop():
    q = ThreadQueue()
    q.try_enqueue("k", entry(seq=1))
    q.pop()
    assert q.try_enqueue("k", entry(seq=2)) is EnqueueResult.ENQUEUED


def test_pop_empty_raises():
    with pytest.raises(ThreadQueueError):
        ThreadQueue().pop()


def test_pop_for_thread_picks_oldest_of_that_thread():
    q = ThreadQueue()
    q.try_enqueue("x1", QueueEntry("x", 1, 0, 0, 1))
    q.try_enqueue("y1", QueueEntry("y", 2, 0, 0, 2))
    q.try_enqueue("x2", QueueEntry("x", 3, 0, 0, 3))
    key, popped = q.pop_for_thread("x")
    assert popped.sequence == 1
    key, popped = q.pop_for_thread("x")
    assert popped.sequence == 3
    assert q.pop_for_thread("x") is None
    assert q.has_pending("y")


def test_pending_counts():
    q = ThreadQueue()
    q.try_enqueue("x1", QueueEntry("x", 1, 0, 0))
    q.try_enqueue("y1", QueueEntry("y", 2, 0, 0))
    assert q.pending_count() == 2
    assert q.pending_count("x") == 1
    assert q.pending_count("z") == 0
    assert bool(q)


def test_peek_keys_oldest_first():
    q = ThreadQueue()
    q.try_enqueue("b", entry(seq=1))
    q.try_enqueue("a", entry(seq=2))
    assert q.peek_keys() == ("b", "a")


@given(st.lists(st.tuples(st.sampled_from("abcd"), st.integers(0, 3)),
                max_size=100))
@settings(max_examples=60, deadline=None)
def test_queue_invariants_under_random_traffic(events):
    q = ThreadQueue(capacity=4)
    live_keys = set()
    for thread, address in events:
        key = (thread, address)
        result = q.try_enqueue(key, QueueEntry(thread, address, 1, 0))
        if result is EnqueueResult.ENQUEUED:
            assert key not in live_keys
            live_keys.add(key)
        elif result is EnqueueResult.DUPLICATE:
            assert key in live_keys
        else:
            assert len(live_keys) == 4
        # occasional pop to keep things moving
        if len(live_keys) == 4:
            popped_key, _ = q.pop()
            live_keys.discard(popped_key)
    assert set(q.peek_keys()) == live_keys
    assert len(q) <= q.capacity
    assert q.enqueued == q.pending_count() + (q.enqueued - len(q))
