"""Trigger prefilter: the engine's may-match index must be invisible.

The engine consults a frozen :class:`TriggerPrefilter` before walking the
registry on every triggering store.  These tests pin the equivalence
("prefilter says no" ⟺ "matches() is empty") across granularities and
overlapping watch ranges, the staleness protocol (a spec registered
mid-run must fire), the cascading path, and the ``unmatched_tstores``
accounting on the prefilter's fast-reject branch.
"""

import pytest

from repro.core.config import DttConfig
from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry, TriggerPrefilter, TriggerSpec
from repro.core.status import ThreadStatusTable
from repro.isa.builder import ProgramBuilder
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion

from tests.core.test_engine import _cascade_program


# -- the frozen index itself ------------------------------------------------------


def test_build_prefilter_coalesces_overlapping_ranges():
    registry = ThreadRegistry([
        TriggerSpec("a", watch=[(0, 10)]),
        TriggerSpec("b", watch=[(5, 15)]),
        TriggerSpec("c", watch=[(20, 30)]),
    ])
    prefilter = registry.build_prefilter()
    assert prefilter.ranges == ((0, 15), (20, 30))
    assert prefilter.store_pcs == frozenset()


def test_build_prefilter_widens_ranges_to_granularity():
    registry = ThreadRegistry([TriggerSpec("a", watch=[(3, 5)])])
    prefilter = registry.build_prefilter(granularity=4)
    assert prefilter.ranges == ((0, 8),)
    assert prefilter.may_match(99, 0)  # widened-in false neighbor
    assert not prefilter.may_match(99, 8)


def test_prefilter_records_registry_version():
    registry = ThreadRegistry([TriggerSpec("a", store_pcs=[7])])
    stale = registry.build_prefilter()
    assert stale.version == registry.version
    registry.register(TriggerSpec("b", store_pcs=[9]))
    assert registry.version > stale.version  # holder can detect staleness
    fresh = registry.build_prefilter()
    assert fresh.may_match(9, 0)
    assert not stale.may_match(9, 0)


@pytest.mark.parametrize("granularity", [1, 2, 4, 8])
def test_may_match_equals_matches_nonempty(granularity):
    # mixed PC- and address-attached specs with overlap and odd alignment
    registry = ThreadRegistry([
        TriggerSpec("pc_only", store_pcs=[3, 17]),
        TriggerSpec("low", watch=[(5, 9)]),
        TriggerSpec("mid", watch=[(8, 13), (30, 31)]),
        TriggerSpec("both", store_pcs=[11], watch=[(21, 26)]),
    ])
    prefilter = registry.build_prefilter(granularity)
    for pc in range(0, 20):
        for address in range(0, 40):
            assert prefilter.may_match(pc, address) == bool(
                registry.matches(pc, address, granularity)
            ), (pc, address, granularity)


# -- the engine's use of it -------------------------------------------------------


def _two_tst_machine(registry):
    """main: tst xs[0]=1 at pc_a, then tst xs[1]=2 at pc_b, halt.

    Declares two support threads so a spec for the second one can be
    registered while the machine is already running.
    """
    b = ProgramBuilder()
    b.data("xs", [0, 0])
    b.zeros("seen", 1)
    for name in ("watcher", "late"):
        with b.thread(name):
            with b.scratch(2) as (p, v):
                b.la(p, "seen")
                b.ld(v, p, 0)
                b.addi(v, v, 1)
                b.st(v, p, 0)
            b.treturn()
    pcs = {}
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 1)
            pcs["a"] = b.tst(v, base, 0)
            b.li(v, 2)
            pcs["b"] = b.tst(v, base, 1)
        b.tcheck_thread("watcher")
        b.tcheck_thread("late")
        b.halt()
    program = b.build()
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(registry)
    machine.attach_engine(engine)
    return machine, engine, pcs


def test_prefilter_reject_branch_counts_unmatched():
    b = ProgramBuilder()
    b.data("xs", [0, 0])
    with b.thread("watcher"):
        b.treturn()
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 1)
            b.tst(v, base, 0)  # watched: fires
            b.li(v, 2)
            b.tst(v, base, 1)  # one word past the range: prefilter rejects
        b.halt()
    program = b.build()
    lo = program.address_of("xs")
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([
        TriggerSpec("watcher", watch=[(lo, lo + 1)])
    ]))
    machine.attach_engine(engine)
    run_to_completion(machine)
    assert engine.unmatched_tstores == 1
    assert engine.status["watcher"].triggering_stores == 1
    # the reject came from the prefilter, not the registry walk
    assert not engine._prefilter.may_match(-1, lo + 1)
    assert engine._prefilter.may_match(-1, lo)


def test_spec_registered_mid_run_fires():
    # Start with only pc_a attached.  After the first store has primed the
    # engine's cached prefilter, a software runtime registers a second
    # spec; the version bump must force a rebuild so pc_b still fires.
    registry = ThreadRegistry([TriggerSpec("watcher", store_pcs=[-1])])
    machine, engine, pcs = _two_tst_machine(registry)
    main = machine.main_context
    while main.pc <= pcs["a"]:
        machine.step(main)
    assert engine.unmatched_tstores == 1  # pc_a matched nothing
    primed = engine._prefilter
    assert primed is not None and not primed.may_match(pcs["b"], 0)
    registry.register(TriggerSpec("late", store_pcs=[pcs["b"]]))
    # a runtime that registers specs also refreshes the status table
    engine.status = ThreadStatusTable(registry.thread_names)
    while main.state is ContextState.RUNNING:
        machine.step(main)
    assert engine._prefilter is not primed  # rebuilt on version bump
    assert engine.status["late"].triggers_fired == 1
    assert machine.memory.load(machine.program.address_of("seen")) == 1


def test_overlapping_ranges_still_fire_every_spec():
    # coalescing ranges in the prefilter must not merge *specs*: a store
    # into the overlap fires both threads, exactly as matches() says
    b = ProgramBuilder()
    b.data("xs", [0, 0, 0])
    b.zeros("hits", 2)
    for name, slot in (("first", 0), ("second", 1)):
        with b.thread(name):
            with b.scratch(2) as (p, v):
                b.la(p, "hits")
                b.ld(v, p, slot)
                b.addi(v, v, 1)
                b.st(v, p, slot)
            b.treturn()
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 9)
            b.tst(v, base, 1)  # inside both watch ranges
        b.tcheck_thread("first")
        b.tcheck_thread("second")
        b.halt()
    program = b.build()
    lo = program.address_of("xs")
    registry = ThreadRegistry([
        TriggerSpec("first", watch=[(lo, lo + 2)]),
        TriggerSpec("second", watch=[(lo + 1, lo + 3)]),
    ])
    machine = Machine(program, num_contexts=3)
    engine = DttEngine(registry)
    machine.attach_engine(engine)
    run_to_completion(machine)
    assert engine._prefilter.ranges == ((lo, lo + 3),)  # coalesced
    hits = program.address_of("hits")
    assert machine.memory.load_range(hits, 2) == [1, 1]  # both fired
    assert engine.status["first"].triggers_fired == 1
    assert engine.status["second"].triggers_fired == 1
    assert registry.matches(-1, lo + 1) == list(registry.specs)


def test_cascading_store_goes_through_prefilter():
    program, specs = _cascade_program()
    machine = Machine(program, num_contexts=3)
    engine = DttEngine(ThreadRegistry(specs),
                       config=DttConfig(allow_cascading=True))
    machine.attach_engine(engine)
    assert run_to_completion(machine) == [7, 107]
    # the support thread's cascading tst took the same prefilter path
    assert engine._prefilter is not None
    assert engine.status["b"].executions_completed == 1
    assert engine.unmatched_tstores == 0
