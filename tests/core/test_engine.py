"""DttEngine semantics: the heart of the reproduction.

Covers the same-value filter, duplicate suppression, cancel-and-restart,
queue-overflow inline runs, the serialized (no-spare-context) fallback,
cascading-trigger policy, consume-point accounting, and engine lifecycle.
"""

import pytest

from repro.core.config import DttConfig
from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.errors import CascadeError, DttError, RegistryError
from repro.isa.builder import ProgramBuilder
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion

from tests.conftest import build_dtt_sum, expected_dtt_sum


def make_sum_machine(values, upd_idx, upd_val, num_contexts=2, config=None,
                     deferred=False, per_address=False):
    program, spec = build_dtt_sum(list(values), list(upd_idx), list(upd_val))
    if per_address:
        spec = TriggerSpec("sumthr", store_pcs=spec.store_pcs,
                           per_address_dedupe=True)
    machine = Machine(program, num_contexts=num_contexts)
    engine = DttEngine(ThreadRegistry([spec]), config=config,
                       deferred=deferred)
    machine.attach_engine(engine)
    return machine, engine


def drive_deferred(machine, engine, max_iterations=100_000):
    """Minimal functional driver for a deferred-mode engine."""
    main = machine.main_context
    for _ in range(max_iterations):
        if main.state is ContextState.HALTED:
            return machine.output
        engine.dispatch_pending()
        stepped = False
        for ctx in machine.contexts:
            if ctx.state is ContextState.RUNNING:
                machine.step(ctx)
                stepped = True
        if not stepped and not engine.queue:
            raise AssertionError("deadlock in test driver")
    raise AssertionError("driver iteration limit")


# -- output equivalence across modes ---------------------------------------------


VALUES = [1, 2, 3, 4]
IDX = [0, 1, 1, 2, 0, 3]
VAL = [5, 2, 9, 3, 5, 4]
EXPECTED = expected_dtt_sum(VALUES, IDX, VAL)


def test_synchronous_two_contexts():
    machine, engine = make_sum_machine(VALUES, IDX, VAL)
    assert run_to_completion(machine) == EXPECTED


def test_synchronous_single_context_inline():
    machine, engine = make_sum_machine(VALUES, IDX, VAL, num_contexts=1)
    assert run_to_completion(machine) == EXPECTED


def test_deferred_two_contexts():
    machine, engine = make_sum_machine(VALUES, IDX, VAL, deferred=True)
    assert drive_deferred(machine, engine) == EXPECTED


def test_deferred_single_context_inline():
    machine, engine = make_sum_machine(VALUES, IDX, VAL, num_contexts=1,
                                       deferred=True)
    assert drive_deferred(machine, engine) == EXPECTED


def test_all_modes_agree_on_stats():
    results = []
    for kwargs in (dict(), dict(num_contexts=1),
                   dict(deferred=True), dict(num_contexts=1, deferred=True)):
        machine, engine = make_sum_machine(VALUES, IDX, VAL, **kwargs)
        if engine.deferred:
            drive_deferred(machine, engine)
        else:
            run_to_completion(machine)
        row = engine.status["sumthr"]
        results.append((row.triggering_stores, row.same_value_suppressed,
                        row.triggers_fired, row.executions_completed))
    assert len(set(results)) == 1


# -- the same-value filter -----------------------------------------------------------


def test_silent_stores_fire_nothing():
    # write the initial values back: everything is silent
    machine, engine = make_sum_machine([7, 8], [0, 1, 0], [7, 8, 7])
    run_to_completion(machine)
    row = engine.status["sumthr"]
    assert row.triggering_stores == 3
    assert row.same_value_suppressed == 3
    assert row.triggers_fired == 0
    assert row.executions_completed == 0
    assert row.clean_consumes == 3


def test_changing_stores_fire():
    machine, engine = make_sum_machine([7, 8], [0, 1], [1, 2])
    assert run_to_completion(machine) == [1 + 8, 1 + 2]
    row = engine.status["sumthr"]
    assert row.triggers_fired == 2
    assert row.executions_completed == 2
    assert row.clean_consumes == 0


def test_filter_disabled_fires_on_every_tstore():
    config = DttConfig(same_value_filter=False)
    machine, engine = make_sum_machine([7, 8], [0, 1, 0], [7, 8, 7],
                                       config=config)
    run_to_completion(machine)
    row = engine.status["sumthr"]
    assert row.same_value_suppressed == 0
    assert row.triggers_fired == 3
    assert row.executions_completed == 3


# -- duplicate suppression ----------------------------------------------------------


def _burst_program(per_address):
    """Two value-changing tstores before a single tcheck."""
    b = ProgramBuilder()
    b.data("xs", [0, 0])
    b.zeros("sum", 1)
    with b.thread("sumthr"):
        with b.scratch(3) as (base, acc, v):
            b.la(base, "xs")
            b.ld(acc, base, 0)
            b.ld(v, base, 1)
            b.add(acc, acc, v)
            with b.scratch(1) as (sp,):
                b.la(sp, "sum")
                b.st(acc, sp, 0)
        b.treturn()
    pcs = []
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 5)
            pcs.append(b.tst(v, base, 0))
            b.li(v, 6)
            pcs.append(b.tst(v, base, 1))
        b.tcheck_thread("sumthr")
        with b.scratch(2) as (sp, v):
            b.la(sp, "sum")
            b.ld(v, sp, 0)
            b.out(v)
        b.halt()
    program = b.build()
    spec = TriggerSpec("sumthr", store_pcs=pcs,
                       per_address_dedupe=per_address)
    return program, spec


def test_per_thread_dedupe_collapses_burst():
    program, spec = _burst_program(per_address=False)
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    machine.attach_engine(engine)
    assert run_to_completion(machine) == [11]
    row = engine.status["sumthr"]
    assert row.triggers_fired == 2
    assert row.duplicates_suppressed == 1
    assert row.executions_completed == 1


def test_per_address_dedupe_keeps_both():
    program, spec = _burst_program(per_address=True)
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    machine.attach_engine(engine)
    assert run_to_completion(machine) == [11]
    row = engine.status["sumthr"]
    assert row.duplicates_suppressed == 0
    assert row.executions_completed == 2


# -- cancel-and-restart ---------------------------------------------------------------


def test_retrigger_cancels_executing_thread():
    program, spec = _burst_program(per_address=False)
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]), deferred=True)
    machine.attach_engine(engine)
    main = machine.main_context
    # step main through the first triggering store
    while engine.queue.pending_count() == 0:
        machine.step(main)
    # dispatch it and let the support thread begin
    engine.dispatch_pending()
    support = machine.contexts[1]
    assert support.state is ContextState.RUNNING
    machine.step(support)
    # second triggering store: same dedupe key while executing -> cancel
    while engine.status["sumthr"].cancels == 0:
        machine.step(main)
    assert support.state is ContextState.IDLE
    assert engine.queue.pending_count("sumthr") == 1  # re-enqueued
    # finish the run; result must still be correct (thread is idempotent)
    assert drive_deferred(machine, engine) == [11]
    row = engine.status["sumthr"]
    assert row.cancels == 1
    assert row.executions_completed == row.executions_started - 1


# -- queue overflow -----------------------------------------------------------------


def test_overflow_runs_inline_and_stays_correct():
    # three value-changing per-address triggers against a capacity-1 queue
    b = ProgramBuilder()
    b.data("xs", [0, 0, 0])
    b.zeros("sum", 1)
    with b.thread("sumthr"):
        with b.scratch(4) as (i, base, acc, v):
            b.la(base, "xs")
            b.li(acc, 0)
            with b.for_range(i, 0, 3):
                b.ldx(v, base, i)
                b.add(acc, acc, v)
            with b.scratch(1) as (sp,):
                b.la(sp, "sum")
                b.st(acc, sp, 0)
        b.treturn()
    pcs = []
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            for i, value in enumerate((5, 6, 7)):
                b.li(v, value)
                pcs.append(b.tst(v, base, i))
        b.tcheck_thread("sumthr")
        with b.scratch(2) as (sp, v):
            b.la(sp, "sum")
            b.ld(v, sp, 0)
            b.out(v)
        b.halt()
    program = b.build()
    spec = TriggerSpec("sumthr", store_pcs=pcs, per_address_dedupe=True)
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]),
                       config=DttConfig(queue_capacity=1))
    machine.attach_engine(engine)
    assert run_to_completion(machine) == [18]
    row = engine.status["sumthr"]
    assert row.overflow_inline_runs == 2
    assert row.executions_completed == 3  # 2 inline + 1 at tcheck


# -- cascading ------------------------------------------------------------------------


def _cascade_program():
    """Thread 'a' performs a triggering store that matches thread 'b'."""
    b = ProgramBuilder()
    b.data("xs", [0])
    b.data("ys", [0])
    b.zeros("out_a", 1)
    b.zeros("out_b", 1)
    pcs = {}
    with b.thread("a"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            with b.scratch(1) as (oa,):
                b.la(oa, "out_a")
                b.st(v, oa, 0)
            # triggering store into ys — thread b's watched data
            b.la(base, "ys")
            b.addi(v, v, 100)
            pcs["cascade"] = b.tst(v, base, 0)
        b.treturn()
    with b.thread("b"):
        with b.scratch(2) as (base, v):
            b.la(base, "ys")
            b.ld(v, base, 0)
            with b.scratch(1) as (ob,):
                b.la(ob, "out_b")
                b.st(v, ob, 0)
        b.treturn()
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 7)
            pcs["main"] = b.tst(v, base, 0)
        b.tcheck_thread("a")
        b.tcheck_thread("b")
        with b.scratch(2) as (p, v):
            b.la(p, "out_a")
            b.ld(v, p, 0)
            b.out(v)
            b.la(p, "out_b")
            b.ld(v, p, 0)
            b.out(v)
        b.halt()
    program = b.build()
    spec_a = TriggerSpec("a", store_pcs=[pcs["main"]])
    spec_b = TriggerSpec("b", store_pcs=[pcs["cascade"]])
    return program, [spec_a, spec_b]


def test_cascading_disabled_by_default():
    program, specs = _cascade_program()
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry(specs))
    machine.attach_engine(engine)
    # thread a runs (writes ys=107 as a PLAIN store); b never fires
    assert run_to_completion(machine) == [7, 0]
    assert engine.status["b"].triggers_fired == 0


def test_cascading_enabled_fires_downstream_thread():
    program, specs = _cascade_program()
    machine = Machine(program, num_contexts=3)
    engine = DttEngine(ThreadRegistry(specs),
                       config=DttConfig(allow_cascading=True))
    machine.attach_engine(engine)
    assert run_to_completion(machine) == [7, 107]
    assert engine.status["b"].executions_completed == 1


def test_strict_cascading_faults():
    program, specs = _cascade_program()
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry(specs),
                       config=DttConfig(strict_cascading=True))
    machine.attach_engine(engine)
    with pytest.raises(CascadeError):
        run_to_completion(machine)


# -- accounting and lifecycle -----------------------------------------------------------


def test_unmatched_tstores_counted():
    b = ProgramBuilder()
    b.data("xs", [0])
    with b.thread("never"):
        b.treturn()
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 1)
            b.tst(v, base, 0)  # matches no spec
        b.halt()
    program = b.build()
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([TriggerSpec("never", store_pcs=[999])]))
    machine.attach_engine(engine)
    run_to_completion(machine)
    assert engine.unmatched_tstores == 1


def test_bind_rejects_undeclared_thread():
    program, _spec = build_dtt_sum([1], [0], [1])
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([TriggerSpec("ghost", store_pcs=[0])]))
    with pytest.raises(RegistryError, match="ghost"):
        machine.attach_engine(engine)


def test_engine_is_single_use():
    program, spec = build_dtt_sum([1], [0], [1])
    engine = DttEngine(ThreadRegistry([spec]))
    Machine(program, num_contexts=2).attach_engine(engine)
    with pytest.raises(DttError, match="already bound"):
        Machine(program, num_contexts=2).attach_engine(engine)


def test_tcheck_out_of_range_tid_faults():
    b = ProgramBuilder()
    b.data("xs", [0])
    with b.thread("only"):
        b.treturn()
    with b.function("main"):
        b.tcheck(5)  # only thread id 0 exists
        b.halt()
    program = b.build()
    machine = Machine(program, num_contexts=2)
    spec = TriggerSpec("only", store_pcs=[0])
    machine.attach_engine(DttEngine(ThreadRegistry([spec])))
    with pytest.raises(DttError, match="thread id 5"):
        run_to_completion(machine)


def test_consume_accounting():
    machine, engine = make_sum_machine([7, 8], [0, 1, 0], [1, 8, 1])
    run_to_completion(machine)
    row = engine.status["sumthr"]
    # store 0 changes (wait), store 1 silent (clean), store 2 silent (clean)
    assert row.consumes == 3
    assert row.wait_consumes == 1
    assert row.clean_consumes == 2


def test_summary_merges_queue_stats():
    machine, engine = make_sum_machine(VALUES, IDX, VAL)
    run_to_completion(machine)
    summary = engine.summary()
    assert summary["queue_enqueued"] == engine.queue.enqueued
    assert "unmatched_tstores" in summary
    assert summary["executions_started"] == summary["executions_completed"]
