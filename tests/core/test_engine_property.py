"""Property tests: the hardware engine against an eager oracle.

For random update schedules, the DTT sum program must produce the eager
recomputation's outputs in every execution mode, and the engine's trigger
accounting must match what the schedule implies.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion

from tests.conftest import build_dtt_sum, expected_dtt_sum


schedules = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 4)),
    min_size=1, max_size=25,
)


def _drive_deferred(machine, engine):
    main = machine.main_context
    for _ in range(200_000):
        if main.state is ContextState.HALTED:
            return machine.output
        engine.dispatch_pending()
        for ctx in machine.contexts:
            if ctx.state is ContextState.RUNNING:
                machine.step(ctx)
    raise AssertionError("driver limit")


@given(schedules)
@settings(max_examples=40, deadline=None)
def test_sync_mode_matches_oracle(schedule):
    values = [1, 2, 3, 4]
    idx = [i for i, _ in schedule]
    val = [v for _, v in schedule]
    program, spec = build_dtt_sum(values, idx, val)
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    machine.attach_engine(engine)
    assert run_to_completion(machine) == expected_dtt_sum(values, idx, val)
    # accounting invariants
    row = engine.status["sumthr"]
    assert row.triggering_stores == len(schedule)
    assert (row.same_value_suppressed + row.triggers_fired
            == row.triggering_stores)
    assert row.consumes == len(schedule)
    assert row.clean_consumes + row.wait_consumes == row.consumes
    assert row.executing == 0


@given(schedules)
@settings(max_examples=25, deadline=None)
def test_deferred_mode_matches_oracle(schedule):
    values = [1, 2, 3, 4]
    idx = [i for i, _ in schedule]
    val = [v for _, v in schedule]
    program, spec = build_dtt_sum(values, idx, val)
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]), deferred=True)
    machine.attach_engine(engine)
    assert _drive_deferred(machine, engine) == expected_dtt_sum(
        values, idx, val
    )


@given(schedules)
@settings(max_examples=25, deadline=None)
def test_serialized_inline_matches_oracle(schedule):
    values = [1, 2, 3, 4]
    idx = [i for i, _ in schedule]
    val = [v for _, v in schedule]
    program, spec = build_dtt_sum(values, idx, val)
    machine = Machine(program, num_contexts=1)
    engine = DttEngine(ThreadRegistry([spec]))
    machine.attach_engine(engine)
    assert run_to_completion(machine) == expected_dtt_sum(values, idx, val)


@given(schedules)
@settings(max_examples=20, deadline=None)
def test_silent_schedule_never_executes(schedule):
    """Re-storing current values must never run the support thread."""
    values = [1, 2, 3, 4]
    shadow = list(values)
    idx, val = [], []
    for i, _ in schedule:
        idx.append(i)
        val.append(shadow[i])  # always silent
    program, spec = build_dtt_sum(values, idx, val)
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    machine.attach_engine(engine)
    run_to_completion(machine)
    row = engine.status["sumthr"]
    assert row.executions_started == 0
    assert row.clean_consumes == len(schedule)
