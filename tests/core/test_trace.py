"""Engine trace: event kinds, ordering, and composition with modes."""

import pytest

from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry
from repro.core import trace as T
from repro.core.trace import EngineTrace
from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion

from tests.conftest import build_dtt_sum, expected_dtt_sum


def traced_run(values, idx, val, num_contexts=2, deferred=False):
    program, spec = build_dtt_sum(list(values), list(idx), list(val))
    machine = Machine(program, num_contexts=num_contexts)
    engine = DttEngine(ThreadRegistry([spec]), deferred=deferred)
    tracer = EngineTrace(engine)
    machine.attach_engine(engine)
    if deferred:
        main = machine.main_context
        while main.state is not ContextState.HALTED:
            engine.dispatch_pending()
            for ctx in machine.contexts:
                if ctx.state is ContextState.RUNNING:
                    machine.step(ctx)
        output = machine.output
    else:
        output = run_to_completion(machine)
    return output, tracer


def test_trace_does_not_perturb_results():
    values, idx, val = [1, 2, 3], [0, 0, 1], [5, 5, 9]
    output, _tracer = traced_run(values, idx, val)
    assert output == expected_dtt_sum(values, idx, val)


def test_silent_store_traces_suppression():
    output, tracer = traced_run([7, 8], [0], [7])
    kinds = [e.kind for e in tracer.events]
    assert kinds == [T.TSTORE, T.SUPPRESSED, T.CONSUME_CLEAN]


def test_changing_store_traces_fire_and_completion():
    output, tracer = traced_run([7, 8], [0], [1])
    kinds = [e.kind for e in tracer.events]
    assert kinds[0] == T.TSTORE
    assert kinds[1] == T.FIRED
    assert T.COMPLETED in kinds
    assert kinds[-1] == T.CONSUME_WAIT or T.CONSUME_WAIT in kinds
    # completion happens before the consume returns in sync mode
    assert kinds.index(T.COMPLETED) < len(kinds)


def test_fire_precedes_completion_precedes_next_consume():
    _output, tracer = traced_run([1, 2], [0, 1], [9, 8])
    fired = [e.sequence for e in tracer.of_kind(T.FIRED)]
    completed = [e.sequence for e in tracer.of_kind(T.COMPLETED)]
    assert len(fired) == len(completed) == 2
    assert fired[0] < completed[0] < fired[1] < completed[1]


def test_deferred_mode_traces_dispatch():
    _output, tracer = traced_run([1, 2], [0], [9], deferred=True)
    dispatched = tracer.of_kind(T.DISPATCHED)
    assert len(dispatched) == 1
    assert dispatched[0].thread == "sumthr"
    assert "context" in dispatched[0].detail


def test_trace_records_addresses():
    program_addr_events = traced_run([1, 2], [1], [9])[1].of_kind(T.FIRED)
    assert program_addr_events[0].address is not None


def test_timeline_renders():
    _output, tracer = traced_run([1, 2], [0], [9])
    text = tracer.timeline()
    assert "fired" in text
    assert "#1" in text


def test_truncation_counts_dropped_events():
    program, spec = build_dtt_sum([1, 2], [0, 1, 0, 1], [9, 8, 7, 6])
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    tracer = EngineTrace(engine, max_events=2)
    machine.attach_engine(engine)
    run_to_completion(machine)
    assert len(tracer) == 2
    assert tracer.truncated
    assert tracer.dropped > 0
    assert f"({tracer.dropped} events dropped)" in tracer.timeline()


def test_untruncated_trace_reports_zero_dropped():
    _output, tracer = traced_run([1, 2], [0], [9])
    assert tracer.dropped == 0
    assert not tracer.truncated
    assert "dropped" not in tracer.timeline()


def test_inline_serialized_completions_are_attributed():
    _output, tracer = traced_run([1, 2], [0, 1], [9, 8], num_contexts=1)
    completed = tracer.of_kind(T.COMPLETED)
    assert len(completed) == 2
    assert all(e.thread == "sumthr" for e in completed)


# -- activation identity -------------------------------------------------------


def test_fired_events_carry_monotonic_activation_ids():
    _output, tracer = traced_run([1, 2, 3], [0, 1, 2], [9, 8, 7])
    ids = [e.activation_id for e in tracer.of_kind(T.FIRED)]
    assert all(aid is not None for aid in ids)
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)
    assert ids[0] >= 1  # 0 means "never assigned"


def test_lifecycle_events_share_the_activation_id():
    _output, tracer = traced_run([1, 2], [0], [9], deferred=True)
    fired = tracer.of_kind(T.FIRED)[0]
    aid = fired.activation_id
    walked = tracer.of_activation(aid)
    kinds = [e.kind for e in walked]
    assert T.FIRED in kinds
    assert T.ENQUEUED in kinds
    assert T.DISPATCHED in kinds
    assert T.COMPLETED in kinds
    assert all(e.activation_id == aid or e.cause_id == aid for e in walked)


def test_duplicate_records_absorbing_activation_as_cause():
    # two fast same-key triggers in deferred mode: the second is absorbed
    # by the first's still-pending queue entry
    program, spec = build_dtt_sum([1, 2], [0, 0], [9, 8])
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]), deferred=True)
    tracer = EngineTrace(engine)
    machine.attach_engine(engine)
    main = machine.main_context
    # never dispatch, so the queue keeps the first activation pending
    steps = 0
    while main.state is not ContextState.HALTED and steps < 10_000:
        for ctx in machine.contexts:
            if ctx.state is ContextState.RUNNING:
                machine.step(ctx)
        engine.dispatch_pending()
        steps += 1
    duplicates = tracer.of_kind(T.DUPLICATE)
    if duplicates:  # schedule-dependent; assert shape when it happens
        fired_ids = {e.activation_id for e in tracer.of_kind(T.FIRED)}
        for dup in duplicates:
            assert dup.activation_id in fired_ids
            assert dup.cause_id in fired_ids
            assert dup.cause_id < dup.activation_id


def test_trigger_side_events_carry_pc():
    _output, tracer = traced_run([1, 2], [0], [9])
    assert tracer.of_kind(T.TSTORE)[0].pc is not None
    assert tracer.of_kind(T.FIRED)[0].pc is not None


def test_suppressed_event_carries_pc():
    _output, tracer = traced_run([7, 8], [0], [7])
    assert tracer.of_kind(T.SUPPRESSED)[0].pc is not None


def test_engine_counts_minted_activations():
    program, spec = build_dtt_sum([1, 2], [0, 1], [9, 8])
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    machine.attach_engine(engine)
    run_to_completion(machine)
    # ids are engine state, not trace state: minting happens untraced too
    assert engine.activations_minted == 2


# -- drop policy + spill -------------------------------------------------------


def _overflowing_run(max_events, keep="head", spill=None):
    program, spec = build_dtt_sum([1, 2], [0, 1, 0, 1], [9, 8, 7, 6])
    machine = Machine(program, num_contexts=2)
    engine = DttEngine(ThreadRegistry([spec]))
    tracer = EngineTrace(engine, max_events=max_events, keep=keep,
                         spill=spill)
    machine.attach_engine(engine)
    run_to_completion(machine)
    return tracer


def test_invalid_keep_policy_is_rejected():
    with pytest.raises(ValueError, match="head.*tail"):
        EngineTrace(DttEngine(ThreadRegistry([])), keep="middle")


def test_head_policy_keeps_the_earliest_events():
    full = _overflowing_run(100_000)
    head = _overflowing_run(2, keep="head")
    assert [e.sequence for e in head.events] == \
        [e.sequence for e in list(full.events)[:2]]
    assert head.dropped == len(full.events) - 2


def test_tail_policy_keeps_the_latest_events():
    full = _overflowing_run(100_000)
    tail = _overflowing_run(2, keep="tail")
    assert [e.kind for e in tail.events] == \
        [e.kind for e in list(full.events)[-2:]]
    # tail keeps real sequence numbers, so the window is recognizable
    assert [e.sequence for e in tail.events] == \
        [e.sequence for e in list(full.events)[-2:]]
    assert tail.dropped == len(full.events) - 2
    timeline = tail.timeline()
    # tail mode drops from the front, so the gap marker leads
    assert timeline.startswith(f"... ({tail.dropped} events dropped)")


class _ListSpill:
    def __init__(self):
        self.events = []

    def append(self, event):
        self.events.append(event)


def test_spill_receives_every_event_past_the_cap():
    spill = _ListSpill()
    full = _overflowing_run(100_000)
    capped = _overflowing_run(2, keep="head", spill=spill)
    assert [e.sequence for e in spill.events] == \
        [e.sequence for e in full.events]
    assert len(capped.events) == 2
    assert capped.dropped == len(full.events) - 2


def test_spill_with_tail_keeps_window_and_full_stream():
    spill = _ListSpill()
    tail = _overflowing_run(3, keep="tail", spill=spill)
    assert [e.sequence for e in tail.events] == \
        [e.sequence for e in spill.events[-3:]]
    sequences = [e.sequence for e in spill.events]
    assert sequences == list(range(1, len(sequences) + 1))
