"""Concurrent support threads: multiple threads in flight on smt4.

A program with two independent derived values, each kept by its own
support thread, both triggered in the same iteration — on a 4-context
machine both threads run concurrently under the timing simulator.
"""

from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.timing.params import named_config
from repro.timing.system import TimingSimulator


def build_two_thread_program(steps=30):
    b = ProgramBuilder()
    b.data("xs", [1, 2, 3, 4])
    b.data("ys", [5, 6, 7, 8])
    b.data("sum_x", [1 + 2 + 3 + 4])
    b.data("sum_y", [5 + 6 + 7 + 8])

    def sum_thread(name, source, destination):
        with b.thread(name):
            with b.scratch(4) as (i, base, acc, v):
                b.la(base, source)
                b.li(acc, 0)
                with b.for_range(i, 0, 4):
                    b.ldx(v, base, i)
                    b.add(acc, acc, v)
                with b.scratch(1) as (p,):
                    b.la(p, destination)
                    b.st(acc, p, 0)
            b.treturn()

    sum_thread("xthr", "xs", "sum_x")
    sum_thread("ythr", "ys", "sum_y")

    pcs = {}
    with b.function("main"):
        t = b.global_reg("t")
        with b.for_range(t, 0, steps):
            with b.scratch(2) as (base, v):
                # both stores change values every iteration
                b.la(base, "xs")
                b.addi(v, t, 100)
                pcs.setdefault("x", b.tst(v, base, 0))
                b.la(base, "ys")
                b.addi(v, t, 200)
                pcs.setdefault("y", b.tst(v, base, 0))
            b.tcheck_thread("xthr")
            b.tcheck_thread("ythr")
            with b.scratch(2) as (p, v):
                b.la(p, "sum_x")
                b.ld(v, p, 0)
                b.out(v)
                b.la(p, "sum_y")
                b.ld(v, p, 0)
                b.out(v)
        b.halt()
    program = b.build()
    specs = [
        TriggerSpec("xthr", store_pcs=[pcs["x"]], per_address_dedupe=False),
        TriggerSpec("ythr", store_pcs=[pcs["y"]], per_address_dedupe=False),
    ]
    return program, specs


def reference(steps=30):
    xs, ys = [1, 2, 3, 4], [5, 6, 7, 8]
    out = []
    for t in range(steps):
        xs[0] = t + 100
        ys[0] = t + 200
        out.append(sum(xs))
        out.append(sum(ys))
    return out


def test_two_threads_run_concurrently_on_smt4():
    program, specs = build_two_thread_program()
    engine = DttEngine(ThreadRegistry(specs), deferred=True)
    result = TimingSimulator(program, named_config("smt4"),
                             engine=engine).run()
    assert result.output == reference()
    assert engine.status["xthr"].executions_completed == 30
    assert engine.status["ythr"].executions_completed == 30


def test_two_threads_share_one_spare_context_on_smt2():
    """With a single spare context the threads serialize through the
    queue, but results and counts are identical."""
    program, specs = build_two_thread_program()
    engine = DttEngine(ThreadRegistry(specs), deferred=True)
    result = TimingSimulator(program, named_config("smt2"),
                             engine=engine).run()
    assert result.output == reference()
    assert engine.status["ythr"].executions_completed == 30


def test_smt4_outperforms_smt2_with_two_hot_threads():
    program, specs = build_two_thread_program(steps=60)
    cycles = {}
    for config in ("smt2", "smt4"):
        engine = DttEngine(ThreadRegistry(specs), deferred=True)
        # rebuild: one engine per run
        program2, specs2 = build_two_thread_program(steps=60)
        engine = DttEngine(ThreadRegistry(specs2), deferred=True)
        cycles[config] = TimingSimulator(
            program2, named_config(config), engine=engine
        ).run().cycles
    assert cycles["smt4"] <= cycles["smt2"]
