"""Thread registry: spec validation, PC and address matching, granularity."""

import pytest

from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.errors import RegistryError


def test_spec_requires_some_trigger():
    with pytest.raises(RegistryError):
        TriggerSpec("t")


def test_spec_rejects_bad_watch_range():
    with pytest.raises(RegistryError):
        TriggerSpec("t", watch=[(10, 10)])
    with pytest.raises(RegistryError):
        TriggerSpec("t", watch=[(-1, 5)])


def test_duplicate_thread_rejected():
    registry = ThreadRegistry([TriggerSpec("t", store_pcs=[1])])
    with pytest.raises(RegistryError):
        registry.register(TriggerSpec("t", store_pcs=[2]))


def test_pc_matching_is_exact():
    spec = TriggerSpec("t", store_pcs=[5, 9])
    registry = ThreadRegistry([spec])
    assert registry.matches(5, 1000) == [spec]
    assert registry.matches(9, 0) == [spec]
    assert registry.matches(6, 1000) == []


def test_address_matching_half_open():
    spec = TriggerSpec("t", watch=[(100, 110)])
    registry = ThreadRegistry([spec])
    assert registry.matches(0, 100) == [spec]
    assert registry.matches(0, 109) == [spec]
    assert registry.matches(0, 110) == []
    assert registry.matches(0, 99) == []


def test_granularity_widens_ranges():
    spec = TriggerSpec("t", watch=[(100, 101)])
    registry = ThreadRegistry([spec])
    # word granularity: only address 100 matches
    assert registry.matches(0, 101) == []
    # 16-word granularity: the whole 96..112 granule matches
    assert registry.matches(0, 101, granularity=16) == [spec]
    assert registry.matches(0, 96, granularity=16) == [spec]
    assert registry.matches(0, 111, granularity=16) == [spec]
    assert registry.matches(0, 112, granularity=16) == []
    assert registry.matches(0, 95, granularity=16) == []


def test_pc_and_address_matches_deduplicate():
    spec = TriggerSpec("t", store_pcs=[5], watch=[(0, 10)])
    registry = ThreadRegistry([spec])
    assert registry.matches(5, 3) == [spec]  # one spec, not two


def test_multiple_specs_can_match_one_store():
    a = TriggerSpec("a", watch=[(0, 100)])
    b = TriggerSpec("b", watch=[(50, 150)])
    registry = ThreadRegistry([a, b])
    assert registry.matches(0, 75) == [a, b]
    assert registry.matches(0, 25) == [a]
    assert registry.matches(0, 125) == [b]


def test_spec_for_and_thread_names():
    spec = TriggerSpec("t", store_pcs=[1])
    registry = ThreadRegistry([spec])
    assert registry.spec_for("t") is spec
    assert registry.thread_names == ["t"]
    with pytest.raises(RegistryError):
        registry.spec_for("ghost")


def test_len():
    assert len(ThreadRegistry()) == 0
    assert len(ThreadRegistry([TriggerSpec("t", store_pcs=[1])])) == 1
