"""Suite registry: completeness, uniqueness, metadata quality."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads.suite import SUITE, get_workload, workload_names

PAPER_BENCHMARKS = {
    "bzip2", "crafty", "gap", "gcc", "gzip", "mcf", "parser", "perlbmk",
    "twolf", "vortex", "vpr", "ammp", "art", "equake", "mesa",
}


def test_suite_covers_the_paper_benchmarks():
    assert set(SUITE) == PAPER_BENCHMARKS
    assert len(SUITE) == 15


def test_names_match_keys():
    for name, workload in SUITE.items():
        assert workload.name == name


def test_all_have_descriptions_and_regions():
    for workload in SUITE.values():
        assert workload.description
        assert workload.converted_region


def test_get_workload():
    assert get_workload("mcf").name == "mcf"
    with pytest.raises(UnknownWorkloadError):
        get_workload("specjbb")


def test_workload_names_order_is_stable():
    assert workload_names() == list(SUITE)
    # integer codes first, fp codes after (the paper's presentation order)
    names = workload_names()
    assert names.index("mcf") < names.index("ammp")


def test_singletons():
    assert get_workload("mcf") is get_workload("mcf")
