"""Input generators: determinism, change-rate statistics, structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import data


def test_rng_for_is_deterministic_per_stream():
    assert data.rng_for(1, "a").random() == data.rng_for(1, "a").random()
    assert data.rng_for(1, "a").random() != data.rng_for(1, "b").random()
    assert data.rng_for(1, "a").random() != data.rng_for(2, "a").random()


def test_update_schedule_rejects_bad_rate():
    with pytest.raises(ValueError):
        data.update_schedule(1, 10, [1, 2], 1.5)


def test_update_schedule_change_rate_zero_is_all_silent():
    current = [5, 6, 7]
    idx, val = data.update_schedule(1, 50, current, 0.0)
    shadow = list(current)
    for i, v in zip(idx, val):
        assert shadow[i] == v  # every write silent
        shadow[i] = v


def test_update_schedule_change_rate_one_always_changes():
    current = [5, 6, 7]
    idx, val = data.update_schedule(1, 50, current, 1.0)
    shadow = list(current)
    for i, v in zip(idx, val):
        assert shadow[i] != v
        shadow[i] = v


@given(st.floats(0.1, 0.9))
@settings(max_examples=20, deadline=None)
def test_update_schedule_empirical_rate_tracks_requested(rate):
    current = [1] * 16
    idx, val = data.update_schedule(7, 400, current, rate, (1, 64))
    shadow = list(current)
    changes = 0
    for i, v in zip(idx, val):
        if shadow[i] != v:
            changes += 1
        shadow[i] = v
    assert abs(changes / 400 - rate) < 0.12


def test_random_tree_parents_is_preorder():
    parents = data.random_tree_parents(3, 200)
    assert parents[0] == 0
    for node in range(1, 200):
        assert 0 <= parents[node] < node


def test_sparse_matrix_csr_structure():
    row_ptr, col_idx, values = data.sparse_matrix_csr(5, 10, 3)
    assert len(row_ptr) == 11
    assert row_ptr[0] == 0
    assert row_ptr[-1] == len(col_idx) == len(values) == 30
    for row in range(10):
        cols = col_idx[row_ptr[row]:row_ptr[row + 1]]
        assert cols == sorted(cols)
        assert len(set(cols)) == len(cols)
        assert all(0 <= c < 10 for c in cols)


def test_grid_positions_in_bounds():
    xs, ys = data.grid_positions(9, 50, 32)
    assert len(xs) == len(ys) == 50
    assert all(0 <= x < 32 for x in xs)
    assert all(0 <= y < 32 for y in ys)


def test_nets_are_distinct_cells():
    net_list = data.nets(9, 20, 30, 4)
    for net in net_list:
        assert len(set(net)) == len(net) == 4


def test_symbol_blocks_repeat_locally():
    blocks = data.symbol_blocks(9, 200, 16, repeat_rate=0.8)
    repeats = sum(1 for i in range(1, 200) if blocks[i] == blocks[i - 1])
    assert repeats > 100  # strongly repetitive


def test_symbol_blocks_no_repeat_when_rate_zero():
    blocks = data.symbol_blocks(9, 50, 16, repeat_rate=0.0)
    assert len(blocks) == 50  # drawn from pool; may coincide, but exist


def test_generators_are_deterministic():
    assert data.int_array(4, 10) == data.int_array(4, 10)
    assert data.index_array(4, 10, 5) == data.index_array(4, 10, 5)
    assert data.random_tree_parents(4, 50) == data.random_tree_parents(4, 50)
    assert data.symbol_blocks(4, 10, 8) == data.symbol_blocks(4, 10, 8)
