"""The parallelism-extension workload (overlap)."""

from repro.machine.machine import Machine, run_to_completion
from repro.timing.params import named_config
from repro.timing.system import TimingSimulator
from repro.workloads.base import verify_workload
from repro.workloads.overlap import OverlapWorkload
from repro.workloads.suite import SUITE


def test_not_in_the_suite():
    assert "overlap" not in SUITE


def test_correctness():
    verify_workload(OverlapWorkload())


def test_every_trigger_fires():
    workload = OverlapWorkload()
    inp = workload.make_input()
    build = workload.build_dtt(inp)
    engine = build.engine()
    machine = Machine(build.program, num_contexts=2)
    machine.attach_engine(engine)
    run_to_completion(machine)
    row = engine.status["coeffthr"]
    assert row.triggering_stores == inp.steps
    assert row.same_value_suppressed == 0
    assert row.clean_consumes == 0


def test_parameters_strictly_increase():
    inp = OverlapWorkload().make_input()
    assert all(b > a for a, b in zip(inp.params, inp.params[1:]))


def test_overlap_beats_serialized():
    workload = OverlapWorkload()
    inp = workload.make_input()
    speedups = {}
    for config_name in ("smt2", "serial"):
        baseline = TimingSimulator(workload.build_baseline(inp),
                                   named_config(config_name)).run()
        build = workload.build_dtt(inp)
        timed = TimingSimulator(build.program, named_config(config_name),
                                engine=build.engine(deferred=True)).run()
        assert timed.output == baseline.output
        speedups[config_name] = baseline.cycles / timed.cycles
    assert speedups["smt2"] > speedups["serial"] + 0.3
    assert speedups["serial"] < 1.05
