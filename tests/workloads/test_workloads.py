"""Per-workload correctness: baseline == DTT == reference, determinism,
DTT-build structure, and redundancy bounds.

These are the suite's contract tests: everything the evaluation measures
rests on them.
"""

import pytest

from repro.core.config import DttConfig
from repro.isa.instructions import is_triggering_store
from repro.machine.machine import Machine, run_to_completion
from repro.workloads.base import verify_workload
from repro.workloads.suite import SUITE

ALL = sorted(SUITE)


@pytest.mark.parametrize("name", ALL)
def test_baseline_dtt_reference_agree(name):
    verify_workload(SUITE[name])


@pytest.mark.parametrize("name", ALL)
def test_alternate_seed_agrees(name):
    verify_workload(SUITE[name], seed=999)


@pytest.mark.parametrize("name", ALL)
def test_inputs_are_deterministic(name):
    workload = SUITE[name]
    a = workload.make_input()
    b = workload.make_input()
    for field in a.field_names():
        assert a[field] == b[field], field


@pytest.mark.parametrize("name", ALL)
def test_dtt_build_structure(name):
    workload = SUITE[name]
    build = workload.build_dtt(workload.make_input())
    assert build.program.finalized
    assert build.specs, "a DTT build needs trigger specs"
    assert build.program.threads, "a DTT build declares support threads"
    assert any(is_triggering_store(i.op) for i in build.program)
    # every spec's thread is declared
    for spec in build.specs:
        assert spec.thread in build.program.threads


@pytest.mark.parametrize("name", ALL)
def test_baseline_has_no_dtt_instructions(name):
    workload = SUITE[name]
    program = workload.build_baseline(workload.make_input())
    for instruction in program:
        assert instruction.op not in ("tst", "tstx", "tcheck", "treturn")


@pytest.mark.parametrize("name", ALL)
def test_dtt_executes_fewer_instructions(name):
    workload = SUITE[name]
    inp = workload.make_input()
    baseline = Machine(workload.build_baseline(inp), num_contexts=1)
    run_to_completion(baseline)
    build = workload.build_dtt(inp)
    dtt = Machine(build.program, num_contexts=2)
    dtt.attach_engine(build.engine())
    run_to_completion(dtt)
    assert dtt.instructions_executed < baseline.instructions_executed


@pytest.mark.parametrize("name", ALL)
def test_dtt_correct_with_value_filter_disabled(name):
    """Disabling the redundancy filter changes performance, never results."""
    workload = SUITE[name]
    inp = workload.make_input()
    expected = workload.reference_output(inp)
    got = workload.run_dtt(inp, config=DttConfig(same_value_filter=False))
    assert got == expected


@pytest.mark.parametrize("name", ALL)
def test_dtt_correct_on_single_context(name):
    """The serialized (inline) fallback is output-identical."""
    workload = SUITE[name]
    inp = workload.make_input()
    expected = workload.reference_output(inp)
    assert workload.run_dtt(inp, num_contexts=1) == expected


@pytest.mark.parametrize("name", ["mcf", "equake"])
def test_watch_build_agrees(name):
    workload = SUITE[name]
    inp = workload.make_input()
    build = workload.build_dtt_watch(inp)
    assert build is not None
    machine = Machine(build.program, num_contexts=2)
    machine.attach_engine(build.engine())
    assert run_to_completion(machine) == workload.reference_output(inp)


@pytest.mark.parametrize("name", ALL)
def test_outputs_every_step(name):
    """Each workload emits one observable value per main-loop step, so
    divergence is caught at the step where it happens."""
    workload = SUITE[name]
    inp = workload.make_input()
    assert len(workload.reference_output(inp)) == inp.steps
