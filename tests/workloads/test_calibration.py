"""Per-benchmark calibration locks.

EXPERIMENTS.md's suite-level claims are gated by the harness; these tests
pin each benchmark's *individual* redundancy profile to a band around its
calibrated value, so a change that silently reshapes one benchmark (while
the suite average stays in band) still fails loudly.
"""

import pytest

from repro.profiling.report import profile_program
from repro.workloads.suite import SUITE

#: calibrated redundant-load fraction per benchmark, +/- the tolerance
#: below (values from EXPERIMENTS.md's E1 table at the default seed)
CALIBRATED_REDUNDANCY = {
    "bzip2": 0.53,
    "crafty": 0.95,
    "gap": 0.79,
    "gcc": 0.81,
    "gzip": 0.52,
    "mcf": 0.99,
    "parser": 0.51,
    "perlbmk": 0.76,
    "twolf": 0.86,
    "vortex": 0.49,
    "vpr": 0.40,
    "ammp": 0.96,
    "art": 0.96,
    "equake": 0.95,
    "mesa": 0.92,
}

TOLERANCE = 0.08


def test_calibration_table_covers_the_suite():
    assert set(CALIBRATED_REDUNDANCY) == set(SUITE)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_benchmark_redundancy_near_calibrated_value(name):
    workload = SUITE[name]
    report = profile_program(workload.build_baseline(workload.make_input()),
                             name)
    expected = CALIBRATED_REDUNDANCY[name]
    measured = report.redundant_load_fraction
    assert abs(measured - expected) < TOLERANCE, (
        f"{name}: measured {measured:.1%}, calibrated {expected:.0%}"
    )


def test_suite_spans_a_wide_redundancy_range():
    """The paper's figure shows heavy spread across benchmarks; a suite
    where every bar is the same height would be a calibration bug."""
    values = sorted(CALIBRATED_REDUNDANCY.values())
    assert values[0] < 0.55
    assert values[-1] > 0.90
