"""The granularity-ablation micro-workload (linefalse)."""

from repro.core.config import DttConfig
from repro.machine.machine import Machine, run_to_completion
from repro.workloads.ablation import LINE_WORDS, NUM_LINES, LineFalseWorkload
from repro.workloads.base import verify_workload
from repro.workloads.suite import SUITE


def test_not_in_the_suite():
    assert "linefalse" not in SUITE


def test_correct_under_word_granularity():
    verify_workload(LineFalseWorkload())


def test_correct_under_line_granularity():
    workload = LineFalseWorkload()
    inp = workload.make_input()
    build = workload.build_dtt(inp)
    machine = Machine(build.program, num_contexts=2)
    machine.attach_engine(build.engine(config=DttConfig(granularity=16)))
    assert run_to_completion(machine) == workload.reference_output(inp)


def test_watch_ranges_cover_one_word_per_line():
    workload = LineFalseWorkload()
    inp = workload.make_input()
    build = workload.build_dtt(inp)
    ranges = build.specs[0].watch
    assert len(ranges) == NUM_LINES
    for lo, hi in ranges:
        assert hi - lo == 1


def test_line_granularity_fires_many_more_triggers():
    workload = LineFalseWorkload()
    inp = workload.make_input()
    fired = {}
    for granularity in (1, LINE_WORDS):
        build = workload.build_dtt(inp)
        engine = build.engine(config=DttConfig(granularity=granularity))
        machine = Machine(build.program, num_contexts=2)
        machine.attach_engine(engine)
        run_to_completion(machine)
        fired[granularity] = engine.status["derivethr"].triggers_fired
    assert fired[LINE_WORDS] > 10 * fired[1]


def test_scratch_writes_avoid_watched_slots():
    inp = LineFalseWorkload().make_input()
    assert all(slot % LINE_WORDS != 0 for slot in inp.scr_idx)
    assert all(slot % LINE_WORDS == 0 for slot in inp.watched_slots)
