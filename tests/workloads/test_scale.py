"""Scale parameter: larger problems stay correct (spot checks).

Functional-only (timing at scale 2 is several seconds per workload); a
couple of representative workloads cover the integer/float and
whole-recompute/per-address-thread axes.
"""

import pytest

from repro.workloads.base import verify_workload
from repro.workloads.suite import SUITE


@pytest.mark.parametrize("name", ["perlbmk", "equake"])
def test_scale_two_verifies(name):
    verify_workload(SUITE[name], scale=2)


def test_scale_grows_the_problem():
    workload = SUITE["mcf"]
    small = workload.make_input(scale=1)
    large = workload.make_input(scale=2)
    assert large.num_nodes == 2 * small.num_nodes
    assert large.steps == 2 * small.steps
    assert len(large.probes) > len(small.probes)


def test_scale_changes_outputs():
    workload = SUITE["gap"]
    a = workload.reference_output(workload.make_input(scale=1))
    b = workload.reference_output(workload.make_input(scale=2))
    assert len(b) == 2 * len(a)
