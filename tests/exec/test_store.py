"""Result-store round-trips, corruption recovery, and addressing."""

import json
import os

import pytest

from repro.core.config import DttConfig
from repro.exec.plan import RunSpec
from repro.exec.store import (ResultStore, StoredEngineView, decode_profile,
                              decode_timed, encode_profile, encode_timed)
from repro.errors import StoreError
from repro.harness.runner import SuiteRunner
from repro.workloads.suite import SUITE


@pytest.fixture(scope="module")
def executed_runner():
    runner = SuiteRunner()
    runner.timed(SUITE["perlbmk"], "dtt")
    runner.profile(SUITE["perlbmk"])
    return runner


def _timed_spec():
    return RunSpec.for_timed("perlbmk", "dtt")


def test_timed_payload_round_trips_exactly(executed_runner, tmp_path):
    spec = _timed_spec()
    result = executed_runner.result_for(spec)
    engine = executed_runner.engine_for(SUITE["perlbmk"], "dtt")
    payload = json.loads(json.dumps(encode_timed(result, engine)))
    restored, view = decode_timed(payload)
    assert restored.cycles == result.cycles
    assert restored.output == result.output
    assert restored.energy == result.energy
    assert restored.engine_summary == result.engine_summary
    assert isinstance(view, StoredEngineView)
    assert view.summary() == engine.summary()
    assert view.queue.depth_high_water == engine.queue.depth_high_water
    rows = engine.status.rows()
    assert set(view.status) == set(rows)
    name = next(iter(rows))
    assert view.status[name].triggers_fired == rows[name].triggers_fired
    assert view.status[name].skip_fraction == rows[name].skip_fraction


def test_profile_payload_round_trips(executed_runner):
    report = executed_runner.profile(SUITE["perlbmk"])
    payload = json.loads(json.dumps(encode_profile(report)))
    restored = decode_profile(payload)
    assert restored.redundant_load_fraction == report.redundant_load_fraction
    assert restored.silent_store_fraction == report.silent_store_fraction
    assert (restored.redundant_computation_fraction
            == report.redundant_computation_fraction)
    assert restored.output == report.output
    assert restored.loads.total_loads == report.loads.total_loads
    assert restored.slices.total_instructions \
        == report.slices.total_instructions
    assert restored.summary() == report.summary()


def test_decode_rejects_malformed_payloads():
    with pytest.raises(StoreError):
        decode_timed({"cycles": 1})
    with pytest.raises(StoreError):
        decode_profile({"name": "x"})


def test_store_get_put_and_addressing(tmp_path, executed_runner):
    store = ResultStore(str(tmp_path / "store"))
    spec = _timed_spec()
    assert store.get(spec) is None
    result = executed_runner.result_for(spec)
    path = store.put(spec, encode_timed(result), elapsed=0.5)
    assert os.path.exists(path)
    assert path == store.path_for(spec)
    entry = store.get(spec)
    assert entry["canonical"] == spec.canonical()
    assert entry["elapsed_seconds"] == 0.5
    restored, _ = decode_timed(entry["payload"])
    assert restored.output == result.output
    # a different config is a different address
    other = RunSpec.for_timed("perlbmk", "dtt",
                              dtt_config=DttConfig(same_value_filter=False))
    assert store.digest(other) != store.digest(spec)
    assert store.get(other) is None


def test_corrupt_entry_is_dropped_and_missed(tmp_path, executed_runner):
    store = ResultStore(str(tmp_path / "store"))
    spec = _timed_spec()
    result = executed_runner.result_for(spec)
    path = store.put(spec, encode_timed(result), elapsed=0.1)
    with open(path, "w") as handle:
        handle.write("{ not json")
    assert store.get(spec) is None           # corrupt file = miss
    assert not os.path.exists(path)          # ... and it self-heals
    assert store.corrupt_entries_dropped == 1


def test_schema_or_identity_mismatch_is_dropped(tmp_path, executed_runner):
    store = ResultStore(str(tmp_path / "store"))
    spec = _timed_spec()
    result = executed_runner.result_for(spec)
    path = store.put(spec, encode_timed(result), elapsed=0.1)
    entry = json.load(open(path))
    entry["store_schema"] = 999
    json.dump(entry, open(path, "w"))
    assert store.get(spec) is None
    assert store.corrupt_entries_dropped == 1


def test_entries_enumeration_sorted(tmp_path, executed_runner):
    store = ResultStore(str(tmp_path / "store"))
    result = executed_runner.result_for(_timed_spec())
    for seed in (5, 1, 3):
        spec = RunSpec.for_timed("perlbmk", "dtt", seed=seed)
        store.put(spec, encode_timed(result), elapsed=0.1)
    names = [entry["canonical"] for entry in store.entries()]
    assert names == sorted(names)
    assert len(store) == 3


def test_timing_hints_ewma(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert store.timing_hint("mcf:dtt:smt2") is None
    store.record_timing("mcf:dtt:smt2", 4.0)
    assert store.timing_hint("mcf:dtt:smt2") == 4.0
    store.record_timing("mcf:dtt:smt2", 2.0)
    assert store.timing_hint("mcf:dtt:smt2") == 3.0  # alpha = 0.5
    # hints persist across store objects
    again = ResultStore(str(tmp_path / "store"))
    assert again.timing_hint("mcf:dtt:smt2") == 3.0


def test_runner_store_round_trip(tmp_path):
    """A second runner against the same store executes nothing."""
    store_dir = str(tmp_path / "store")
    cold = SuiteRunner(store=store_dir)
    first = cold.timed(SUITE["perlbmk"], "dtt")
    cold_stats = cold.cache_stats()
    assert cold_stats["store_hits"] == 0
    assert cold_stats["store_misses"] == 2  # dtt + its baseline check

    warm = SuiteRunner(store=store_dir)
    second = warm.timed(SUITE["perlbmk"], "dtt")
    warm_stats = warm.cache_stats()
    assert warm_stats["store_hits"] == 1
    assert warm_stats["store_misses"] == 0
    assert warm_stats["misses"] == 0         # zero simulations executed
    assert warm.phase_seconds() == {}        # no wall-clock accrued
    assert second.output == first.output
    assert second.cycles == first.cycles
    # the restored engine view still serves experiment surfaces
    engine = warm.engine_for(SUITE["perlbmk"], "dtt")
    assert engine.summary()["consumes"] > 0
    assert warm.peak_queue_depth() >= 0


def test_runner_recovers_from_corrupted_store_entry(tmp_path):
    store_dir = str(tmp_path / "store")
    cold = SuiteRunner(store=store_dir)
    first = cold.timed(SUITE["perlbmk"], "baseline")
    spec = RunSpec.for_timed("perlbmk", "baseline")
    path = cold.store.path_for(spec)
    with open(path, "w") as handle:
        handle.write("garbage")
    warm = SuiteRunner(store=store_dir)
    second = warm.timed(SUITE["perlbmk"], "baseline")  # re-executes
    assert warm.cache_stats()["store_misses"] == 1
    assert second.output == first.output
    # the re-execution healed the store
    healed = SuiteRunner(store=store_dir)
    healed.timed(SUITE["perlbmk"], "baseline")
    assert healed.cache_stats()["store_hits"] == 1
