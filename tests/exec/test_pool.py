"""Pool scheduler: dedup, ordering, fallback ladders, determinism."""

import pytest

from repro.errors import CorrectnessError, ExecError
from repro.exec import pool as pool_module
from repro.exec.plan import RunSpec, build_plan
from repro.exec.pool import (_ordered_longest_first, _worker, execute_plan)
from repro.exec.store import ResultStore
from repro.harness.runner import SuiteRunner


def test_execute_plan_serial_populates_runner():
    runner = SuiteRunner()
    plan = build_plan(["E9"])
    stats = execute_plan(plan, runner, jobs=1)
    assert stats["mode"] == "serial"
    assert stats["serial_executed"] == len(plan)
    for spec in plan:
        assert runner.is_cached(spec)
    # re-executing is all memo hits
    again = execute_plan(plan, runner, jobs=1)
    assert again["memo_hits"] == len(plan)
    assert again["serial_executed"] == 0


def test_execute_plan_rejects_bad_jobs():
    with pytest.raises(ExecError):
        execute_plan(build_plan(["E9"]), SuiteRunner(), jobs=0)


def test_worker_executes_one_spec():
    spec = RunSpec.for_timed("perlbmk", "dtt")
    outcome = _worker(spec.as_dict(), None, None)
    assert outcome["spec"] == spec.as_dict()
    assert outcome["elapsed"] > 0
    assert "engine_status" in outcome["payload"]
    assert outcome["metrics"]["runner.cache_misses"]["value"] == 1
    assert list(outcome["phases"]) == [spec.phase_name()]


def test_longest_job_first_ordering(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    fast = RunSpec.for_timed("art")
    slow = RunSpec.for_timed("mcf")
    unknown = RunSpec.for_timed("twolf")
    store.record_timing(fast.phase_name(), 0.1)
    store.record_timing(slow.phase_name(), 9.0)
    ordered = _ordered_longest_first([fast, slow, unknown], store)
    # unknown runs first (it might be the long pole), then longest known
    assert ordered == [unknown, slow, fast]
    # without a store, plan order is preserved
    assert _ordered_longest_first([fast, slow], None) == [fast, slow]


def test_parallel_matches_serial_and_second_pass_is_stored(tmp_path):
    plan = build_plan(["E9"])
    serial = SuiteRunner()
    execute_plan(plan, serial, jobs=1)

    store_dir = str(tmp_path / "store")
    parallel = SuiteRunner(store=store_dir)
    stats = execute_plan(plan, parallel, jobs=2)
    assert stats["mode"] == "parallel"
    assert stats["parallel_executed"] == len(plan)
    for spec in plan:
        assert parallel.result_for(spec).output \
            == serial.result_for(spec).output
        assert parallel.result_for(spec).cycles \
            == serial.result_for(spec).cycles

    warm = SuiteRunner(store=store_dir)
    warm_stats = execute_plan(plan, warm, jobs=2)
    assert warm_stats["store_hits"] == len(plan)
    assert warm_stats["parallel_executed"] == 0
    assert warm_stats["serial_executed"] == 0


def test_task_timeout_raises(monkeypatch):
    plan = build_plan(["E9"])
    runner = SuiteRunner()
    with pytest.raises(ExecError, match="timeout"):
        execute_plan(plan, runner, jobs=2, task_timeout=1e-9)


def test_worker_crash_retries_then_falls_back(monkeypatch):
    """First batch 'crashes' every spec; the retry crashes again; the
    scheduler then finishes the whole plan serially."""
    calls = []

    def crashing_batch(specs, jobs, seed, scale, timeout):
        calls.append(list(specs))
        return [], list(specs)  # no results, everything crashed

    monkeypatch.setattr(pool_module, "_run_batch", crashing_batch)
    plan = build_plan(["E9"])
    runner = SuiteRunner()
    stats = execute_plan(plan, runner, jobs=2)
    assert len(calls) == 2                       # one retry, not more
    assert stats["worker_retries"] == 2 * len(plan)
    assert stats["serial_executed"] == len(plan)  # serial fallback ran
    for spec in plan:
        assert runner.is_cached(spec)


def test_pool_unavailable_falls_back_to_serial(monkeypatch):
    def no_pool(*args, **kwargs):
        raise OSError("no semaphores in this sandbox")

    monkeypatch.setattr(pool_module, "_run_batch", no_pool)
    plan = build_plan(["E9"])
    runner = SuiteRunner()
    stats = execute_plan(plan, runner, jobs=2)
    assert stats["serial_executed"] == len(plan)


def test_tracing_forces_serial():
    plan = build_plan(["E9"])
    runner = SuiteRunner(trace=True)
    stats = execute_plan(plan, runner, jobs=4)
    assert stats["mode"] == "serial"
    assert stats["serial_executed"] == len(plan)
    assert len(runner.traces()) > 0


def test_parent_side_output_verification(monkeypatch):
    """A diverging worker payload must fail the correctness gate."""
    plan = build_plan(["E9"])
    runner = SuiteRunner()

    real_install = SuiteRunner.install_payload

    def corrupting_install(self, spec, payload, elapsed):
        if spec.build != "baseline":
            payload = dict(payload)
            payload["output"] = list(payload["output"]) + [999]
        real_install(self, spec, payload, elapsed)

    monkeypatch.setattr(SuiteRunner, "install_payload", corrupting_install)
    with pytest.raises(CorrectnessError):
        execute_plan(plan, runner, jobs=2)
