"""RunSpec identity, canonical naming, and plan deduplication."""

import pytest

from repro.core.config import DttConfig
from repro.errors import ExecError, UnknownWorkloadError
from repro.exec.plan import (RunSpec, build_plan, canonical_run_name,
                             config_fingerprint, resolve_workload)


def test_config_fingerprint_covers_every_slot():
    config = DttConfig()
    fingerprint = config_fingerprint(config)
    assert {name for name, _ in fingerprint} == set(DttConfig.__slots__)


def test_config_fingerprint_none_is_empty():
    assert config_fingerprint(None) == ()


def test_config_fingerprint_distinguishes_every_field():
    # the historical bug: a hand-maintained list omitted strict_cascading;
    # auto-derivation makes each field flip visible in the fingerprint
    default = config_fingerprint(DttConfig())
    for field, value in (("same_value_filter", False), ("granularity", 16),
                         ("queue_capacity", 3), ("allow_cascading", True),
                         ("strict_cascading", True),
                         ("per_address_dedupe_default", False)):
        changed = config_fingerprint(DttConfig(**{field: value}))
        assert changed != default, field


def test_config_fingerprint_rejects_non_scalar_fields():
    class Odd:
        __slots__ = ("weird",)

        def __init__(self):
            self.weird = [1, 2]

    with pytest.raises(ExecError):
        config_fingerprint(Odd())


def test_config_fingerprint_rejects_slotless_configs():
    class NoSlots:
        pass

    with pytest.raises(ExecError):
        config_fingerprint(NoSlots())


def test_canonical_name_format():
    assert canonical_run_name("mcf", "dtt", "smt2", (), 7, 2) == \
        "mcf:dtt:smt2:seed=7:scale=2"
    assert canonical_run_name("mcf", "baseline", "smt2", (), None, None) == \
        "mcf:baseline:smt2:seed=default:scale=default"
    assert canonical_run_name("mcf", "profile", None, (), None, None) == \
        "mcf:profile:-:seed=default:scale=default"


def test_canonical_name_embeds_config_token():
    fp = config_fingerprint(DttConfig(queue_capacity=1))
    name = canonical_run_name("equake", "dtt", "smt2", fp, None, None)
    assert ":dtt+cfg=" in name
    other = canonical_run_name(
        "equake", "dtt", "smt2",
        config_fingerprint(DttConfig(queue_capacity=2)), None, None)
    assert name != other  # distinct configs never alias


def test_spec_round_trips_through_dict():
    spec = RunSpec.for_timed("mcf", "dtt", "cmp2",
                             DttConfig(same_value_filter=False), 3, 1)
    again = RunSpec.from_dict(spec.as_dict())
    assert again == spec
    assert hash(again) == hash(spec)
    assert again.canonical() == spec.canonical()
    assert again.dtt_config().same_value_filter is False


def test_from_dict_rejects_malformed_payloads():
    with pytest.raises(ExecError):
        RunSpec.from_dict({"kind": "timed"})


def test_unknown_kind_rejected():
    with pytest.raises(ExecError):
        RunSpec("bogus", "mcf", "dtt", "smt2", (), None, None)


def test_baseline_spec_derivation():
    dtt = RunSpec.for_timed("mcf", "dtt", "cmp2",
                            DttConfig(granularity=16), 5, None)
    baseline = dtt.baseline_spec()
    assert baseline.build == "baseline"
    assert baseline.config_name == "cmp2"
    assert baseline.dtt_fields == ()  # baselines carry no DTT config
    assert baseline.seed == 5
    assert RunSpec.for_timed("mcf").baseline_spec() is None
    assert RunSpec.for_profile("mcf").baseline_spec() is None


def test_resolve_workload_suite_and_extras():
    assert resolve_workload("mcf").name == "mcf"
    assert resolve_workload("overlap").name == "overlap"
    assert resolve_workload("linefalse").name == "linefalse"
    assert resolve_workload("bursty-equake").name == "bursty-equake"
    with pytest.raises(UnknownWorkloadError):
        resolve_workload("nonesuch")


def test_plan_dedups_shared_runs():
    # E3/E4/E6/E7 all need the same baseline/DTT sweep; stating all four
    # must not enlarge the plan beyond one experiment's needs
    one = build_plan(["E3"])
    four = build_plan(["E3", "E4", "E6", "E7"])
    assert len(four) == len(one)
    spec = next(iter(four))
    assert four.needed_by(spec) == {"E3", "E4", "E6", "E7"}


def test_plan_adds_baselines_implicitly():
    plan = build_plan(["E3"])
    names = plan.canonical_names()
    dtt = [n for n in names if ":dtt:" in n]
    baseline = [n for n in names if ":baseline:" in n]
    assert len(dtt) == len(baseline) > 0


def test_plan_all_covers_every_experiment():
    plan = build_plan(["all"])
    assert set(plan.experiment_ids) == {
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
    names = plan.canonical_names()
    assert len(names) == len(set(names))  # fully deduplicated
    assert any(":profile:" in n for n in names)
    assert any(n.startswith("bursty-equake:dtt+cfg=") for n in names)


def test_plan_rejects_unknown_experiment():
    with pytest.raises(ExecError):
        build_plan(["E99"])


def test_plan_as_dict_is_json_ready():
    import json

    plan = build_plan(["E9"], seed=3)
    payload = json.loads(json.dumps(plan.as_dict()))
    assert payload["seed"] == 3
    assert all(run["needed_by"] == ["E9"] for run in payload["runs"])
