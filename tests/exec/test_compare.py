"""Regression compare: loaders, direction rules, and gating."""

import json

import pytest

from repro.errors import CompareError
from repro.exec.compare import (CompareReport, ResultSet, compare_paths,
                                compare_sets, load_result_set,
                                metric_direction)
from repro.exec.plan import RunSpec
from repro.exec.store import ResultStore, encode_timed
from repro.harness.runner import SuiteRunner
from repro.workloads.suite import SUITE


def test_metric_directions():
    assert metric_direction("speedup") == "down_bad"
    assert metric_direction("checks_passed") == "down_bad"
    assert metric_direction("cycles") == "up_bad"
    assert metric_direction("energy") == "up_bad"
    assert metric_direction("total_seconds") == "info"
    assert metric_direction("phase:mcf:dtt:smt2") == "info"
    assert metric_direction("cache_hits") == "info"
    assert metric_direction("redundant_load_fraction") == "drift"


def _rows(**rows):
    return ResultSet("x", "store", rows)


def test_within_tolerance_is_quiet():
    old = _rows(mcf={"cycles": 100.0, "speedup": 1.5})
    new = _rows(mcf={"cycles": 103.0, "speedup": 1.47})
    report = compare_sets(old, new, tolerance=0.05)
    assert report.deltas == []
    assert not report.has_regressions


def test_direction_awareness():
    old = _rows(mcf={"cycles": 100.0, "speedup": 1.5,
                     "total_seconds": 10.0})
    new = _rows(mcf={"cycles": 90.0, "speedup": 1.9,
                     "total_seconds": 30.0})
    report = compare_sets(old, new, tolerance=0.05)
    # cycles fell and speedup rose: improvements, not regressions.
    # wall clock tripled: informational change only.
    assert not report.has_regressions
    assert {d.metric for d in report.deltas} \
        == {"cycles", "speedup", "total_seconds"}

    worse = compare_sets(new, old, tolerance=0.05)
    assert {d.metric for d in worse.regressions} == {"cycles", "speedup"}


def test_drift_regresses_both_ways():
    old = _rows(mcf={"redundant_load_fraction": 0.5})
    for value in (0.3, 0.7):
        new = _rows(mcf={"redundant_load_fraction": value})
        assert compare_sets(old, new).has_regressions


def test_check_flip_always_gates():
    old = ResultSet("a", "results", {"E3": {"checks_passed": 2.0}},
                    {"E3 :: holds": True, "E3 :: other": False})
    new = ResultSet("b", "results", {"E3": {"checks_passed": 2.0}},
                    {"E3 :: holds": False, "E3 :: other": True})
    report = compare_sets(old, new, tolerance=0.5)
    (flip,) = report.regressions
    assert flip.metric == "holds"
    assert flip.note == "check flipped"
    # the pass->fail and fail->pass both surface; only the former gates
    assert len(report.deltas) == 2


def test_missing_row_gates():
    report = compare_sets(_rows(mcf={"cycles": 1.0}, art={"cycles": 1.0}),
                          _rows(mcf={"cycles": 1.0}))
    assert report.missing == ["art"]
    assert report.has_regressions
    assert "MISSING art" in report.render()


def test_mixed_kinds_rejected():
    with pytest.raises(CompareError):
        compare_sets(ResultSet("a", "store", {"r": {}}),
                     ResultSet("b", "results", {"r": {}}))
    with pytest.raises(CompareError):
        compare_sets(_rows(r={}), _rows(r={}), tolerance=-1.0)


def test_load_results_file(tmp_path):
    path = tmp_path / "results.json"
    path.write_text(json.dumps([{
        "experiment": "E3",
        "checks": [{"name": "a", "passed": True},
                   {"name": "b", "passed": False}],
        "manifest": {"total_seconds": 1.25},
    }]))
    loaded = load_result_set(str(path))
    assert loaded.kind == "results"
    assert loaded.cells["E3"] == {"checks_passed": 1, "checks_total": 2,
                                  "total_seconds": 1.25}
    assert loaded.checks == {"E3 :: a": True, "E3 :: b": False}


def test_load_manifest_file(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({
        "experiment": "E3", "total_seconds": 2.5, "cache_hits": 4,
        "phase_seconds": {"mcf:dtt:smt2": 1.5},
    }))
    loaded = load_result_set(str(path))
    assert loaded.kind == "manifest"
    assert loaded.cells["E3"]["phase:mcf:dtt:smt2"] == 1.5


def test_manifest_analysis_rows_gate(tmp_path):
    # schema v4: per-build analysis summaries become their own rows;
    # a new analyzer error regresses, and warning drift flags both ways
    def write(name, errors, warnings):
        path = tmp_path / name
        path.write_text(json.dumps({
            "experiment": "E3", "total_seconds": 1.0,
            "phase_seconds": {},
            "analysis": [{"workload": "mcf", "kind": "dtt",
                          "errors": errors, "warnings": warnings,
                          "codes": {}}],
        }))
        return str(path)

    clean = write("clean.json", 0, 0)
    loaded = load_result_set(clean)
    assert loaded.cells["analysis:mcf:dtt"] == {"analysis_errors": 0,
                                                "analysis_warnings": 0}
    assert metric_direction("analysis_errors") == "up_bad"
    report = compare_paths(clean, write("racy.json", 1, 2))
    flagged = {d.metric for d in report.regressions
               if d.row == "analysis:mcf:dtt"}
    assert flagged == {"analysis_errors", "analysis_warnings"}
    # errors falling is an improvement, never a regression
    report = compare_paths(write("was_racy.json", 1, 0), clean)
    assert not [d for d in report.regressions
                if d.metric == "analysis_errors"]


def test_load_rejects_junk(tmp_path):
    bad = tmp_path / "junk.json"
    bad.write_text("{\"neither\": true}")
    with pytest.raises(CompareError):
        load_result_set(str(bad))
    with pytest.raises(CompareError):
        load_result_set(str(tmp_path / "missing.json"))
    with pytest.raises(CompareError):
        load_result_set(str(tmp_path))  # a dir, but not a store


def test_store_compare_round_trip_and_derived_speedup(tmp_path):
    runner = SuiteRunner()
    runner.timed(SUITE["perlbmk"], "dtt")
    dtt_spec = RunSpec.for_timed("perlbmk", "dtt")
    base_spec = dtt_spec.baseline_spec()

    old_store = ResultStore(str(tmp_path / "old"))
    new_store = ResultStore(str(tmp_path / "new"))
    for store in (old_store, new_store):
        for spec in (dtt_spec, base_spec):
            result = runner.result_for(spec)
            engine = runner.engine_for(SUITE["perlbmk"], spec.build) \
                if spec.build == "dtt" else None
            store.put(spec, encode_timed(result, engine), elapsed=0.1)

    loaded = load_result_set(str(tmp_path / "old"))
    assert loaded.kind == "store"
    assert "speedup" in loaded.cells[dtt_spec.canonical()]

    report = compare_paths(str(tmp_path / "old"), str(tmp_path / "new"))
    assert isinstance(report, CompareReport)
    assert report.deltas == []          # identical stores: no changes
    assert not report.has_regressions
    assert json.loads(json.dumps(report.as_dict()))["regressions"] == 0


# -- schema v6 / bench_autoconvert: conversion-gate rows -----------------------


def test_autoconvert_metric_directions():
    assert metric_direction("accepted") == "down_bad"
    assert metric_direction("elimination") == "down_bad"
    assert metric_direction("hand_elimination") == "down_bad"
    assert metric_direction("rejected") == "up_bad"


def test_load_bench_autoconvert_file(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({
        "kind": "bench_autoconvert", "config": "smt2",
        "rows": {"mcf": {"considered": 1, "accepted": 1,
                         "baseline_cycles": 455998, "cycles": 76295,
                         "speedup": 5.976774, "elimination": 0.918016,
                         "analysis_errors": 0,
                         "hand_elimination": 0.918016}},
    }))
    loaded = load_result_set(str(path))
    assert loaded.kind == "bench"
    assert loaded.cells["mcf"]["speedup"] == 5.976774
    assert loaded.cells["mcf"]["accepted"] == 1


def test_manifest_autoconvert_rows_gate(tmp_path):
    def write(name, accepted, rejected, speedup, elimination):
        path = tmp_path / name
        path.write_text(json.dumps({
            "experiment": "convert", "total_seconds": 1.0,
            "phase_seconds": {},
            "autoconvert": [{
                "workload": "mcf", "considered": 2,
                "accepted": [{"region_start": 10}] * accepted,
                "rejected": rejected,
                "baseline_cycles": 455998, "cycles": 76295,
                "speedup": speedup, "elimination": elimination,
                "conversions": [],  # ignored: not numeric
            }],
        }))
        return str(path)

    good = write("good.json", 1, {}, 5.98, 0.918)
    loaded = load_result_set(good)
    row = loaded.cells["autoconvert:mcf"]
    assert row["accepted"] == 1 and row["rejected"] == 0
    worse = write("worse.json", 0, {"no-cycle-win": 1, "analysis-errors": 1},
                  1.0, 0.0)
    report = compare_paths(good, worse)
    flagged = {d.metric for d in report.regressions
               if d.row == "autoconvert:mcf"}
    assert {"accepted", "rejected", "speedup", "elimination"} <= flagged


def test_future_manifest_with_unknown_autoconvert_fields_loads(tmp_path):
    # forward compatibility: a v7 manifest whose audit rows carry fields
    # this version has never heard of must load, not crash
    path = tmp_path / "future.json"
    path.write_text(json.dumps({
        "experiment": "convert", "schema_version": 7,
        "total_seconds": 1.0, "phase_seconds": {},
        "autoconvert": [
            {"workload": "mcf", "speedup": 2.0,
             "novel_field": {"nested": [1, 2]}, "accepted": "not-a-list",
             "rejected": {"weird": "non-numeric"}},
            "not-even-a-dict",
        ],
    }))
    loaded = load_result_set(str(path))
    assert loaded.cells["autoconvert:mcf"] == {"speedup": 2.0, "rejected": 0}


def test_pre_v6_manifest_pair_reports_autoconvert_as_info(tmp_path):
    """Comparing a v6+ manifest (with autoconvert rows) against a pre-v6
    one (none at all) is a schema difference, not a conversion change:
    the rows surface as non-gating info deltas, never as missing."""
    def write(name, autoconvert):
        path = tmp_path / name
        payload = {"experiment": "convert", "total_seconds": 1.0,
                   "phase_seconds": {"p": 1.0}, "cache_hits": 1}
        if autoconvert is not None:
            payload["autoconvert"] = autoconvert
        path.write_text(json.dumps(payload))
        return str(path)

    audit = [{"workload": "mcf", "considered": 2, "accepted": [{}],
              "rejected": {}, "speedup": 5.9, "elimination": 0.9}]
    v6 = write("v6.json", audit)
    pre = write("pre.json", None)

    # v6 old, pre-v6 new: rows vanish, but only as info
    report = compare_paths(v6, pre)
    assert not report.has_regressions
    assert "autoconvert:mcf" not in report.missing
    (delta,) = [d for d in report.deltas
                if d.row == "autoconvert:mcf"
                and d.metric == "autoconvert_rows"]
    assert not delta.regression
    assert "pre-v6" in delta.note

    # pre-v6 old, v6 new: rows appear, also only as info
    report = compare_paths(pre, v6)
    assert not report.has_regressions
    assert "autoconvert:mcf" not in report.added
    (delta,) = [d for d in report.deltas
                if d.row == "autoconvert:mcf"
                and d.metric == "autoconvert_rows"]
    assert not delta.regression


def test_partial_autoconvert_disappearance_still_gates(tmp_path):
    """Both sides converted *something*: one workload's rows vanishing
    is a real conversion regression and must keep gating."""
    def write(name, workloads):
        path = tmp_path / name
        path.write_text(json.dumps({
            "experiment": "convert", "total_seconds": 1.0,
            "phase_seconds": {"p": 1.0},
            "autoconvert": [
                {"workload": w, "considered": 1, "accepted": [{}],
                 "rejected": {}, "speedup": 2.0, "elimination": 0.5}
                for w in workloads],
        }))
        return str(path)

    both = write("both.json", ["mcf", "equake"])
    one = write("one.json", ["mcf"])
    report = compare_paths(both, one)
    assert "autoconvert:equake" in report.missing
    assert report.has_regressions
