"""End-to-end CLI: parallel runs match serial, warm stores execute nothing.

These are the slowest tests in the tree (they run the full suite three
times); they are also the acceptance gate for the execution subsystem.
"""

import json

import pytest

from repro.harness.cli import main


def _stable(results):
    """Experiment results modulo wall-clock / manifest fields."""
    stripped = []
    for item in results:
        item = dict(item)
        item.pop("manifest", None)
        stripped.append(item)
    return stripped


@pytest.fixture(scope="module")
def full_runs(tmp_path_factory):
    """Run the whole suite serial, parallel-cold, and serial-warm."""
    root = tmp_path_factory.mktemp("cli-parallel")
    store = root / "store"
    serial_json = root / "serial.json"
    parallel_json = root / "parallel.json"
    warm_json = root / "warm.json"
    assert main(["run", "all", "--jobs", "1", "--no-store",
                 "--json", str(serial_json)]) == 0
    assert main(["run", "all", "--jobs", "2", "--store", str(store),
                 "--json", str(parallel_json)]) == 0
    assert main(["run", "all", "--jobs", "1", "--store", str(store),
                 "--json", str(warm_json)]) == 0
    return {
        "store": store,
        "serial": json.loads(serial_json.read_text()),
        "parallel": json.loads(parallel_json.read_text()),
        "warm": json.loads(warm_json.read_text()),
    }


def test_parallel_run_matches_serial(full_runs):
    assert _stable(full_runs["parallel"]) == _stable(full_runs["serial"])


def test_warm_store_run_matches_and_executes_nothing(full_runs):
    assert _stable(full_runs["warm"]) == _stable(full_runs["serial"])
    # zero simulations: no wall-clock accrued in any phase, and the
    # manifests account for every run as a store hit
    for item in full_runs["warm"]:
        manifest = item["manifest"]
        assert manifest["phase_seconds"] == {}
        assert manifest["store_misses"] == 0
    assert full_runs["warm"][-1]["manifest"]["store_hits"] > 0


def test_warm_pass_reports_store_hits(full_runs, capsys):
    out_json = full_runs["store"].parent / "again.json"
    assert main(["run", "E9", "--store", str(full_runs["store"]),
                 "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "0 executed" in out
    assert "from store" in out


def test_compare_cli_accepts_run_outputs(full_runs, tmp_path, capsys):
    serial_json = tmp_path / "a.json"
    parallel_json = tmp_path / "b.json"
    serial_json.write_text(json.dumps(full_runs["serial"]))
    parallel_json.write_text(json.dumps(full_runs["parallel"]))
    report_json = tmp_path / "report.json"
    assert main(["compare", str(serial_json), str(parallel_json),
                 "--json", str(report_json)]) == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out
    report = json.loads(report_json.read_text())
    assert report["regressions"] == 0
    assert report["missing_rows"] == []


def test_compare_cli_flags_regression(full_runs, tmp_path, capsys):
    doctored = json.loads(json.dumps(full_runs["serial"]))
    doctored[0]["checks"][0]["passed"] = False
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(full_runs["serial"]))
    new.write_text(json.dumps(doctored))
    assert main(["compare", str(old), str(new)]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_trace_out_forces_serial(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["run", "E9", "--jobs", "4", "--no-store",
                 "--trace-out", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "forcing --jobs 1" in out
    assert json.loads(trace.read_text())["traceEvents"]


def test_run_rejects_bad_jobs(capsys):
    assert main(["run", "E9", "--jobs", "0"]) == 2
    assert "--jobs must be >= 1" in capsys.readouterr().out
