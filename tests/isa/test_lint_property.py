"""Property: the linter never crashes and reachability is sound.

Random finalized programs (straight-line bodies with random forward
jumps/branches) are linted; the linter must complete, and any pc it marks
unreachable must genuinely never execute.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import Instruction
from repro.isa.lint import lint_program
from repro.isa.program import Program
from repro.machine.machine import Machine
from repro.machine.context import ContextState


@st.composite
def random_program(draw):
    """A finalized program of nops and forward jumps/branches + halt."""
    length = draw(st.integers(1, 20))
    program = Program()
    program.add_label("main")
    plan = []
    for pc in range(length):
        kind = draw(st.sampled_from(["nop", "jmp", "beqz"]))
        plan.append((pc, kind, draw(st.integers(pc + 1, length))))
    for pc, kind, target in plan:
        label = f"L{target}"
        if label not in program.labels:
            program.add_label(label, target)
        if kind == "nop":
            program.append(Instruction("nop"))
        elif kind == "jmp":
            program.append(Instruction("jmp", label=label))
        else:
            program.append(Instruction("beqz", 4, label=label))
    program.add_label(f"L{length}_halt")
    program.append(Instruction("halt"))
    return program.finalize()


@given(random_program())
@settings(max_examples=80, deadline=None)
def test_lint_completes_and_reachability_is_sound(program):
    findings = lint_program(program)
    unreachable = {f.pc for f in findings if f.code == "unreachable"}
    # execute and record the pcs actually visited (r4 == 0, so beqz taken;
    # that is one concrete path — every visited pc must NOT be marked)
    machine = Machine(program, max_instructions=10_000)
    visited = set()
    main = machine.main_context
    while main.state is ContextState.RUNNING:
        visited.add(main.pc)
        machine.step(main)
    assert not (visited & unreachable), (
        f"lint marked executed pcs unreachable: {visited & unreachable}"
    )
