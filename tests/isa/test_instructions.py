"""Instruction construction, validation, opcode metadata, operand roles."""

import pytest

from repro.errors import InvalidInstructionError
from repro.isa.instructions import (
    Instruction,
    OPCODES,
    OpClass,
    is_branch,
    is_load,
    is_store,
    is_triggering_store,
    operand_roles,
)


def test_opcode_table_is_nonempty_and_classified():
    assert len(OPCODES) > 50
    for info in OPCODES.values():
        assert isinstance(info.op_class, OpClass)
        assert set(info.signature) <= set("RIL")


def test_unknown_opcode_rejected():
    with pytest.raises(InvalidInstructionError):
        Instruction("frobnicate", 1, 2, 3)


def test_rrr_instruction():
    i = Instruction("add", 1, 2, 3)
    assert i.operands() == (1, 2, 3)
    assert i.op_class is OpClass.IALU


def test_register_out_of_range_rejected():
    with pytest.raises(InvalidInstructionError):
        Instruction("add", 1, 2, 99)


def test_register_slot_rejects_float():
    with pytest.raises(InvalidInstructionError):
        Instruction("add", 1, 2.5, 3)


def test_register_slot_rejects_bool():
    with pytest.raises(InvalidInstructionError):
        Instruction("add", 1, True, 3)


def test_immediate_accepts_int_and_float():
    assert Instruction("li", 4, 3).b == 3
    assert Instruction("li", 4, 2.75).b == 2.75


def test_immediate_rejects_string():
    with pytest.raises(InvalidInstructionError):
        Instruction("li", 4, "seven")


def test_branch_requires_label():
    with pytest.raises(InvalidInstructionError):
        Instruction("beq", 1, 2)
    i = Instruction("beq", 1, 2, label="target")
    assert i.label == "target"
    assert i.target is None  # unresolved until finalize


def test_non_branch_rejects_label():
    with pytest.raises(InvalidInstructionError):
        Instruction("add", 1, 2, 3, label="oops")


def test_too_many_operands_rejected():
    with pytest.raises(InvalidInstructionError):
        Instruction("mov", 1, 2, 3)


def test_nullary_instructions():
    for op in ("nop", "halt", "ret", "treturn"):
        i = Instruction(op)
        assert i.operands() == ()


def test_equality_ignores_resolution_state():
    a = Instruction("jmp", label="x")
    b = Instruction("jmp", label="x")
    a.target = 5
    assert a == b
    assert hash(a) == hash(b)


def test_inequality_on_different_operands():
    assert Instruction("add", 1, 2, 3) != Instruction("add", 1, 2, 4)
    assert Instruction("add", 1, 2, 3) != Instruction("sub", 1, 2, 3)


# -- classification helpers -----------------------------------------------


def test_is_load():
    assert is_load("ld") and is_load("ldx")
    assert not is_load("st")


def test_is_store_includes_triggering():
    for op in ("st", "stx", "tst", "tstx"):
        assert is_store(op)
    assert not is_store("ld")


def test_is_triggering_store():
    assert is_triggering_store("tst") and is_triggering_store("tstx")
    assert not is_triggering_store("st")


def test_is_branch():
    for op in ("beq", "bne", "blt", "ble", "bgt", "bge", "beqz", "bnez"):
        assert is_branch(op)
    for op in ("jmp", "call", "ret"):
        assert not is_branch(op)


# -- operand roles -----------------------------------------------------------


@pytest.mark.parametrize("op,dest,sources", [
    ("add", "a", ("b", "c")),
    ("addi", "a", ("b",)),
    ("li", "a", ()),
    ("mov", "a", ("b",)),
    ("ld", "a", ("b",)),
    ("ldx", "a", ("b", "c")),
    ("st", None, ("a", "b")),
    ("stx", None, ("a", "b", "c")),
    ("tst", None, ("a", "b")),
    ("beq", None, ("a", "b")),
    ("beqz", None, ("a",)),
    ("out", None, ("a",)),
    ("jmp", None, ()),
    ("fsqrt", "a", ("b",)),
])
def test_operand_roles(op, dest, sources):
    assert operand_roles(op) == (dest, sources)


def test_operand_roles_unknown_opcode():
    with pytest.raises(InvalidInstructionError):
        operand_roles("bogus")


def test_every_opcode_has_roles():
    for op in OPCODES:
        dest, sources = operand_roles(op)
        if dest is not None:
            assert dest == "a"
