"""Builder DSL: register allocation, structured control flow, threads.

Control-flow constructs are tested by *executing* what they emit — the
builder's contract is the behavior of the generated code, not its exact
instruction sequence.
"""

import pytest

from repro.errors import BuilderError
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import NUM_REGISTERS
from repro.machine.machine import Machine, run_to_completion


def run_main(build_body):
    """Build main around ``build_body(b)`` and run it; returns output."""
    b = ProgramBuilder()
    with b.function("main"):
        build_body(b)
        b.halt()
    return run_to_completion(Machine(b.build()))


# -- register allocation -----------------------------------------------------


def test_reg_allocates_lowest_free_nonreserved():
    b = ProgramBuilder()
    first = b.reg()
    assert int(first) == 0
    second = b.reg()
    # r1..r3 are reserved for trigger arguments
    assert int(second) == 4


def test_free_allows_reuse():
    b = ProgramBuilder()
    r = b.reg()
    b.free(r)
    assert int(b.reg()) == int(r)


def test_free_unallocated_rejected():
    b = ProgramBuilder()
    with pytest.raises(BuilderError):
        b.free(9)


def test_scratch_scope_frees_on_exit():
    b = ProgramBuilder()
    with b.scratch(3) as regs:
        assert len(set(map(int, regs))) == 3
    again = b.reg()
    assert int(again) == min(map(int, regs))


def test_pool_exhaustion_reports_holders():
    b = ProgramBuilder()
    for _ in range(NUM_REGISTERS - 3):  # 3 reserved
        b.reg("held")
    with pytest.raises(BuilderError, match="held"):
        b.reg()


def test_trigger_registers_never_allocated():
    b = ProgramBuilder()
    allocated = {int(b.reg()) for _ in range(NUM_REGISTERS - 3)}
    assert int(b.trigger_addr) not in allocated
    assert int(b.trigger_value) not in allocated
    assert int(b.trigger_old_value) not in allocated


# -- structured control flow -----------------------------------------------------


def test_for_range_counts_up():
    def body(b):
        with b.scratch(2) as (i, acc):
            b.li(acc, 0)
            with b.for_range(i, 0, 5):
                b.add(acc, acc, i)
            b.out(acc)

    assert run_main(body) == [0 + 1 + 2 + 3 + 4]


def test_for_range_with_step():
    def body(b):
        with b.scratch(2) as (i, acc):
            b.li(acc, 0)
            with b.for_range(i, 0, 10, step=3):
                b.addi(acc, acc, 1)
            b.out(acc)

    assert run_main(body) == [4]  # 0, 3, 6, 9


def test_for_range_counts_down():
    def body(b):
        with b.scratch(2) as (i, acc):
            b.li(acc, 0)
            with b.for_range(i, 5, 0, step=-1):
                b.add(acc, acc, i)
            b.out(acc)

    assert run_main(body) == [5 + 4 + 3 + 2 + 1]


def test_for_range_register_bound():
    def body(b):
        with b.scratch(3) as (i, n, acc):
            b.li(n, 4)
            b.li(acc, 0)
            with b.for_range(i, 0, n):
                b.addi(acc, acc, 2)
            b.out(acc)

    assert run_main(body) == [8]


def test_for_range_empty_when_start_ge_stop():
    def body(b):
        with b.scratch(2) as (i, acc):
            b.li(acc, 99)
            with b.for_range(i, 5, 5):
                b.li(acc, -1)
            b.out(acc)

    assert run_main(body) == [99]


def test_for_range_zero_step_rejected():
    b = ProgramBuilder()
    with b.function("main"):
        i = b.reg()
        with pytest.raises(BuilderError):
            with b.for_range(i, 0, 5, step=0):
                pass
        b.halt()


def test_loop_with_break():
    def body(b):
        with b.scratch(1) as (i,):
            b.li(i, 0)
            with b.loop() as loop:
                b.addi(i, i, 1)
                with b.scratch(1) as (c,):
                    b.sgti(c, i, 6)
                    loop.break_if_nonzero(c)
            b.out(i)

    assert run_main(body) == [7]


def test_loop_with_continue():
    def body(b):
        # sum odd numbers below 10 using continue
        with b.scratch(2) as (i, acc):
            b.li(i, 0)
            b.li(acc, 0)
            with b.loop() as loop:
                b.addi(i, i, 1)
                with b.scratch(1) as (c,):
                    b.sgti(c, i, 9)
                    loop.break_if_nonzero(c)
                with b.scratch(2) as (m, two):
                    b.li(two, 2)
                    b.imod(m, i, two)
                    loop.continue_if_zero(m)
                b.add(acc, acc, i)
            b.out(acc)

    assert run_main(body) == [1 + 3 + 5 + 7 + 9]


def test_if_without_else():
    def body(b):
        with b.scratch(2) as (c, out):
            b.li(out, 0)
            b.li(c, 1)
            with b.if_(c):
                b.li(out, 10)
            b.li(c, 0)
            with b.if_(c):
                b.li(out, 20)
            b.out(out)

    assert run_main(body) == [10]


def test_if_else_both_arms():
    def body(b):
        for cond, expected in ((1, 1), (0, 2)):
            with b.scratch(2) as (c, out):
                b.li(c, cond)
                with b.if_(c) as branch:
                    b.li(out, 1)
                    branch.else_()
                    b.li(out, 2)
                b.out(out)

    assert run_main(body) == [1, 2]


def test_if_zero():
    def body(b):
        with b.scratch(2) as (c, out):
            b.li(c, 0)
            b.li(out, 0)
            with b.if_zero(c) as branch:
                b.li(out, 5)
                branch.else_()
                b.li(out, 6)
            b.out(out)

    assert run_main(body) == [5]


def test_else_called_twice_rejected():
    b = ProgramBuilder()
    with b.function("main"):
        c = b.reg()
        b.li(c, 1)
        with pytest.raises(BuilderError):
            with b.if_(c) as branch:
                branch.else_()
                branch.else_()
        b.halt()


# -- functions, threads, calls -----------------------------------------------------


def test_call_and_ret():
    b = ProgramBuilder()
    result = b.global_reg("result")
    with b.function("main"):
        b.call("double_it")
        b.out(result)
        b.halt()
    with b.function("double_it"):
        b.li(result, 21)
        b.add(result, result, result)
        b.ret()
    assert run_to_completion(Machine(b.build())) == [42]


def test_function_ranges_recorded():
    b = ProgramBuilder()
    with b.function("main"):
        b.nop()
        b.halt()
    program = b.build()
    assert program.functions[0].name == "main"
    assert 0 in program.functions[0]


def test_unclosed_function_rejected_at_build():
    b = ProgramBuilder()
    cm = b.function("main")
    cm.__enter__()
    b.halt()
    # never exited; simulate misuse by poking internals is not possible
    # through the public API, so check build() catches the open scope
    with pytest.raises(BuilderError):
        b.build()


def test_thread_declares_and_labels():
    b = ProgramBuilder()
    with b.thread("worker"):
        b.treturn()
    with b.function("main"):
        b.tcheck_thread("worker")
        b.halt()
    program = b.build()
    assert "worker" in program.threads
    assert program.thread_entry_pc("worker") == 0


def test_tcheck_thread_requires_prior_declaration():
    b = ProgramBuilder()
    with b.function("main"):
        with pytest.raises(BuilderError):
            b.tcheck_thread("ghost")
        b.halt()


def test_tcheck_thread_ids_follow_declaration_order():
    b = ProgramBuilder()
    with b.thread("first"):
        b.treturn()
    with b.thread("second"):
        b.treturn()
    with b.function("main"):
        pc1 = b.tcheck_thread("first")
        pc2 = b.tcheck_thread("second")
        b.halt()
    program = b.build()
    assert program.instructions[pc1].a == 0
    assert program.instructions[pc2].a == 1


def test_build_twice_rejected():
    b = ProgramBuilder()
    with b.function("main"):
        b.halt()
    b.build()
    with pytest.raises(BuilderError):
        b.build()


def test_emit_after_build_rejected():
    b = ProgramBuilder()
    with b.function("main"):
        b.halt()
    b.build()
    with pytest.raises(BuilderError):
        b.nop()


def test_la_resolves_to_data_address():
    b = ProgramBuilder()
    b.data("xs", [7, 8, 9])
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs", offset=1)
            b.ld(v, base, 0)
            b.out(v)
        b.halt()
    assert run_to_completion(Machine(b.build())) == [8]


def test_fresh_labels_are_unique():
    b = ProgramBuilder()
    labels = {b.fresh_label("x") for _ in range(100)}
    assert len(labels) == 100
