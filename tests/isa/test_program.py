"""Program construction, finalization, layout, and symbol patches."""

import pytest

from repro.errors import ProgramValidationError
from repro.isa.instructions import Instruction
from repro.isa.program import DataItem, Program, data_layout


def _minimal() -> Program:
    p = Program()
    p.add_label("main")
    p.append(Instruction("halt"))
    return p


def test_empty_program_rejected():
    with pytest.raises(ProgramValidationError):
        Program().finalize()


def test_missing_entry_rejected():
    p = Program()
    p.append(Instruction("halt"))
    with pytest.raises(ProgramValidationError):
        p.finalize()


def test_minimal_program_finalizes():
    p = _minimal().finalize()
    assert p.finalized
    assert p.entry_pc == 0
    assert len(p) == 1


def test_finalize_is_idempotent():
    p = _minimal()
    assert p.finalize() is p.finalize()


def test_finalized_program_is_immutable():
    p = _minimal().finalize()
    with pytest.raises(ProgramValidationError):
        p.append(Instruction("nop"))
    with pytest.raises(ProgramValidationError):
        p.add_label("late")
    with pytest.raises(ProgramValidationError):
        p.add_data("late", [1])


def test_duplicate_label_rejected():
    p = Program()
    p.add_label("x")
    with pytest.raises(ProgramValidationError):
        p.add_label("x")


def test_undefined_branch_label_rejected():
    p = Program()
    p.add_label("main")
    p.append(Instruction("jmp", label="nowhere"))
    with pytest.raises(ProgramValidationError):
        p.finalize()


def test_branch_target_resolution():
    p = Program()
    p.add_label("main")
    p.append(Instruction("jmp", label="end"))
    p.append(Instruction("nop"))
    p.add_label("end", 2)
    p.append(Instruction("halt"))
    p.finalize()
    assert p.instructions[0].target == 2


def test_label_pointing_past_end_rejected_for_branches():
    p = Program()
    p.add_label("main")
    p.append(Instruction("jmp", label="off_end"))
    p.add_label("off_end")  # binds to len(instructions) == 1 ... then:
    p.append(Instruction("halt"))
    # off_end == 1 which is valid; rebuild with a truly past-end label
    q = Program()
    q.add_label("main")
    q.append(Instruction("jmp", label="past"))
    q.add_label("past", 5)
    with pytest.raises(ProgramValidationError):
        q.finalize()


def test_duplicate_data_item_rejected():
    p = Program()
    p.add_data("xs", [1])
    with pytest.raises(ProgramValidationError):
        p.add_data("xs", [2])


def test_thread_declaration_and_entry_pc():
    p = Program()
    p.declare_thread("worker", "wentry")
    p.add_label("wentry")
    p.append(Instruction("treturn"))
    p.add_label("main", 1)
    p.append(Instruction("halt"))
    p.finalize()
    assert p.thread_entry_pc("worker") == 0


def test_thread_with_undefined_entry_rejected():
    p = Program()
    p.declare_thread("worker", "missing")
    p.add_label("main")
    p.append(Instruction("treturn"))
    with pytest.raises(ProgramValidationError):
        p.finalize()


def test_threads_without_treturn_rejected():
    p = Program()
    p.declare_thread("worker", "main")
    p.add_label("main")
    p.append(Instruction("halt"))
    with pytest.raises(ProgramValidationError):
        p.finalize()


def test_unknown_thread_entry_query():
    p = _minimal().finalize()
    with pytest.raises(ProgramValidationError):
        p.thread_entry_pc("ghost")


# -- layout and symbol patches ----------------------------------------------


def test_data_layout_alignment():
    items = [DataItem("a", [1] * 5), DataItem("b", [2] * 20), DataItem("c", [3])]
    layout = data_layout(items, base=64, align=16)
    assert layout["a"] == (64, 5)
    assert layout["b"] == (80, 20)  # aligned up from 69
    assert layout["c"] == (112, 1)  # aligned up from 100


def test_data_layout_empty_item_takes_space():
    layout = data_layout([DataItem("empty", []), DataItem("next", [1])],
                         base=0, align=16)
    assert layout["empty"][0] != layout["next"][0]


def test_symbol_patch_applied_at_finalize():
    p = Program()
    p.add_data("xs", [10, 20, 30])
    p.add_label("main")
    pc = p.append(Instruction("li", 4, 0))
    p.add_symbol_patch(pc, "b", "xs", offset=2)
    p.append(Instruction("halt"))
    p.finalize()
    assert p.instructions[0].b == p.address_of("xs") + 2


def test_symbol_patch_unknown_symbol_rejected():
    p = Program()
    p.add_label("main")
    pc = p.append(Instruction("li", 4, 0))
    p.add_symbol_patch(pc, "b", "ghost")
    p.append(Instruction("halt"))
    with pytest.raises(ProgramValidationError):
        p.finalize()


def test_symbol_patch_bad_slot_rejected():
    p = Program()
    with pytest.raises(ProgramValidationError):
        p.add_symbol_patch(0, "d", "xs")


def test_address_of_requires_finalized():
    p = Program()
    p.add_data("xs", [1])
    with pytest.raises(ProgramValidationError):
        p.address_of("xs")


def test_address_and_size_of():
    p = _minimal()
    p.add_data("xs", [1, 2, 3])
    p.finalize()
    assert p.size_of("xs") == 3
    assert p.address_of("xs") >= Program.DATA_BASE
    assert p.address_of("xs", 1) == p.address_of("xs") + 1
    with pytest.raises(ProgramValidationError):
        p.address_of("nope")
    with pytest.raises(ProgramValidationError):
        p.size_of("nope")


def test_data_items_never_share_a_cache_line():
    p = _minimal()
    p.add_data("a", [1] * 3)
    p.add_data("b", [2] * 3)
    p.finalize()
    line = Program.DATA_ALIGN
    assert p.address_of("a") // line != p.address_of("b") // line


# -- queries -------------------------------------------------------------------


def test_labels_at_and_function_at():
    p = Program()
    p.add_label("main")
    p.append(Instruction("nop"))
    p.append(Instruction("halt"))
    p.add_function("main", 0, 2)
    p.finalize()
    assert p.labels_at(0) == ["main"]
    assert p.labels_at(1) == []
    assert p.function_at(1).name == "main"
    assert p.function_at(5) is None


def test_static_counts_by_class():
    p = Program()
    p.add_label("main")
    p.append(Instruction("li", 4, 1))
    p.append(Instruction("add", 4, 4, 4))
    p.append(Instruction("halt"))
    counts = p.static_counts_by_class()
    from repro.isa.instructions import OpClass

    assert counts[OpClass.IALU] == 2
    assert counts[OpClass.SYS] == 1
