"""Program linter: every check, plus cleanliness of the real suite."""

import pytest

from repro.errors import ProgramValidationError
from repro.isa.builder import ProgramBuilder
from repro.isa.lint import ERROR, WARNING, errors_only, lint_program
from repro.isa.program import Program
from repro.isa.instructions import Instruction
from repro.workloads.suite import SUITE


def codes(findings):
    return [f.code for f in findings]


def test_requires_finalized_program():
    with pytest.raises(ProgramValidationError):
        lint_program(Program())


def test_clean_program_has_no_findings():
    b = ProgramBuilder()
    with b.thread("worker"):
        b.nop()
        b.treturn()
    with b.function("main"):
        b.tcheck_thread("worker")
        b.halt()
    assert lint_program(b.build()) == []


def test_no_halt_detected():
    p = Program()
    p.add_label("main")
    p.append(Instruction("nop"))
    p.finalize()
    findings = lint_program(p)
    assert "no-halt" in codes(findings)
    assert findings[0].severity == ERROR


def test_thread_missing_treturn_detected():
    # authored without the builder: a thread whose body has no treturn,
    # while a treturn exists elsewhere (so finalize passes)
    p = Program()
    p.declare_thread("worker", "wentry")
    p.add_label("wentry")
    p.append(Instruction("jmp", label="main"))
    p.add_label("main", 1)
    p.append(Instruction("halt"))
    p.append(Instruction("treturn"))  # stray treturn, not in the body
    p.finalize()
    assert "thread-missing-treturn" in codes(lint_program(p))


def test_halt_in_thread_detected():
    b = ProgramBuilder()
    with b.thread("worker"):
        b.halt()
        b.treturn()
    with b.function("main"):
        b.halt()
    findings = lint_program(b.build())
    assert "halt-in-thread" in codes(findings)


def test_tstore_in_thread_warned():
    b = ProgramBuilder()
    b.data("xs", [0])
    with b.thread("worker"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 1)
            b.tst(v, base, 0)
        b.treturn()
    with b.function("main"):
        b.halt()
    findings = lint_program(b.build())
    assert "tstore-in-thread" in codes(findings)
    finding = next(f for f in findings if f.code == "tstore-in-thread")
    assert finding.severity == WARNING


def test_out_in_thread_warned():
    b = ProgramBuilder()
    with b.thread("worker"):
        with b.scratch(1) as (v,):
            b.li(v, 1)
            b.out(v)
        b.treturn()
    with b.function("main"):
        b.halt()
    assert "out-in-thread" in codes(lint_program(b.build()))


def test_tcheck_bad_tid_detected():
    b = ProgramBuilder()
    with b.thread("worker"):
        b.treturn()
    with b.function("main"):
        b.tcheck(7)
        b.halt()
    findings = lint_program(b.build())
    assert "tcheck-bad-tid" in codes(findings)


def test_tcheck_without_threads_warned():
    b = ProgramBuilder()
    with b.function("main"):
        b.tcheck(0)
        b.halt()
    assert "tcheck-without-threads" in codes(lint_program(b.build()))


def test_unreachable_code_detected():
    b = ProgramBuilder()
    with b.function("main"):
        b.jmp("end")
        b.nop()  # unreachable
        b.label("end")
        b.halt()
    findings = lint_program(b.build())
    unreachable = [f for f in findings if f.code == "unreachable"]
    assert len(unreachable) == 1
    assert unreachable[0].pc == 1


def test_branch_fallthrough_is_reachable():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.li(r, 0)
            b.beqz(r, "end")
            b.nop()  # fallthrough: reachable
        b.label("end")
        b.halt()
    assert "unreachable" not in codes(lint_program(b.build()))


def test_call_return_path_is_reachable():
    b = ProgramBuilder()
    with b.function("main"):
        b.call("sub")
        b.halt()  # after the call: reachable via ret
    with b.function("sub"):
        b.nop()
        b.ret()
    assert "unreachable" not in codes(lint_program(b.build()))


def test_never_returning_callee_makes_fallthrough_unreachable():
    # per-call-target return sites: code after a call to a non-returning
    # subroutine is dead, and the old any-ret-reaches-any-call
    # approximation could not see it
    b = ProgramBuilder()
    with b.function("main"):
        b.call("spin")
        b.nop()  # dead: spin never returns
        b.halt()
    with b.function("spin"):
        b.label("loop")
        b.jmp("loop")
    findings = lint_program(b.build())
    unreachable = {f.pc for f in findings if f.code == "unreachable"}
    assert {1, 2} <= unreachable


def test_shared_subroutine_returns_to_each_caller():
    # one subroutine, two call sites: both return sites stay reachable
    # and nothing else gets resurrected by the shared ret
    b = ProgramBuilder()
    with b.function("main"):
        b.call("sub")   # pc 0
        b.call("sub")   # pc 1
        b.halt()        # pc 2
    with b.function("sub"):
        b.nop()
        b.ret()
    assert "unreachable" not in codes(lint_program(b.build()))


def test_errors_only_filter():
    b = ProgramBuilder()
    with b.function("main"):
        b.tcheck(0)  # warning
        b.halt()
    findings = lint_program(b.build())
    assert errors_only(findings) == []
    assert findings  # warning present


def test_errors_sort_first():
    p = Program()
    p.add_label("main")
    p.append(Instruction("tcheck", 0))  # warning (no threads)
    p.finalize()  # also no halt -> error
    findings = lint_program(p)
    assert findings[0].severity == ERROR


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_builds_are_lint_clean(name):
    """Every shipped workload build must be free of lint *errors* (the
    gzip/bzip2-style warnings about nothing are also absent today)."""
    workload = SUITE[name]
    inp = workload.make_input()
    assert errors_only(lint_program(workload.build_baseline(inp))) == []
    assert errors_only(lint_program(workload.build_dtt(inp).program)) == []
