"""Two-way assembler: formatting, parsing, errors, and round-trip.

The round-trip property (parse(format(p)) reproduces p) is checked both
on hand-written programs and on hypothesis-generated random programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblerError
from repro.isa.assembler import (
    format_instruction,
    format_program,
    parse_instruction,
    parse_program,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Instruction, OPCODES
from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS


# -- single instructions ----------------------------------------------------


@pytest.mark.parametrize("text,op", [
    ("add r1, r2, r3", "add"),
    ("li r4, 17", "li"),
    ("li r4, -2.5", "li"),
    ("ld r5, r6, 12", "ld"),
    ("beq r1, r2, loop_top", "beq"),
    ("jmp end", "jmp"),
    ("halt", "halt"),
    ("tcheck 0", "tcheck"),
])
def test_parse_instruction_accepts(text, op):
    assert parse_instruction(text).op == op


@pytest.mark.parametrize("text", [
    "",
    "bogus r1, r2",
    "add r1, r2",          # too few operands
    "add r1, r2, r3, r4",  # too many
    "add r1, r2, 7",       # immediate where register expected
    "li r1, banana",
    "add r99, r2, r3",     # register out of range
])
def test_parse_instruction_rejects(text):
    with pytest.raises(AssemblerError):
        parse_instruction(text)


def test_instruction_round_trip_each_shape():
    cases = [
        Instruction("add", 1, 2, 3),
        Instruction("li", 4, -17),
        Instruction("li", 4, 3.25),
        Instruction("ld", 5, 6, 100),
        Instruction("stx", 7, 8, 9),
        Instruction("beqz", 2, label="somewhere"),
        Instruction("jmp", label="x"),
        Instruction("tcheck", 1),
        Instruction("halt"),
    ]
    for instruction in cases:
        assert parse_instruction(format_instruction(instruction)) == instruction


# -- whole programs ------------------------------------------------------------


def test_program_round_trip(sum_program):
    text = format_program(sum_program)
    parsed = parse_program(text).finalize()
    assert parsed.instructions == sum_program.instructions
    assert parsed.labels == sum_program.labels
    assert parsed.entry_label == sum_program.entry_label
    assert [(d.name, d.values) for d in parsed.data_items] == [
        (d.name, d.values) for d in sum_program.data_items
    ]


def test_program_round_trip_with_threads():
    b = ProgramBuilder()
    b.data("xs", [1.5, 2, 3])
    with b.thread("worker"):
        b.treturn()
    with b.function("main"):
        b.tcheck_thread("worker")
        b.halt()
    program = b.build()
    parsed = parse_program(format_program(program)).finalize()
    assert parsed.threads == program.threads
    assert parsed.instructions == program.instructions
    assert [(f.name, f.start, f.end) for f in parsed.functions] == [
        (f.name, f.start, f.end) for f in program.functions
    ]


def test_comments_and_blank_lines_ignored():
    text = """
    ; a comment
    .entry main
    # another comment
    main:
        li r4, 1   ; trailing comment
        halt
    """
    program = parse_program(text).finalize()
    assert len(program) == 2


def test_unknown_directive_rejected():
    with pytest.raises(AssemblerError):
        parse_program(".frob x")


def test_bad_directive_arity_rejected():
    with pytest.raises(AssemblerError):
        parse_program(".entry a b")
    with pytest.raises(AssemblerError):
        parse_program(".thread onlyname")
    with pytest.raises(AssemblerError):
        parse_program(".func f 0")
    with pytest.raises(AssemblerError):
        parse_program(".func f zero one")


def test_empty_label_rejected():
    with pytest.raises(AssemblerError):
        parse_program("  :\n")


def test_error_reports_line_number():
    with pytest.raises(AssemblerError) as excinfo:
        parse_program("main:\n    halt\n    bogus r1\n")
    assert "line 3" in str(excinfo.value)


def test_format_nonfinalized_with_patches_rejected():
    b = ProgramBuilder()
    b.data("xs", [1])
    with b.function("main"):
        with b.scratch(1) as (r,):
            b.la(r, "xs")
        b.halt()
    with pytest.raises(AssemblerError):
        format_program(b.program)  # not finalized, pending patch


def test_trailing_label_round_trips():
    p = Program()
    p.add_label("main")
    p.append(Instruction("halt"))
    p.add_label("end")  # bound at len(instructions)
    p.finalize()
    parsed = parse_program(format_program(p)).finalize()
    assert parsed.labels == p.labels


# -- property: random-program round trip ---------------------------------------


_SIMPLE_OPS = [op for op, info in OPCODES.items()
               if "L" not in info.signature and op not in ("treturn",)]


@st.composite
def random_instruction(draw):
    op = draw(st.sampled_from(_SIMPLE_OPS))
    info = OPCODES[op]
    slots = []
    for code in info.signature:
        if code == "R":
            slots.append(draw(st.integers(0, NUM_REGISTERS - 1)))
        elif code == "I":
            value = draw(st.one_of(
                st.integers(-10**6, 10**6),
                st.floats(allow_nan=False, allow_infinity=False,
                          width=32),
            ))
            slots.append(value)
    while len(slots) < 3:
        slots.append(None)
    return Instruction(op, slots[0], slots[1], slots[2])


@given(st.lists(random_instruction(), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_random_program_round_trip(instructions):
    program = Program()
    program.add_label("main")
    for instruction in instructions:
        program.append(instruction)
    program.append(Instruction("halt"))
    program.finalize()
    parsed = parse_program(format_program(program)).finalize()
    assert parsed.instructions == program.instructions
