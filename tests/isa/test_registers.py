"""Register names, indices, and the trigger-argument convention."""

import pytest

from repro.errors import InvalidRegisterError
from repro.isa.registers import (
    NUM_REGISTERS,
    Reg,
    TRIGGER_ADDR_REG,
    TRIGGER_OLD_VALUE_REG,
    TRIGGER_VALUE_REG,
    register_index,
    register_name,
)


def test_reg_is_an_int():
    r = Reg(5)
    assert r == 5
    assert isinstance(r, int)
    assert repr(r) == "r5"


def test_reg_rejects_out_of_range():
    with pytest.raises(InvalidRegisterError):
        Reg(NUM_REGISTERS)
    with pytest.raises(InvalidRegisterError):
        Reg(-1)


@pytest.mark.parametrize("index", [0, 1, 15, NUM_REGISTERS - 1])
def test_name_index_round_trip(index):
    assert register_index(register_name(index)) == index


@pytest.mark.parametrize("bad", ["", "x3", "r", "r-1", "rfoo", "3"])
def test_register_index_rejects_malformed(bad):
    with pytest.raises(InvalidRegisterError):
        register_index(bad)


def test_register_index_rejects_out_of_range():
    with pytest.raises(InvalidRegisterError):
        register_index(f"r{NUM_REGISTERS}")


def test_register_name_rejects_out_of_range():
    with pytest.raises(InvalidRegisterError):
        register_name(NUM_REGISTERS)


def test_trigger_convention_registers_are_distinct_and_low():
    convention = {TRIGGER_ADDR_REG, TRIGGER_VALUE_REG, TRIGGER_OLD_VALUE_REG}
    assert len(convention) == 3
    assert all(0 < r < NUM_REGISTERS for r in convention)


def test_reg_hashes_like_int():
    assert hash(Reg(7)) == hash(7)
    assert {Reg(7): "x"}[7] == "x"
