"""Loader: data placement and non-polluting stores."""

import pytest

from repro.errors import ProgramValidationError
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.machine.loader import load_program
from repro.machine.memory import Memory


def test_loader_requires_finalized():
    with pytest.raises(ProgramValidationError):
        load_program(Program(), Memory())


def test_loader_places_values_at_layout_addresses():
    b = ProgramBuilder()
    b.data("a", [1, 2, 3])
    b.data("b", [4.5])
    with b.function("main"):
        b.halt()
    program = b.build()
    memory = Memory()
    table = load_program(program, memory)
    assert table == program.layout
    base_a, size_a = table["a"]
    assert memory.read_block(base_a, size_a) == [1, 2, 3]
    assert memory.peek(table["b"][0]) == 4.5


def test_loader_traffic_is_uncounted():
    b = ProgramBuilder()
    b.data("a", list(range(100)))
    with b.function("main"):
        b.halt()
    memory = Memory()
    load_program(b.build(), memory)
    assert memory.store_count == 0
    assert memory.load_count == 0


def test_machine_loads_program_on_construction():
    from repro.machine.machine import Machine

    b = ProgramBuilder()
    b.data("xs", [7])
    with b.function("main"):
        b.halt()
    program = b.build()
    machine = Machine(program)
    assert machine.memory.peek(program.address_of("xs")) == 7
