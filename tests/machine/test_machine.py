"""Functional semantics of every DTIR opcode, plus machine-level faults."""

import pytest

from repro.errors import (
    ContextError,
    ExecutionFault,
    ExecutionLimitExceeded,
    ProgramValidationError,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.isa.instructions import Instruction
from repro.machine.machine import Machine, run_to_completion


def eval_binary(op, lhs, rhs):
    """Run ``out(op(lhs, rhs))`` and return the result."""
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(3) as (x, y, z):
            b.li(x, lhs)
            b.li(y, rhs)
            b.emit(op, z, x, y)
            b.out(z)
        b.halt()
    return run_to_completion(Machine(b.build()))[0]


def eval_binary_imm(op, lhs, imm):
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (x, z):
            b.li(x, lhs)
            b.emit(op, z, x, imm)
            b.out(z)
        b.halt()
    return run_to_completion(Machine(b.build()))[0]


def eval_unary(op, value):
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (x, z):
            b.li(x, value)
            b.emit(op, z, x)
            b.out(z)
        b.halt()
    return run_to_completion(Machine(b.build()))[0]


# -- integer / generic ALU -----------------------------------------------------


@pytest.mark.parametrize("op,lhs,rhs,expected", [
    ("add", 3, 4, 7),
    ("sub", 3, 4, -1),
    ("mul", -3, 4, -12),
    ("idiv", 7, 2, 3),
    ("idiv", -7, 2, -3),     # truncation toward zero, not floor
    ("idiv", 7, -2, -3),
    ("imod", 7, 2, 1),
    ("imod", -7, 2, -1),     # C-style: sign of the dividend
    ("and_", 0b1100, 0b1010, 0b1000),
    ("or_", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("shl", 3, 2, 12),
    ("shr", 12, 2, 3),
    ("slt", 1, 2, 1),
    ("slt", 2, 2, 0),
    ("sle", 2, 2, 1),
    ("sgt", 3, 2, 1),
    ("sge", 2, 2, 1),
    ("seq", 5, 5, 1),
    ("seq", 5, 6, 0),
    ("sne", 5, 6, 1),
])
def test_binary_integer_ops(op, lhs, rhs, expected):
    assert eval_binary(op, lhs, rhs) == expected


@pytest.mark.parametrize("op,lhs,imm,expected", [
    ("addi", 3, 4, 7),
    ("subi", 3, 4, -1),
    ("muli", 3, -4, -12),
    ("andi", 0b1100, 0b1010, 0b1000),
    ("ori", 0b1100, 0b1010, 0b1110),
    ("xori", 0b1100, 0b1010, 0b0110),
    ("shli", 3, 2, 12),
    ("shri", 12, 2, 3),
    ("slti", 1, 2, 1),
    ("sgti", 3, 2, 1),
    ("seqi", 5, 5, 1),
])
def test_binary_immediate_ops(op, lhs, imm, expected):
    assert eval_binary_imm(op, lhs, imm) == expected


def test_division_by_zero_faults():
    with pytest.raises(ExecutionFault):
        eval_binary("idiv", 1, 0)
    with pytest.raises(ExecutionFault):
        eval_binary("imod", 1, 0)
    with pytest.raises(ExecutionFault):
        eval_binary("fdiv", 1.0, 0.0)


# -- floating point ------------------------------------------------------------


@pytest.mark.parametrize("op,lhs,rhs,expected", [
    ("fadd", 1.5, 2.25, 3.75),
    ("fsub", 1.5, 2.25, -0.75),
    ("fmul", 1.5, 2.0, 3.0),
    ("fdiv", 3.0, 2.0, 1.5),
])
def test_binary_float_ops(op, lhs, rhs, expected):
    assert eval_binary(op, lhs, rhs) == expected


def test_float_ops_coerce_integer_operands():
    assert eval_binary("fdiv", 3, 2) == 1.5


@pytest.mark.parametrize("op,value,expected", [
    ("fsqrt", 9.0, 3.0),
    ("fabs", -2.5, 2.5),
    ("fneg", 2.5, -2.5),
    ("itof", 3, 3.0),
    ("ftoi", 3.9, 3),
    ("ftoi", -3.9, -3),
])
def test_unary_float_ops(op, value, expected):
    result = eval_unary(op, value)
    assert result == expected
    assert type(result) is type(expected)


def test_fsqrt_of_negative_faults():
    with pytest.raises(ExecutionFault):
        eval_unary("fsqrt", -1.0)


# -- data movement and memory -----------------------------------------------------


def test_mov_and_li():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (x, y):
            b.li(x, 11)
            b.mov(y, x)
            b.out(y)
        b.halt()
    assert run_to_completion(Machine(b.build())) == [11]


def test_ld_st_offsets():
    b = ProgramBuilder()
    b.data("xs", [5, 6, 7])
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 2)
            b.out(v)
            b.st(v, base, 0)
            b.ld(v, base, 0)
            b.out(v)
        b.halt()
    assert run_to_completion(Machine(b.build())) == [7, 7]


def test_ldx_stx_indexed():
    b = ProgramBuilder()
    b.data("xs", [5, 6, 7])
    with b.function("main"):
        with b.scratch(3) as (base, i, v):
            b.la(base, "xs")
            b.li(i, 1)
            b.ldx(v, base, i)
            b.addi(v, v, 100)
            b.stx(v, base, i)
            b.ldx(v, base, i)
            b.out(v)
        b.halt()
    assert run_to_completion(Machine(b.build())) == [106]


def test_tst_without_engine_is_plain_store():
    b = ProgramBuilder()
    b.data("xs", [0])
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.li(v, 9)
            b.tst(v, base, 0)
            b.ld(v, base, 0)
            b.out(v)
        b.halt()
    assert run_to_completion(Machine(b.build())) == [9]


def test_tcheck_without_engine_is_a_nop():
    b = ProgramBuilder()
    with b.function("main"):
        b.tcheck(0)
        with b.scratch(1) as (r,):
            b.li(r, 1)
            b.out(r)
        b.halt()
    assert run_to_completion(Machine(b.build())) == [1]


def test_treturn_without_engine_faults():
    p = Program()
    p.add_label("main")
    p.append(Instruction("treturn"))
    p.finalize()
    machine = Machine(p)
    with pytest.raises(ExecutionFault):
        machine.step(machine.main_context)


# -- control flow ---------------------------------------------------------------


@pytest.mark.parametrize("op,lhs,rhs,taken", [
    ("beq", 1, 1, True), ("beq", 1, 2, False),
    ("bne", 1, 2, True), ("bne", 1, 1, False),
    ("blt", 1, 2, True), ("blt", 2, 2, False),
    ("ble", 2, 2, True), ("ble", 3, 2, False),
    ("bgt", 3, 2, True), ("bgt", 2, 2, False),
    ("bge", 2, 2, True), ("bge", 1, 2, False),
])
def test_conditional_branches(op, lhs, rhs, taken):
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(3) as (x, y, r):
            b.li(x, lhs)
            b.li(y, rhs)
            b.li(r, 0)
            b.emit(op, x, y, label="skip")
            b.li(r, 1)  # executed only when not taken
            b.label("skip")
            b.out(r)
        b.halt()
    assert run_to_completion(Machine(b.build())) == [0 if taken else 1]


@pytest.mark.parametrize("op,value,taken", [
    ("beqz", 0, True), ("beqz", 3, False),
    ("bnez", 3, True), ("bnez", 0, False),
])
def test_zero_branches(op, value, taken):
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(2) as (x, r):
            b.li(x, value)
            b.li(r, 0)
            b.emit(op, x, label="skip")
            b.li(r, 1)
            b.label("skip")
            b.out(r)
        b.halt()
    assert run_to_completion(Machine(b.build())) == [0 if taken else 1]


def test_ret_with_empty_stack_faults():
    p = Program()
    p.add_label("main")
    p.append(Instruction("ret"))
    p.finalize()
    machine = Machine(p)
    with pytest.raises(ExecutionFault):
        machine.step(machine.main_context)


def test_runaway_recursion_faults():
    b = ProgramBuilder()
    with b.function("main"):
        b.call("main")  # infinite self-call
        b.halt()
    machine = Machine(b.build())
    with pytest.raises(ExecutionFault, match="call stack"):
        run_to_completion(machine)


# -- machine-level behavior --------------------------------------------------------


def test_requires_finalized_program():
    with pytest.raises(ProgramValidationError):
        Machine(Program())


def test_requires_at_least_one_context(tiny_program):
    with pytest.raises(ContextError):
        Machine(tiny_program, num_contexts=0)


def test_instruction_limit_enforced():
    b = ProgramBuilder()
    with b.function("main"):
        b.label("spin")
        b.jmp("spin")
    machine = Machine(b.build(), max_instructions=1000)
    with pytest.raises(ExecutionLimitExceeded):
        run_to_completion(machine)


def test_running_off_the_end_faults():
    p = Program()
    p.add_label("main")
    p.append(Instruction("nop"))
    p.finalize()
    machine = Machine(p)
    machine.step(machine.main_context)
    with pytest.raises(ExecutionFault, match="ran off the end"):
        machine.step(machine.main_context)


def test_step_requires_running_context(tiny_program):
    machine = Machine(tiny_program, num_contexts=2)
    with pytest.raises(ContextError):
        machine.step(machine.contexts[1])  # idle support context


def test_step_returns_instruction_address_taken(sum_program):
    machine = Machine(sum_program)
    instruction, address, taken = machine.step(machine.main_context)
    assert instruction.op == "li"  # la expands to li
    assert address is None
    assert taken is None


def test_instruction_accounting_by_role(sum_program):
    machine = Machine(sum_program)
    run_to_completion(machine)
    assert machine.instructions_executed == machine.main_instructions
    assert machine.support_instructions == 0


def test_contexts_per_core_assignment(tiny_program):
    machine = Machine(tiny_program, num_contexts=4, contexts_per_core=2)
    assert [c.core_id for c in machine.contexts] == [0, 0, 1, 1]
    assert machine.num_cores == 2


def test_idle_contexts_excludes_main(tiny_program):
    machine = Machine(tiny_program, num_contexts=3)
    assert machine.main_context not in machine.idle_contexts()
    assert len(machine.idle_contexts()) == 2


def test_halt_on_support_context_faults(tiny_program):
    machine = Machine(tiny_program, num_contexts=2)
    support = machine.contexts[1]
    support.start_support(0, "w", 0, 0, 0)
    # pc 0 is "li r..", step until halt pc; instead directly point at halt
    support.pc = len(tiny_program) - 1
    with pytest.raises(ExecutionFault, match="treturn"):
        machine.step(support)


def test_shl_shr_coerce_floats_to_int():
    assert eval_binary("shl", 2.0, 1.0) == 4
