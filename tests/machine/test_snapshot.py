"""Machine checkpointing: snapshot/restore round trips and replay."""

from hypothesis import given, settings, strategies as st

from repro.machine.context import ContextState
from repro.machine.machine import Machine, run_to_completion


def test_restore_rewinds_everything(sum_program):
    machine = Machine(sum_program)
    for _ in range(5):
        machine.step(machine.main_context)
    checkpoint = machine.snapshot()
    final = run_to_completion(machine)
    machine.restore(checkpoint)
    assert machine.instructions_executed == 5
    assert machine.output == []
    assert machine.main_context.state is ContextState.RUNNING
    # replaying from the checkpoint reproduces the original run exactly
    assert run_to_completion(machine) == final


def test_snapshot_is_isolated_from_later_execution(sum_program):
    machine = Machine(sum_program)
    machine.step(machine.main_context)
    checkpoint = machine.snapshot()
    run_to_completion(machine)
    # the dict captured earlier did not change
    assert checkpoint["instructions_executed"] == 1
    assert checkpoint["output"] == []


@given(st.integers(0, 25))
@settings(max_examples=20, deadline=None)
def test_replay_from_any_point_is_identical(prefix_length):
    """For any checkpoint position, restore-and-replay equals the
    uninterrupted run (determinism of the whole machine)."""
    from tests.conftest import build_dtt_sum
    from repro.core.engine import DttEngine
    from repro.core.registry import ThreadRegistry

    program, spec = build_dtt_sum([1, 2, 3], [0, 2, 1], [9, 8, 7])
    machine = Machine(program, num_contexts=2)
    machine.attach_engine(DttEngine(ThreadRegistry([spec])))
    reference = run_to_completion(machine)

    program2, spec2 = build_dtt_sum([1, 2, 3], [0, 2, 1], [9, 8, 7])
    machine2 = Machine(program2, num_contexts=2)
    machine2.attach_engine(DttEngine(ThreadRegistry([spec2])))
    main = machine2.main_context
    for _ in range(prefix_length):
        if main.state is not ContextState.RUNNING:
            break
        machine2.step(main)
    # checkpoint only at quiescent points: the sync engine executes
    # support threads inside tcheck, so between main steps is quiescent
    checkpoint = machine2.snapshot()
    machine2.restore(checkpoint)
    assert run_to_completion(machine2) == reference
