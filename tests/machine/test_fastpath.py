"""Tier equivalence: ``Machine.run`` must match ``step()`` exactly.

``run`` has two fast tiers above the legacy step loop — per-PC closure
thunks (PR 4) and exec-compiled superblocks — and both batch their
counter reconciliation; these tests prove that is invisible — every
bundled workload produces byte-identical memory, output, counters, and
engine trace streams under all three tiers, and faults/limits/budgets
land on the same instruction with the same machine state.
"""

import pytest

from repro.core.trace import EngineTrace
from repro.errors import (
    ContextError,
    ExecutionFault,
    ExecutionLimitExceeded,
    MemoryFault,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.machine.context import ContextState
from repro.machine.events import MachineObserver
from repro.machine.machine import Machine, run_to_completion
from repro.workloads.suite import SUITE

from tests.conftest import build_dtt_sum


def drive_legacy(machine):
    """Reference driver: per-instruction step() calls only."""
    main = machine.main_context
    while main.state is not ContextState.HALTED:
        if main.state is not ContextState.RUNNING:
            raise AssertionError(f"main context {main.state}")
        machine.step(main)
    return machine.output


def fingerprint(machine):
    """Every architectural surface two equivalent runs must agree on."""
    main = machine.main_context
    return {
        "output": list(machine.output),
        "memory": machine.memory.snapshot(),
        "instructions_executed": machine.instructions_executed,
        "main_instructions": machine.main_instructions,
        "support_instructions": machine.support_instructions,
        "load_count": machine.memory.load_count,
        "store_count": machine.memory.store_count,
        "pc": main.pc,
        "state": main.state,
        "instruction_count": main.instruction_count,
        "regs": list(main.regs),
    }


# -- every bundled workload, every tier --------------------------------------------

FAST_TIERS = ("closure", "superblock")


@pytest.mark.parametrize("tier", FAST_TIERS)
@pytest.mark.parametrize("name", sorted(SUITE))
def test_baseline_workload_equivalence(name, tier):
    workload = SUITE[name]
    inp = workload.make_input()
    program = workload.build_baseline(inp)
    legacy = Machine(program)
    drive_legacy(legacy)
    fast = Machine(program)
    run_to_completion(fast, tier=tier)
    assert fingerprint(fast) == fingerprint(legacy)


@pytest.mark.parametrize("tier", FAST_TIERS)
@pytest.mark.parametrize("name", sorted(SUITE))
def test_dtt_workload_equivalence_with_trace(name, tier):
    workload = SUITE[name]
    inp = workload.make_input()
    build = workload.build_dtt(inp)

    def machine_with_engine():
        machine = Machine(build.program, num_contexts=2)
        engine = build.engine()
        machine.attach_engine(engine)
        trace = EngineTrace(engine)
        return machine, engine, trace

    legacy, legacy_engine, legacy_trace = machine_with_engine()
    drive_legacy(legacy)
    fast, fast_engine, fast_trace = machine_with_engine()
    run_to_completion(fast, tier=tier)
    assert fingerprint(fast) == fingerprint(legacy)
    assert fast_engine.summary() == legacy_engine.summary()
    assert ([repr(e) for e in fast_trace.events]
            == [repr(e) for e in legacy_trace.events])


# -- budgets and limits ----------------------------------------------------------


def spin_program():
    b = ProgramBuilder()
    with b.function("main"):
        b.label("spin")
        b.jmp("spin")
    return b.build()


@pytest.mark.parametrize("tier", FAST_TIERS)
def test_run_respects_max_steps_budget(tier):
    machine = Machine(spin_program())
    retired = machine.run(max_steps=1000, tier=tier)
    assert retired == 1000
    assert machine.instructions_executed == 1000
    assert machine.main_context.instruction_count == 1000
    assert machine.main_context.state is ContextState.RUNNING
    # and the loop can resume from the synced pc
    assert machine.run(max_steps=7, tier=tier) == 7
    assert machine.instructions_executed == 1007


def test_run_requires_running_context(tiny_program):
    machine = Machine(tiny_program, num_contexts=2)
    with pytest.raises(ContextError):
        machine.run(machine.contexts[1])  # idle support context


def test_instruction_limit_identical_to_step_loop():
    def run_out(driver):
        machine = Machine(spin_program(), max_instructions=5000)
        with pytest.raises(ExecutionLimitExceeded):
            driver(machine)
        return fingerprint(machine)

    legacy = run_out(drive_legacy)
    fast = run_out(run_to_completion)
    assert fast == legacy
    # step() counts the over-limit attempt in the global counter only
    assert fast["instructions_executed"] == 5001
    assert fast["instruction_count"] == 5000


# -- fault equivalence ------------------------------------------------------------


def _fault_fingerprints(program, exc_type, match):
    drivers = [drive_legacy] + [
        (lambda m, t=tier: run_to_completion(m, tier=t))
        for tier in FAST_TIERS
    ]
    results = []
    for driver in drivers:
        machine = Machine(program)
        with pytest.raises(exc_type, match=match):
            driver(machine)
        results.append(fingerprint(machine))
    legacy = results[0]
    for fast in results[1:]:
        assert fast == legacy
    return legacy


def test_ret_fault_identical():
    p = Program()
    p.add_label("main")
    p.append(Instruction("nop"))
    p.append(Instruction("ret"))
    p.finalize()
    fp = _fault_fingerprints(p, ExecutionFault, "empty call stack")
    assert fp["pc"] == 1  # both tiers leave the pc on the faulting ret
    assert fp["instructions_executed"] == 2  # the faulting op is counted


def test_run_off_end_fault_identical():
    p = Program()
    p.add_label("main")
    p.append(Instruction("nop"))
    p.finalize()
    fp = _fault_fingerprints(p, ExecutionFault, "ran off the end")
    assert fp["pc"] == 1


def test_call_overflow_fault_identical():
    b = ProgramBuilder()
    with b.function("main"):
        b.call("main")
        b.halt()
    _fault_fingerprints(b.build(), ExecutionFault, "call stack overflow")


def test_division_fault_identical():
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(3) as (a, z, d):
            b.li(a, 1)
            b.li(z, 0)
            b.idiv(d, a, z)
        b.halt()
    _fault_fingerprints(b.build(), ExecutionFault, "division by zero")


# -- fallback and rebuild rules ---------------------------------------------------


class _CountingObserver(MachineObserver):
    def __init__(self):
        self.instructions = 0

    def on_instruction(self, ctx, pc, instruction):
        self.instructions += 1


def test_observers_force_exact_single_stepping():
    workload = SUITE["mcf"]
    inp = workload.make_input(scale=4)
    program = workload.build_baseline(inp)
    observed = Machine(program)
    observer = _CountingObserver()
    observed.add_observer(observer)
    run_to_completion(observed)
    # the observer saw every retired instruction — run() fell back
    assert observer.instructions == observed.instructions_executed
    plain = Machine(program)
    run_to_completion(plain)
    assert plain.output == observed.output
    assert plain.instructions_executed == observed.instructions_executed


def test_fast_run_after_restore_reuses_memory_identity():
    program, _spec = build_dtt_sum([1, 2, 3], [0, 2], [9, 9])
    machine = Machine(program)
    saved = machine.snapshot()
    first = list(run_to_completion(machine))
    words = machine.memory._words
    machine.restore(saved)
    assert machine.memory._words is words  # restore must stay in place
    again = run_to_completion(machine)
    assert list(again) == first


def test_equivalence_survives_interleaved_tiers():
    # stepping and batch-running the same machine may be freely mixed,
    # across all three tiers
    workload = SUITE["gzip"]
    inp = workload.make_input(scale=4)
    program = workload.build_baseline(inp)
    mixed = Machine(program)
    main = mixed.main_context
    for _ in range(137):
        mixed.step(main)
    mixed.run(main, max_steps=501, tier="closure")
    mixed.run(main, max_steps=503, tier="superblock")
    while main.state is ContextState.RUNNING:
        mixed.step(main)
    reference = Machine(program)
    run_to_completion(reference)
    assert fingerprint(mixed) == fingerprint(reference)


# -- superblock tier specifics -----------------------------------------------------


def test_unknown_tier_rejected(tiny_program):
    machine = Machine(tiny_program)
    with pytest.raises(ValueError, match="unknown execution tier"):
        machine.run(tier="jit")


def _guard_side_exit_program(limit):
    """A loop block whose ``ldx`` address walks below zero mid-run."""
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(3) as (i, addr, v):
            b.li(i, limit)
            b.li(v, 0)
            b.label("loop")
            b.muli(addr, i, 3)
            b.subi(addr, addr, 10)
            b.ldx(v, addr, i)       # faults once 4*i - 10 < 0
            b.subi(i, i, 1)
            b.bgt(i, v, "loop")
        b.halt()
    return b.build()


def test_superblock_memory_guard_side_exit_faults_identically():
    # the compiled guard must bail to the thunk, which raises the same
    # MemoryFault with the same counters and pc as single-stepping
    fp = _fault_fingerprints(
        _guard_side_exit_program(6), MemoryFault, "outside address space")
    assert fp["state"] is ContextState.RUNNING


def test_superblock_mid_loop_arithmetic_fault_identical():
    # an idiv-by-zero on a later iteration exercises the in-block fault
    # reconciliation path (_k marker + batched counter writeback)
    b = ProgramBuilder()
    with b.function("main"):
        with b.scratch(4) as (i, d, q, z):
            b.li(i, 5)
            b.li(z, 0)
            b.label("loop")
            b.subi(d, i, 3)
            b.idiv(q, i, d)         # faults when i reaches 3
            b.subi(i, i, 1)
            b.bgt(i, z, "loop")
        b.halt()
    fp = _fault_fingerprints(b.build(), ExecutionFault, "division by zero")
    assert fp["instructions_executed"] > 4  # faulted mid-loop, not at entry


def test_superblock_formation_covers_suite():
    from repro.machine.superblock import compile_blocks, form_blocks

    for name in sorted(SUITE):
        workload = SUITE[name]
        program = workload.build_baseline(workload.make_input())
        blocks = form_blocks(program)
        assert blocks, f"{name}: no superblocks formed"
        compiled = compile_blocks(program)
        assert len(compiled.blocks) == len(blocks)
    # the paper's headline workload must compile its hot loop as a loop
    # block, or the 3x tier target is unreachable
    mcf = SUITE["mcf"]
    assert any(
        is_loop for _, _, is_loop
        in form_blocks(mcf.build_baseline(mcf.make_input())))


def test_superblock_code_cache_shares_compiles_across_machines():
    from repro.machine import superblock

    workload = SUITE["gap"]
    program = workload.build_baseline(workload.make_input(scale=4))
    superblock.reset_cache_stats()
    first = Machine(program)
    run_to_completion(first, tier="superblock")
    second = Machine(program)
    run_to_completion(second, tier="superblock")
    stats = superblock.cache_stats()
    assert stats["cache_misses"] == 1
    assert stats["cache_hits"] >= 1
    assert stats["blocks_compiled"] >= 1
    assert stats["build_seconds"] > 0
    assert first.output == second.output
