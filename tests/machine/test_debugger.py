"""Debugger: breakpoints, watchpoints, conditions, stepping, inspection."""

import pytest

from repro.errors import MachineError
from repro.isa.builder import ProgramBuilder
from repro.machine.context import ContextState
from repro.machine.debugger import Debugger, StopKind
from repro.machine.machine import Machine


def counting_program():
    """Increments mem[counter] five times; labels each region."""
    b = ProgramBuilder()
    b.zeros("counter", 1)
    with b.function("main"):
        with b.scratch(3) as (base, i, v):
            b.la(base, "counter")
            b.label("loop_body")
            with b.for_range(i, 0, 5):
                b.ld(v, base, 0)
                b.addi(v, v, 1)
                b.label("store_site")
                b.st(v, base, 0)
            b.label("done")
            b.ld(v, base, 0)
            b.out(v)
        b.halt()
    return b.build()


@pytest.fixture
def machine():
    return Machine(counting_program())


def test_run_to_halt_without_conditions(machine):
    dbg = Debugger(machine)
    stop = dbg.run()
    assert stop.kind == StopKind.HALTED
    assert machine.output == [5]


def test_breakpoint_stops_before_instruction(machine):
    dbg = Debugger(machine)
    pc = dbg.add_breakpoint_at_label("done")
    stop = dbg.run()
    assert stop.kind == StopKind.BREAKPOINT
    assert stop.pc == pc
    assert machine.main_context.pc == pc  # not yet executed
    # the loop completed: counter is 5
    counter = machine.program.address_of("counter")
    assert dbg.read_memory(counter) == [5]


def test_continue_past_breakpoint(machine):
    dbg = Debugger(machine)
    dbg.add_breakpoint_at_label("store_site")
    hits = 0
    stop = dbg.run()
    while stop.kind == StopKind.BREAKPOINT:
        hits += 1
        stop = dbg.continue_()
    assert hits == 5  # once per iteration
    assert stop.kind == StopKind.HALTED


def test_watchpoint_fires_on_change(machine):
    dbg = Debugger(machine)
    counter = machine.program.address_of("counter")
    dbg.add_watchpoint(counter)
    values = []
    stop = dbg.run()
    while stop.kind == StopKind.WATCHPOINT:
        values.append(dbg.read_memory(counter)[0])
        stop = dbg.run()
    assert values == [1, 2, 3, 4, 5]
    assert stop.kind == StopKind.HALTED


def test_watchpoint_ignores_silent_stores():
    b = ProgramBuilder()
    b.data("xs", [7])
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.st(v, base, 0)  # silent
        b.halt()
    machine = Machine(b.build())
    dbg = Debugger(machine)
    dbg.add_watchpoint(machine.program.address_of("xs"))
    assert dbg.run().kind == StopKind.HALTED


def test_condition_stop(machine):
    dbg = Debugger(machine)
    counter = machine.program.address_of("counter")
    dbg.add_condition(
        lambda m: "counter reached 3" if m.memory.peek(counter) >= 3 else None
    )
    stop = dbg.run()
    assert stop.kind == StopKind.CONDITION
    assert "counter reached 3" in stop.detail
    assert dbg.read_memory(counter) == [3]


def test_single_step(machine):
    dbg = Debugger(machine)
    first = dbg.step()
    assert first.kind == StopKind.STEPPED
    assert dbg.instructions_executed == 1
    assert machine.main_context.pc == 1


def test_step_after_halt_reports_halted(machine):
    dbg = Debugger(machine)
    dbg.run()
    assert dbg.step().kind == StopKind.HALTED


def test_remove_breakpoint_and_watchpoint(machine):
    dbg = Debugger(machine)
    pc = dbg.add_breakpoint_at_label("done")
    dbg.remove_breakpoint(pc)
    counter = machine.program.address_of("counter")
    dbg.add_watchpoint(counter)
    dbg.remove_watchpoint(counter)
    assert dbg.run().kind == StopKind.HALTED


def test_breakpoint_validation(machine):
    dbg = Debugger(machine)
    with pytest.raises(MachineError):
        dbg.add_breakpoint(10_000)
    with pytest.raises(MachineError):
        dbg.add_breakpoint_at_label("nope")


def test_where_reports_location(machine):
    dbg = Debugger(machine)
    dbg.add_breakpoint_at_label("done")
    dbg.run()
    text = dbg.where()
    assert "main" in text
    assert "pc" in text


def test_runaway_guard(machine):
    dbg = Debugger(machine)
    with pytest.raises(MachineError, match="without stopping"):
        dbg.run(max_instructions=3)


def test_debugger_steps_over_synchronous_support_threads():
    """A tcheck that runs a support thread synchronously looks like one
    big step from the main context's perspective."""
    from tests.conftest import build_dtt_sum, expected_dtt_sum
    from repro.core.engine import DttEngine
    from repro.core.registry import ThreadRegistry

    program, spec = build_dtt_sum([1, 2], [0, 1], [9, 8])
    machine = Machine(program, num_contexts=2)
    machine.attach_engine(DttEngine(ThreadRegistry([spec])))
    dbg = Debugger(machine)
    stop = dbg.run()
    assert stop.kind == StopKind.HALTED
    assert machine.output == expected_dtt_sum([1, 2], [0, 1], [9, 8])
