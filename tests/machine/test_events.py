"""Observer hooks: what fires, with what arguments, and when."""

from repro.isa.builder import ProgramBuilder
from repro.machine.events import MachineObserver, TraceObserver
from repro.machine.machine import Machine, run_to_completion


class Recorder(MachineObserver):
    def __init__(self):
        self.instructions = []
        self.loads = []
        self.stores = []
        self.branches = []
        self.halts = 0

    def on_instruction(self, ctx, pc, instruction):
        self.instructions.append((pc, instruction.op))

    def on_load(self, ctx, pc, address, value):
        self.loads.append((pc, address, value))

    def on_store(self, ctx, pc, address, old, new, triggering):
        self.stores.append((pc, address, old, new, triggering))

    def on_branch(self, ctx, pc, taken, target):
        self.branches.append((pc, taken, target))

    def on_halt(self, ctx):
        self.halts += 1


def _observed_program():
    b = ProgramBuilder()
    b.data("xs", [10])
    with b.function("main"):
        with b.scratch(2) as (base, v):
            b.la(base, "xs")
            b.ld(v, base, 0)
            b.addi(v, v, 1)
            b.st(v, base, 0)
            b.li(v, 2)
            b.tst(v, base, 0)
            b.beqz(v, "end")
        b.label("end")
        b.halt()
    return b.build()


def test_hooks_fire_with_correct_arguments():
    program = _observed_program()
    machine = Machine(program)
    recorder = Recorder()
    machine.add_observer(recorder)
    run_to_completion(machine)
    base = program.address_of("xs")

    assert recorder.loads == [(1, base, 10)]
    # plain store wrote 11 over 10; triggering store wrote 2 over 11
    assert recorder.stores[0][1:] == (base, 10, 11, False)
    assert recorder.stores[1][1:] == (base, 11, 2, True)
    assert recorder.branches == [(6, False, 7)]
    assert recorder.halts == 1
    assert len(recorder.instructions) == machine.instructions_executed


def test_unobserved_machine_skips_hooks():
    machine = Machine(_observed_program())
    run_to_completion(machine)  # simply must not raise


def test_remove_observer():
    machine = Machine(_observed_program())
    recorder = Recorder()
    machine.add_observer(recorder)
    machine.remove_observer(recorder)
    run_to_completion(machine)
    assert recorder.instructions == []


def test_multiple_observers_all_fire():
    machine = Machine(_observed_program())
    first, second = Recorder(), Recorder()
    machine.add_observer(first)
    machine.add_observer(second)
    run_to_completion(machine)
    assert first.instructions == second.instructions


def test_trace_observer_records_and_truncates():
    machine = Machine(_observed_program())
    trace = TraceObserver(max_entries=3)
    machine.add_observer(trace)
    run_to_completion(machine)
    assert len(trace.entries) == 3
    assert trace.truncated
    assert "truncated" in trace.text()
    assert "pc=" in trace.entries[0]
