"""Context lifecycle: main/support roles, blocking, trigger arguments."""

import pytest

from repro.errors import ContextError
from repro.isa.registers import (
    NUM_REGISTERS,
    TRIGGER_ADDR_REG,
    TRIGGER_OLD_VALUE_REG,
    TRIGGER_VALUE_REG,
)
from repro.machine.context import Context, ContextRole, ContextState


def test_fresh_context_is_idle():
    ctx = Context(0)
    assert ctx.state is ContextState.IDLE
    assert not ctx.runnable
    assert ctx.regs == [0] * NUM_REGISTERS


def test_start_main():
    ctx = Context(0)
    ctx.start_main(17)
    assert ctx.pc == 17
    assert ctx.role is ContextRole.MAIN
    assert ctx.runnable


def test_start_main_rejected_while_running():
    ctx = Context(0)
    ctx.start_main(0)
    with pytest.raises(ContextError):
        ctx.start_main(0)


def test_restart_main_after_halt_allowed():
    ctx = Context(0)
    ctx.start_main(0)
    ctx.state = ContextState.HALTED
    ctx.start_main(3)
    assert ctx.pc == 3


def test_start_support_loads_trigger_arguments():
    ctx = Context(1)
    ctx.start_support(40, "worker", trigger_addr=100, new_value=7,
                      old_value=3)
    assert ctx.role is ContextRole.SUPPORT
    assert ctx.thread_name == "worker"
    assert ctx.regs[TRIGGER_ADDR_REG] == 100
    assert ctx.regs[TRIGGER_VALUE_REG] == 7
    assert ctx.regs[TRIGGER_OLD_VALUE_REG] == 3


def test_start_support_rejected_unless_idle():
    ctx = Context(1)
    ctx.start_support(0, "w", 0, 0, 0)
    with pytest.raises(ContextError):
        ctx.start_support(0, "w", 0, 0, 0)


def test_finish_support_returns_to_idle():
    ctx = Context(1)
    ctx.start_support(0, "w", 0, 0, 0)
    ctx.finish_support()
    assert ctx.state is ContextState.IDLE
    assert ctx.thread_name is None


def test_finish_support_rejected_for_main():
    ctx = Context(0)
    ctx.start_main(0)
    with pytest.raises(ContextError):
        ctx.finish_support()


def test_block_and_unblock():
    ctx = Context(0)
    ctx.start_main(0)
    ctx.block_on(2)
    assert ctx.state is ContextState.BLOCKED
    assert ctx.waiting_on == 2
    assert not ctx.runnable
    ctx.unblock()
    assert ctx.runnable
    assert ctx.waiting_on is None


def test_block_rejected_for_support():
    ctx = Context(1)
    ctx.start_support(0, "w", 0, 0, 0)
    with pytest.raises(ContextError):
        ctx.block_on(0)


def test_unblock_rejected_unless_blocked():
    ctx = Context(0)
    ctx.start_main(0)
    with pytest.raises(ContextError):
        ctx.unblock()


def test_core_assignment():
    assert Context(3, core_id=1).core_id == 1
