"""Differential testing: random DTIR programs vs a Python oracle.

Generates random straight-line integer programs (ALU ops over a small
register window plus memory traffic against a small array), executes them
on the machine, and re-evaluates them with an independent pure-Python
oracle.  Any divergence in register file, memory, or output is a machine
bug.  Division/modulo by zero is avoided by construction (the machine's
fault behavior is covered by the directed tests).
"""

from hypothesis import given, settings, strategies as st

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import NUM_REGISTERS
from repro.machine.machine import Machine, run_to_completion, _trunc_div

# register window the generated programs use (avoids reserved r1..r3)
REGS = [4, 5, 6, 7]
ARRAY = 8  # words of addressable scratch

_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and_": lambda a, b: a & b,
    "or_": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "slt": lambda a, b: 1 if a < b else 0,
    "seq": lambda a, b: 1 if a == b else 0,
}


@st.composite
def random_step(draw):
    kind = draw(st.sampled_from(["li", "binop", "idiv", "ld", "st", "out"]))
    rd = draw(st.sampled_from(REGS))
    rs = draw(st.sampled_from(REGS))
    rt = draw(st.sampled_from(REGS))
    imm = draw(st.integers(-100, 100))
    slot = draw(st.integers(0, ARRAY - 1))
    return (kind, rd, rs, rt, imm, slot)


@given(st.lists(random_step(), min_size=1, max_size=60))
@settings(max_examples=120, deadline=None)
def test_machine_matches_oracle(steps):
    b = ProgramBuilder()
    b.zeros("scratch", ARRAY)
    base_reg = 8  # fixed register holding the array base
    with b.function("main"):
        b.program.add_symbol_patch(
            b.li(base_reg, 0), "b", "scratch"
        )
        for kind, rd, rs, rt, imm, slot in steps:
            if kind == "li":
                b.li(rd, imm)
            elif kind == "binop":
                op = ("add", "sub", "mul", "and_", "or_", "xor",
                      "slt", "seq")[abs(imm) % 8]
                b.emit(op, rd, rs, rt)
            elif kind == "idiv":
                # force a nonzero divisor via an immediate
                divisor = imm if imm != 0 else 7
                b.li(rt, divisor)
                b.idiv(rd, rs, rt)
            elif kind == "ld":
                b.ld(rd, base_reg, slot)
            elif kind == "st":
                b.st(rs, base_reg, slot)
            else:
                b.out(rs)
        b.halt()
    program = b.build()
    machine = Machine(program)
    output = run_to_completion(machine)

    # independent oracle
    regs = {r: 0 for r in REGS}
    memory = [0] * ARRAY
    expected = []
    for kind, rd, rs, rt, imm, slot in steps:
        if kind == "li":
            regs[rd] = imm
        elif kind == "binop":
            name = ("add", "sub", "mul", "and_", "or_", "xor",
                    "slt", "seq")[abs(imm) % 8]
            regs[rd] = _BINOPS[name](regs[rs], regs[rt])
        elif kind == "idiv":
            divisor = imm if imm != 0 else 7
            regs[rt] = divisor
            regs[rd] = _trunc_div(regs[rs], divisor)
        elif kind == "ld":
            regs[rd] = memory[slot]
        elif kind == "st":
            memory[slot] = regs[rs]
        else:
            expected.append(regs[rs])

    assert output == expected
    for r, value in regs.items():
        assert machine.main_context.regs[r] == value
    scratch_base = program.address_of("scratch")
    assert machine.memory.read_block(scratch_base, ARRAY) == memory
