"""Memory semantics: sparse zero-default, counters, faults, snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AlignmentFault, MemoryFault
from repro.machine.memory import Memory


def test_untouched_words_read_zero():
    m = Memory()
    assert m.load(123) == 0


def test_store_then_load():
    m = Memory()
    m.store(10, 42)
    assert m.load(10) == 42


def test_counters_track_counted_access_only():
    m = Memory()
    m.store(1, 5)
    m.load(1)
    m.load(2)
    m.peek(1)
    m.poke(3, 7)
    assert m.store_count == 1
    assert m.load_count == 2


def test_negative_address_faults():
    m = Memory()
    with pytest.raises(MemoryFault):
        m.load(-1)
    with pytest.raises(MemoryFault):
        m.store(-5, 0)


def test_address_beyond_limit_faults():
    m = Memory(limit=100)
    with pytest.raises(MemoryFault):
        m.load(100)
    m.load(99)  # in range


def test_non_integer_address_is_alignment_fault():
    m = Memory()
    with pytest.raises(AlignmentFault):
        m.load(1.5)
    with pytest.raises(AlignmentFault):
        m.store(2.0, 1)
    with pytest.raises(AlignmentFault):
        m.peek(True)


def test_block_round_trip():
    m = Memory()
    m.write_block(50, [1, 2.5, 3])
    assert m.read_block(50, 3) == [1, 2.5, 3]
    assert m.read_block(49, 1) == [0]


def test_load_range_reads_and_counts():
    m = Memory()
    m.store(10, 1)
    m.store(12, 2.5)
    before = m.load_count
    assert m.load_range(10, 4) == [1, 0, 2.5, 0]
    assert m.load_count == before + 4


def test_load_range_zero_count():
    m = Memory()
    assert m.load_range(5, 0) == []
    assert m.load_count == 0


def test_load_range_faults():
    m = Memory(limit=100)
    with pytest.raises(MemoryFault):
        m.load_range(-1, 2)  # starts below zero
    with pytest.raises(MemoryFault):
        m.load_range(98, 3)  # runs past the limit
    with pytest.raises(MemoryFault):
        m.load_range(5, -1)  # negative count
    with pytest.raises(AlignmentFault):
        m.load_range(1.5, 2)  # non-integer base
    assert m.load_count == 0  # faulting ranges count nothing
    assert m.load_range(98, 2) == [0, 0]  # last two words are in range


def test_restore_is_in_place():
    # the fast path binds the words dict into closures; restore must
    # mutate it rather than rebind a copy
    m = Memory()
    m.store(1, 10)
    snap = m.snapshot()
    words = m._words
    m.store(2, 5)
    m.restore(snap)
    assert m._words is words
    assert m.peek(2) == 0


def test_snapshot_restore():
    m = Memory()
    m.store(1, 10)
    snap = m.snapshot()
    m.store(1, 99)
    m.store(2, 5)
    m.restore(snap)
    assert m.peek(1) == 10
    assert m.peek(2) == 0


def test_snapshot_is_a_copy():
    m = Memory()
    m.store(1, 10)
    snap = m.snapshot()
    snap[1] = -1
    assert m.peek(1) == 10


def test_written_range():
    m = Memory()
    assert m.written_range() == (0, 0)
    m.store(5, 1)
    m.store(100, 1)
    assert m.written_range() == (5, 100)


def test_len_counts_written_words():
    m = Memory()
    m.store(1, 1)
    m.store(1, 2)  # overwrite, still one word
    m.store(2, 3)
    assert len(m) == 2


@given(st.dictionaries(st.integers(0, 1000), st.one_of(
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False)), max_size=50))
@settings(max_examples=50, deadline=None)
def test_memory_behaves_like_a_dict_with_zero_default(contents):
    m = Memory()
    for address, value in contents.items():
        m.store(address, value)
    for address in range(0, 1001, 37):
        assert m.load(address) == contents.get(address, 0)
    assert len(m) == len(contents)
