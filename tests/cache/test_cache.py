"""Set-associative cache: geometry, hits/misses, dirty lines, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache, CacheParams


def small_cache(lines=8, assoc=2, line_words=4, policy="lru"):
    return Cache(CacheParams("test", lines, assoc, line_words, policy))


# -- geometry validation ------------------------------------------------------


def test_params_validate_power_of_two_line():
    with pytest.raises(ValueError):
        CacheParams("x", 8, 2, line_words=3)


def test_params_validate_assoc_divides_lines():
    with pytest.raises(ValueError):
        CacheParams("x", 9, 2)


def test_params_validate_power_of_two_sets():
    with pytest.raises(ValueError):
        CacheParams("x", 12, 2)  # 6 sets


def test_params_derived_sizes():
    p = CacheParams("x", 128, 4, 16)
    assert p.num_sets == 32
    assert p.size_words == 2048


# -- basic behavior -------------------------------------------------------------


def test_first_access_misses_then_hits():
    c = small_cache()
    assert c.access(0, False) is False
    assert c.access(0, False) is True
    assert c.stats.misses == 1
    assert c.stats.hits == 1


def test_same_line_words_share_a_hit():
    c = small_cache(line_words=4)
    c.access(0, False)
    assert c.access(3, False) is True  # same 4-word line
    assert c.access(4, False) is False  # next line


def test_lru_eviction_within_set():
    # direct-mapped: 4 lines, assoc 1, line 4 words -> sets index by line%4
    c = small_cache(lines=4, assoc=1)
    c.access(0, False)       # line 0 -> set 0
    c.access(16, False)      # line 4 -> set 0, evicts line 0
    assert c.stats.evictions == 1
    assert c.access(0, False) is False  # line 0 was evicted


def test_associativity_holds_conflicting_lines():
    c = small_cache(lines=8, assoc=2)  # 4 sets
    c.access(0, False)    # line 0, set 0
    c.access(16, False)   # line 4, set 0
    assert c.access(0, False) is True
    assert c.access(16, False) is True
    assert c.stats.evictions == 0


def test_dirty_eviction_counts_writeback():
    c = small_cache(lines=4, assoc=1)
    c.access(0, True)     # write-allocate, dirty
    c.access(16, False)   # evicts dirty line
    assert c.stats.writebacks == 1


def test_clean_eviction_has_no_writeback():
    c = small_cache(lines=4, assoc=1)
    c.access(0, False)
    c.access(16, False)
    assert c.stats.writebacks == 0


def test_write_hit_marks_dirty():
    c = small_cache(lines=4, assoc=1)
    c.access(0, False)    # clean fill
    c.access(0, True)     # dirty on write hit
    c.access(16, False)
    assert c.stats.writebacks == 1


def test_invalidate_present_line():
    c = small_cache()
    c.access(0, False)
    assert c.invalidate(2) is True  # same line
    assert c.stats.invalidations == 1
    assert c.access(0, False) is False  # gone


def test_invalidate_absent_line():
    c = small_cache()
    assert c.invalidate(0) is False
    assert c.stats.invalidations == 0


def test_invalidate_dirty_line_writes_back():
    c = small_cache()
    c.access(0, True)
    c.invalidate(0)
    assert c.stats.writebacks == 1


def test_contains_is_side_effect_free():
    c = small_cache()
    c.access(0, False)
    before = c.stats.accesses
    assert c.contains(0)
    assert not c.contains(100)
    assert c.stats.accesses == before


def test_flush_empties_but_keeps_stats():
    c = small_cache()
    c.access(0, False)
    c.flush()
    assert c.resident_lines() == 0
    assert c.stats.misses == 1
    assert c.access(0, False) is False


def test_stats_as_dict_and_miss_rate():
    c = small_cache()
    c.access(0, False)
    c.access(0, False)
    assert c.stats.as_dict()["hits"] == 1
    assert c.stats.miss_rate == 0.5


def test_miss_rate_of_empty_cache_is_zero():
    assert small_cache().stats.miss_rate == 0.0


# -- invariants (property-based) ---------------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 4095),
                          st.booleans()), max_size=300))
@settings(max_examples=50, deadline=None)
def test_cache_invariants_under_random_traffic(accesses):
    c = small_cache(lines=16, assoc=4, line_words=8)
    for address, is_write in accesses:
        c.access(address, is_write)
    # conservation: every access is a hit or a miss
    assert c.stats.hits + c.stats.misses == len(accesses)
    # occupancy never exceeds capacity
    assert c.resident_lines() <= c.params.num_lines
    # evictions can't exceed misses
    assert c.stats.evictions <= c.stats.misses
    # re-probing everything that's resident must hit
    for address, _ in accesses:
        if c.contains(address):
            assert c.access(address, False) is True


@given(st.lists(st.integers(0, 255), min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_small_working_set_eventually_all_hits(addresses):
    """Any working set that fits must reach a 100%-hit steady state."""
    c = small_cache(lines=64, assoc=4, line_words=4)
    distinct_lines = {a // 4 for a in addresses}
    per_set = {}
    for line in distinct_lines:
        per_set[line % 16] = per_set.get(line % 16, 0) + 1
    if per_set and max(per_set.values()) > 4:
        return  # some set would thrash; steady state not guaranteed
    for a in addresses:
        c.access(a, False)
    for a in addresses:
        assert c.access(a, False) is True
