"""Hierarchy: latency composition, per-core L1s, write-invalidate coherence."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyParams


def tiny_params(**overrides):
    base = dict(line_words=4, l1_lines=4, l1_associativity=1, l1_latency=2,
                l2_lines=16, l2_associativity=2, l2_latency=10,
                memory_latency=100)
    base.update(overrides)
    return HierarchyParams(**base)


def test_requires_at_least_one_core():
    with pytest.raises(ValueError):
        CacheHierarchy(0)


def test_cold_access_pays_full_latency():
    h = CacheHierarchy(1, tiny_params())
    assert h.access(0, 0, False) == 2 + 10 + 100
    assert h.dram_accesses == 1


def test_l1_hit_latency():
    h = CacheHierarchy(1, tiny_params())
    h.access(0, 0, False)
    assert h.access(0, 0, False) == 2


def test_l2_hit_after_l1_eviction():
    h = CacheHierarchy(1, tiny_params())
    h.access(0, 0, False)      # line 0 -> L1 set 0, L2
    h.access(0, 16, False)     # line 4 -> same L1 set, evicts line 0 from L1
    latency = h.access(0, 0, False)
    assert latency == 2 + 10   # L1 miss, L2 hit
    assert h.dram_accesses == 2


def test_per_core_l1s_are_private():
    h = CacheHierarchy(2, tiny_params())
    h.access(0, 0, False)
    # core 1 misses its own L1 but hits the shared L2
    assert h.access(1, 0, False) == 2 + 10


def test_write_invalidates_other_cores_l1():
    h = CacheHierarchy(2, tiny_params())
    h.access(0, 0, False)  # core 0 caches line 0
    h.access(1, 0, False)  # core 1 caches it too
    h.access(1, 0, True)   # core 1 writes -> invalidate core 0's copy
    assert h.coherence_invalidations == 1
    assert h.access(0, 0, False) == 2 + 10  # core 0 must re-fetch


def test_single_core_skips_coherence():
    h = CacheHierarchy(1, tiny_params())
    h.access(0, 0, True)
    h.access(0, 0, True)
    assert h.coherence_invalidations == 0


def test_write_does_not_invalidate_own_l1():
    h = CacheHierarchy(2, tiny_params())
    h.access(0, 0, True)
    assert h.access(0, 0, False) == 2  # still resident locally


def test_level_stats_structure():
    h = CacheHierarchy(2, tiny_params())
    h.access(0, 0, False)
    stats = h.level_stats()
    assert set(stats) == {"L1.core0", "L1.core1", "L2", "DRAM"}
    assert stats["L1.core0"]["misses"] == 1
    assert stats["DRAM"]["accesses"] == 1


def test_totals():
    h = CacheHierarchy(2, tiny_params())
    h.access(0, 0, False)
    h.access(1, 4, False)
    h.access(0, 0, False)
    assert h.total_l1_accesses() == 3
    assert h.total_l1_misses() == 2


def test_flush_clears_all_levels():
    h = CacheHierarchy(1, tiny_params())
    h.access(0, 0, False)
    h.flush()
    assert h.access(0, 0, False) == 2 + 10 + 100


def test_default_params_are_sane():
    params = HierarchyParams()
    assert params.l1_latency < params.l2_latency < params.memory_latency
    assert params.l1_lines < params.l2_lines
