"""Replacement policies: LRU ordering, FIFO ordering, seeded random."""

import pytest

from repro.cache.policies import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)


def test_lru_evicts_least_recent():
    lru = LruPolicy(num_sets=1, associativity=3)
    for way in (0, 1, 2):
        lru.on_access(0, way)
    assert lru.victim(0) == 0
    lru.on_access(0, 0)  # 0 becomes most recent
    assert lru.victim(0) == 1


def test_lru_untouched_set_victims_way_zero():
    assert LruPolicy(4, 2).victim(3) == 0


def test_lru_reset_forgets():
    lru = LruPolicy(1, 2)
    lru.on_access(0, 1)
    lru.reset()
    assert lru.victim(0) == 0


def test_fifo_ignores_rehits():
    fifo = FifoPolicy(1, 3)
    for way in (0, 1, 2):
        fifo.on_access(0, way)
    fifo.on_access(0, 0)  # re-hit must NOT move 0 to the back
    assert fifo.victim(0) == 0
    assert fifo.victim(0) == 1  # rotates


def test_random_is_seeded_and_reproducible():
    a = RandomPolicy(1, 8, seed=42)
    b = RandomPolicy(1, 8, seed=42)
    seq_a = [a.victim(0) for _ in range(20)]
    seq_b = [b.victim(0) for _ in range(20)]
    assert seq_a == seq_b
    assert all(0 <= v < 8 for v in seq_a)


def test_random_reset_restarts_stream():
    p = RandomPolicy(1, 8, seed=7)
    first = [p.victim(0) for _ in range(5)]
    p.reset()
    assert [p.victim(0) for _ in range(5)] == first


def test_make_policy_by_name():
    assert isinstance(make_policy("lru", 4, 2), LruPolicy)
    assert isinstance(make_policy("fifo", 4, 2), FifoPolicy)
    assert isinstance(make_policy("random", 4, 2), RandomPolicy)


def test_make_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown replacement policy"):
        make_policy("clock", 4, 2)


def test_sets_are_independent():
    lru = LruPolicy(2, 2)
    lru.on_access(0, 1)
    lru.on_access(1, 0)
    assert lru.victim(0) == 1  # only way 1 known in set 0? most-recent=1 -> victim is stack[0]==1
    # set 1 has its own stack
    assert lru.victim(1) == 0
