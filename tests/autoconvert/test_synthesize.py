"""Instruction-stream rewriting: plain program -> DTT build."""

import pytest

from repro.autoconvert import discover_candidates, synthesize
from repro.autoconvert.candidates import ConversionCandidate
from repro.errors import SynthesisError
from repro.machine.machine import Machine, run_to_completion
from repro.workloads.suite import get_workload

from tests.autoconvert.test_candidates import micro_program


def synthesize_micro():
    program = micro_program()
    candidates = discover_candidates(program)
    return program, synthesize(program, candidates)


def test_synthesized_program_declares_one_thread_per_candidate():
    _program, result = synthesize_micro()
    assert list(result.program.threads) == ["auto0"]
    assert [spec.thread for spec in result.build.specs] == ["auto0"]


def test_feeder_store_becomes_triggering_store():
    program, result = synthesize_micro()
    (conversion,) = result.conversions
    (old_pc,) = conversion["feeder_pcs"]
    (new_pc,) = conversion["new_feeder_pcs"]
    old = program.instructions[old_pc]
    new = result.program.instructions[new_pc]
    assert old.op == "st" and new.op == "tst"
    assert (new.a, new.b, new.c) == (old.a, old.b, old.c)
    (spec,) = result.build.specs
    assert spec.store_pcs == frozenset([new_pc])
    assert spec.per_address_dedupe is False


def test_region_collapses_to_a_tcheck():
    program, result = synthesize_micro()
    (conversion,) = result.conversions
    tcheck = result.program.instructions[conversion["tcheck_pc"]]
    assert tcheck.op == "tcheck"
    assert tcheck.a == 0  # first declared thread
    region_len = conversion["region_end"] - conversion["region_start"]
    # main shrank by the region (minus its tcheck), grew by the thread
    # body (+treturn) and the priming copy
    assert len(result.program) == (len(program) - region_len + 1
                                   + 2 * region_len + 1)


def test_data_layout_is_preserved():
    program, result = synthesize_micro()
    assert result.program.layout == program.layout


def test_synthesized_output_matches_baseline():
    program, result = synthesize_micro()
    baseline_output = run_to_completion(Machine(program))
    machine = Machine(result.program, num_contexts=2)
    machine.attach_engine(result.build.engine())
    assert run_to_completion(machine) == baseline_output


def test_mcf_synthesis_runs_and_matches():
    mcf = get_workload("mcf")
    inp = mcf.make_input()
    program = mcf.build_baseline(inp)
    result = synthesize(program, discover_candidates(program))
    machine = Machine(result.program, num_contexts=2)
    machine.attach_engine(result.build.engine())
    assert run_to_completion(machine) == mcf.reference_output(inp)


def test_rejects_unfinalized_and_already_dtt_programs():
    from repro.isa.builder import ProgramBuilder

    program = micro_program()
    candidates = discover_candidates(program)

    unfinalized = ProgramBuilder().program
    with pytest.raises(SynthesisError):
        synthesize(unfinalized, candidates)

    dtt = get_workload("mcf").build_dtt(get_workload("mcf").make_input())
    with pytest.raises(SynthesisError):
        synthesize(dtt.program, candidates)


def test_rejects_overlapping_regions_and_bad_feeders():
    program = micro_program()
    (candidate,) = discover_candidates(program)
    shifted = ConversionCandidate(
        candidate.region_start + 1, candidate.region_end + 1,
        candidate.store_pcs, candidate.reads, candidate.writes)
    with pytest.raises(SynthesisError, match="overlap"):
        synthesize(program, [candidate, shifted])

    not_a_store = ConversionCandidate(
        candidate.region_start, candidate.region_end,
        (candidate.region_start - 1,),  # whatever instruction sits there
        candidate.reads, candidate.writes)
    if program.instructions[candidate.region_start - 1].op not in (
            "st", "stx"):
        with pytest.raises(SynthesisError, match="plain store"):
            synthesize(program, [not_a_store])


def test_rejects_empty_candidate_set():
    program = micro_program()
    with pytest.raises(SynthesisError, match="no candidates"):
        synthesize(program, [])
