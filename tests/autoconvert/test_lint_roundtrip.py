"""Synthesized programs survive the whole static toolchain untouched:
lint finds nothing new, the analyzer proves them safe, and the builder's
trigger-thread helpers reject misuse before it reaches synthesis."""

import pytest

from repro.analysis.checks import analysis_summary, analyze_program
from repro.autoconvert import discover_candidates, rank_candidates, synthesize
from repro.errors import BuilderError
from repro.isa.builder import ProgramBuilder
from repro.isa.lint import Severity, lint_program
from repro.workloads.suite import SUITE


def synthesized_suite():
    """Every suite workload whose plain build yields candidates."""
    results = {}
    for name, workload in SUITE.items():
        program = workload.build_baseline(workload.make_input())
        candidates = rank_candidates(program)
        if candidates:
            results[name] = synthesize(program, candidates[:1])
    return results


SYNTHESIZED = synthesized_suite()


def test_at_least_five_workloads_synthesize():
    assert len(SYNTHESIZED) >= 5, sorted(SYNTHESIZED)


@pytest.mark.parametrize("name", sorted(SYNTHESIZED))
def test_rewritten_program_lints_clean(name):
    findings = [f for f in lint_program(SYNTHESIZED[name].program)
                if f.severity is Severity.ERROR]
    assert findings == [], f"{name}: {findings}"


@pytest.mark.parametrize("name", sorted(SYNTHESIZED))
def test_rewritten_program_analyzes_with_zero_errors(name):
    build = SYNTHESIZED[name].build
    summary = analysis_summary(analyze_program(build.program, build.specs))
    assert summary["errors"] == 0, f"{name}: {summary['codes']}"


@pytest.mark.parametrize("name", sorted(SYNTHESIZED))
def test_rewritten_program_introduces_no_new_lint_findings(name):
    workload = SUITE[name]
    baseline = workload.build_baseline(workload.make_input())
    before = {f.code for f in lint_program(baseline)}
    after = {f.code for f in lint_program(SYNTHESIZED[name].program)}
    assert after <= before, f"{name}: new findings {sorted(after - before)}"


def test_builder_thread_helper_declares_entry_and_function():
    b = ProgramBuilder()
    with b.thread("helper"):
        b.treturn()
    assert b.program.threads["helper"] == "__thread_helper"
    assert any(fn.name == "thread:helper" for fn in b.program.functions)


def test_tcheck_thread_resolves_declaration_order_ids():
    b = ProgramBuilder()
    with b.thread("first"):
        b.treturn()
    with b.thread("second"):
        b.treturn()
    with b.function("main"):
        pc1 = b.tcheck_thread("second")
        pc2 = b.tcheck_thread("first")
        b.halt()
    assert b.program.instructions[pc1].a == 1
    assert b.program.instructions[pc2].a == 0


def test_tcheck_thread_rejects_undeclared_threads():
    b = ProgramBuilder()
    with b.function("main"):
        with pytest.raises(BuilderError, match="not yet declared"):
            b.tcheck_thread("later")
