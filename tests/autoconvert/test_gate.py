"""The acceptance gate: prove statically, verify functionally, measure."""

import json

from repro.analysis.checks import analysis_summary, analyze_program
from repro.autoconvert import REJECTION_REASONS, convert_program
from repro.isa.builder import ProgramBuilder
from repro.workloads.suite import get_workload

from tests.autoconvert.test_candidates import micro_program


def winning_micro():
    """Big enough that skipping the recompute beats the DTT overheads."""
    return micro_program(steps=64, width=16)


def test_micro_conversion_is_accepted_and_wins():
    result = convert_program(winning_micro())
    assert len(result.accepted) == 1
    assert result.considered == 1
    assert result.rejected == {}
    assert result.cycles < result.baseline_cycles
    assert result.speedup > 1.0
    assert 0.0 < result.elimination <= 1.0


def test_accepted_build_passes_static_checks_with_zero_errors():
    result = convert_program(winning_micro())
    findings = analyze_program(result.build.program, result.build.specs)
    assert analysis_summary(findings)["errors"] == 0


def test_mcf_autoconversion_matches_hand_elimination():
    mcf = get_workload("mcf")
    program = mcf.build_baseline(mcf.make_input())
    result = convert_program(program)
    assert len(result.accepted) == 1
    assert result.speedup > 2.0  # the paper's flagship workload
    assert result.elimination > 0.85


def test_small_kernel_loses_and_is_rejected():
    """At tiny scale the trigger/priming overhead exceeds the skipped
    work; the measurement leg of the gate must refuse the conversion."""
    result = convert_program(micro_program(steps=8, width=4))
    assert result.accepted == []
    assert result.rejected == {"no-cycle-win": 1}


def test_impossible_min_speedup_counts_no_cycle_win():
    result = convert_program(winning_micro(), min_speedup=1000.0)
    assert result.accepted == []
    assert result.build is None
    assert result.rejected == {"no-cycle-win": 1}
    assert result.cycles == result.baseline_cycles
    assert result.speedup == 1.0
    assert result.elimination == 0.0


def test_every_counted_reason_is_a_documented_reason():
    result = convert_program(winning_micro(), min_speedup=1000.0)
    assert set(result.rejected) <= set(REJECTION_REASONS)
    for row in result.outcomes:
        if row["outcome"] == "rejected":
            assert row["reason"] in REJECTION_REASONS


def test_provenance_is_json_ready_and_complete():
    result = convert_program(winning_micro())
    provenance = json.loads(json.dumps(result.provenance()))
    assert provenance["considered"] == 1
    assert len(provenance["accepted"]) == 1
    assert provenance["rejected"] == {}
    assert provenance["baseline_cycles"] > provenance["cycles"]
    assert provenance["speedup"] > 1.0
    (conversion,) = provenance["conversions"]
    assert conversion["thread"] == "auto0"
    assert conversion["new_feeder_pcs"]


def test_sampled_ranking_still_converts():
    result = convert_program(winning_micro(), sample_rate=1)
    assert len(result.accepted) == 1
    (row,) = [r for r in result.outcomes if r["outcome"] == "accepted"]
    assert "score_ci_low" in row


def test_no_candidates_is_an_empty_result_not_an_error():
    b = ProgramBuilder()
    b.data("xs", [1, 2, 3, 4])
    with b.function("main"):
        with b.scratch(2) as (t, v):
            b.la(t, "xs")
            b.ld(v, t, 0)
            b.out(v)
        b.halt()
    result = convert_program(b.build())
    assert result.considered == 0
    assert result.accepted == []
    assert result.build is None


def test_vpr_converts_via_the_parameterized_path():
    # the channel-id regions read r7 as a parameter; the symbolic pass
    # proves r7 = r1 - cap_base and the gate accepts the conversion
    vpr = get_workload("vpr")
    result = convert_program(vpr.build_baseline(vpr.make_input()))
    assert len(result.accepted) == 1
    (candidate,) = result.accepted
    assert candidate.params
    assert candidate.recovery is not None
    assert result.rejected == {}
    assert result.speedup > 1.0
    assert result.elimination > 0.0
    findings = analyze_program(result.build.program, result.build.specs)
    assert analysis_summary(findings)["errors"] == 0


def test_twolf_converts_via_the_parameterized_path():
    # two feeder arrays (x and y) feed one cell parameter; recovery is
    # the two-case sge chain and the gate still accepts
    twolf = get_workload("twolf")
    result = convert_program(twolf.build_baseline(twolf.make_input()))
    assert len(result.accepted) == 1
    (candidate,) = result.accepted
    assert candidate.params
    plans = candidate.recovery.plans
    assert any(plan[0] == "cases" and len(plan[1]) == 2
               for plan in plans.values())
    assert result.rejected == {}
    assert result.speedup > 1.0
