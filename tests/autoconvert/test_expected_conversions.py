"""The converter's decisions on the CI smoke set are pinned.

``expected_conversions.json`` records exactly which store-site →
region pairs the gate accepts for perlbmk and gap (register-closed
regions) and vpr and twolf (parameterized regions recovered through
the symbolic pass).  A change here is not necessarily wrong — but it
must be deliberate: regenerate the file and explain the shift in the
commit that causes it.
"""

import json
import pathlib

import pytest

from repro.autoconvert import convert_program
from repro.workloads.suite import SUITE

EXPECTED = json.loads(
    (pathlib.Path(__file__).parent / "expected_conversions.json").read_text())


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_conversion_decisions_are_pinned(name):
    workload = SUITE[name]
    result = convert_program(workload.build_baseline(workload.make_input()))
    expected = EXPECTED[name]
    got = [{"region_start": c.region_start,
            "region_end": c.region_end,
            "store_pcs": sorted(c.store_pcs),
            "params": [f"r{reg}" for reg in c.params]}
           for c in result.accepted]
    assert got == expected["accepted"], (
        f"{name}: accepted set drifted; regenerate "
        "tests/autoconvert/expected_conversions.json if deliberate")
    assert result.speedup > expected["speedup_min"]
    assert result.elimination == pytest.approx(
        expected["elimination"], abs=1e-6)
