"""Auto-inserted triggering stores versus the prefilter's granularity
widening (the checks/registry parity audited in PR 6).

A watch range that misses the store address at word granularity can
still match once widened to the engine's cache-line granularity; the
analyzer's ``dead-trigger`` verdict must replay the same widening the
engine's :class:`TriggerPrefilter` applies — for synthesized programs
exactly as for hand conversions."""

from repro.analysis.checks import analyze_program
from repro.autoconvert import discover_candidates, synthesize
from repro.core.config import DttConfig
from repro.core.registry import ThreadRegistry, TriggerSpec

from tests.autoconvert.test_candidates import micro_program


def watch_synthesized():
    """A synthesized micro build re-specced to watch ``xs[1:]`` only.

    The auto-inserted ``tst`` writes ``xs[0]`` (address 64); the watch
    starts one word above it, so it matches only through widening."""
    program = micro_program()
    result = synthesize(program, discover_candidates(program))
    (conversion,) = result.conversions
    (feeder_pc,) = conversion["new_feeder_pcs"]
    base, size = result.program.layout["xs"]
    spec = TriggerSpec("auto0", watch=[(base + 1, base + size - 1)])
    return result.program, spec, feeder_pc, base


def dead_triggers(program, spec, granularity):
    findings = analyze_program(program, [spec],
                               config=DttConfig(granularity=granularity))
    return [f for f in findings if f.code == "dead-trigger"]


def test_line_granularity_widens_the_watch_onto_the_auto_tstore():
    program, spec, feeder_pc, _base = watch_synthesized()
    assert dead_triggers(program, spec, granularity=16) == []
    dead = dead_triggers(program, spec, granularity=1)
    assert [f.pc for f in dead] == [feeder_pc]


def test_analyzer_verdict_matches_the_engine_registry():
    program, spec, feeder_pc, base = watch_synthesized()
    registry = ThreadRegistry([spec])
    for granularity in (1, 16):
        fired = bool(registry.matches(feeder_pc, base,
                                      granularity=granularity))
        dead = bool(dead_triggers(program, spec, granularity=granularity))
        assert fired != dead, (
            f"g={granularity}: engine fired={fired} but analyzer "
            f"dead={dead}")
