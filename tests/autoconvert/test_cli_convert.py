"""The ``dtt-harness convert`` surface: outputs, schemas, exit codes."""

import json

from repro.exec.compare import load_result_set
from repro.harness.cli import main
from repro.isa.assembler import format_program, parse_program


def convert_perlbmk(tmp_path, extra=()):
    bench = tmp_path / "bench.json"
    manifest = tmp_path / "manifest.json"
    emitted = tmp_path / "perlbmk.dtt"
    status = main(["convert", "--workload", "perlbmk",
                   "--bench-out", str(bench),
                   "--json", str(manifest),
                   "--emit", str(emitted), *extra])
    return status, bench, manifest, emitted


def test_convert_perlbmk_writes_all_three_outputs(tmp_path, capsys):
    status, bench, manifest, emitted = convert_perlbmk(tmp_path)
    out = capsys.readouterr().out
    assert status == 0
    assert "perlbmk" in out and "accepted" in out
    assert bench.exists() and manifest.exists() and emitted.exists()


def test_bench_json_shape(tmp_path, capsys):
    _status, bench, _manifest, _emitted = convert_perlbmk(tmp_path)
    data = json.loads(bench.read_text())
    assert data["kind"] == "bench_autoconvert"
    row = data["rows"]["perlbmk"]
    assert row["accepted"] >= 1
    assert row["speedup"] > 1.0
    assert row["analysis_errors"] == 0
    assert 0.0 < row["elimination"] <= 1.0
    # perlbmk has a hand conversion to compare against
    assert abs(row["elimination"] - row["hand_elimination"]) <= 0.1


def test_manifest_carries_v6_autoconvert_provenance(tmp_path, capsys):
    _status, _bench, manifest, _emitted = convert_perlbmk(tmp_path)
    data = json.loads(manifest.read_text())
    assert data["schema_version"] >= 6
    (entry,) = data["autoconvert"]
    assert entry["workload"] == "perlbmk"
    assert entry["accepted"] and entry["conversions"]
    assert set(entry["rejected"]) == set()


def test_outputs_feed_the_compare_loader(tmp_path, capsys):
    _status, bench, manifest, _emitted = convert_perlbmk(tmp_path)
    bench_set = load_result_set(str(bench))
    assert bench_set.kind == "bench"
    assert "speedup" in bench_set.cells["perlbmk"]
    manifest_set = load_result_set(str(manifest))
    row = manifest_set.cells["autoconvert:perlbmk"]
    assert row["accepted"] == 1 and row["speedup"] > 1.0


def test_emitted_assembly_round_trips(tmp_path, capsys):
    _status, _bench, _manifest, emitted = convert_perlbmk(tmp_path)
    text = emitted.read_text()
    reparsed = parse_program(text)
    assert format_program(reparsed) == text
    assert {"tst", "tstx"} & {i.op for i in reparsed.instructions}
    assert "auto0" in reparsed.threads


def test_convert_rejects_unknown_workload(capsys):
    assert main(["convert", "--workload", "nope"]) == 2


def test_convert_rejects_bad_top_k(capsys):
    assert main(["convert", "--workload", "perlbmk", "--top-k", "0"]) == 2


def test_convert_multiple_workloads_suffixes_emitted_files(tmp_path, capsys):
    emitted = tmp_path / "out.dtt"
    status = main(["convert", "--workload", "perlbmk", "gap",
                   "--emit", str(emitted)])
    assert status == 0
    assert (tmp_path / "out.dtt.perlbmk").exists()
    assert (tmp_path / "out.dtt.gap").exists()
