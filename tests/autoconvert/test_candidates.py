"""Candidate discovery and profile ranking."""

import pytest

from repro.autoconvert import discover_candidates, rank_candidates
from repro.isa.builder import ProgramBuilder
from repro.workloads.suite import get_workload


def micro_program(steps: int = 8, width: int = 4):
    """A minimal update/recompute/consume kernel in the suite's shape.

    Each step stores an update value into ``xs[0]`` (mostly silent —
    ``upd`` repeats values), recomputes ``sum = Σ xs[i]`` from scratch
    (the convertible region: register-closed, single entry/exit), then
    consumes ``sum`` through ``out``.
    """
    b = ProgramBuilder()
    b.data("xs", [(3, 1, 4, 1)[i % 4] for i in range(width)])
    b.data("upd", [(7, 7, 7, 5, 7, 7, 5, 7)[i % 8] for i in range(steps)])
    b.zeros("sum", 1)
    with b.function("main"):
        t = b.global_reg("t")
        with b.for_range(t, 0, steps):
            with b.scratch(3) as (u, v, x):
                b.la(u, "upd")
                b.ldx(v, u, t)
                b.la(x, "xs")
                b.st(v, x, 0)  # the feeder: mostly-silent update
            with b.scratch(4) as (i, base, s, tmp):
                b.la(base, "xs")  # the region: full recompute of sum
                b.li(s, 0)
                with b.for_range(i, 0, width):
                    b.ldx(tmp, base, i)
                    b.add(s, s, tmp)
                b.la(tmp, "sum")
                b.st(s, tmp, 0)
            with b.scratch(2) as (p, q):
                b.la(p, "sum")  # the consumer
                b.ld(q, p, 0)
                b.out(q)
        b.halt()
    return b.build()


def feeder_ops(program, candidate):
    return [program.instructions[pc].op for pc in candidate.store_pcs]


def test_discovers_the_recompute_region():
    program = micro_program()
    candidates = discover_candidates(program)
    assert len(candidates) == 1
    (candidate,) = candidates
    region_ops = [program.instructions[pc].op
                  for pc in range(candidate.region_start,
                                  candidate.region_end)]
    # the region is the full recompute: loads xs, stores sum
    assert "ldx" in region_ops and "st" in region_ops
    assert "out" not in region_ops
    assert feeder_ops(program, candidate) == ["st"]


def test_region_is_register_closed():
    """Every register the region reads is first defined inside it."""
    from repro.isa.instructions import operand_roles

    program = micro_program()
    (candidate,) = discover_candidates(program)
    defined = set()
    for pc in range(candidate.region_start, candidate.region_end):
        instruction = program.instructions[pc]
        dest, sources = operand_roles(instruction.op)
        for slot in sources:
            assert getattr(instruction, slot) in defined, \
                f"pc {pc} reads a register the region never defined"
        if dest is not None:
            defined.add(getattr(instruction, dest))


def test_no_candidate_when_a_writer_follows_the_region():
    """A store into the region's inputs *after* the consume barrier
    could go stale without re-triggering; discovery must refuse."""
    b = ProgramBuilder()
    b.data("xs", [3, 1, 4, 1])
    b.zeros("sum", 1)
    with b.function("main"):
        t = b.global_reg("t")
        with b.for_range(t, 0, 4):
            with b.scratch(4) as (i, base, s, tmp):
                b.la(base, "xs")
                b.li(s, 0)
                with b.for_range(i, 0, 4):
                    b.ldx(tmp, base, i)
                    b.add(s, s, tmp)
                b.la(tmp, "sum")
                b.st(s, tmp, 0)
            with b.scratch(2) as (p, q):
                b.la(p, "sum")
                b.ld(q, p, 0)
                b.out(q)
                b.la(p, "xs")
                b.stx(q, p, t)  # writer AFTER the region
        b.halt()
    assert discover_candidates(b.build()) == []


def test_no_candidate_without_an_outside_consumer():
    """A region whose result nothing reads is dead work, not a thread."""
    b = ProgramBuilder()
    b.data("xs", [3, 1, 4, 1])
    b.zeros("sum", 1)
    with b.function("main"):
        t = b.global_reg("t")
        with b.for_range(t, 0, 4):
            with b.scratch(2) as (v, x):
                b.la(x, "xs")
                b.li(v, 7)
                b.st(v, x, 0)
            with b.scratch(4) as (i, base, s, tmp):
                b.la(base, "xs")
                b.li(s, 0)
                with b.for_range(i, 0, 4):
                    b.ldx(tmp, base, i)
                    b.add(s, s, tmp)
                b.la(tmp, "sum")
                b.st(s, tmp, 0)
            # nobody ever loads sum
        b.halt()
    assert discover_candidates(b.build()) == []


def test_dtt_programs_yield_no_candidates():
    """Already-converted programs contain DTT ops; nothing to convert."""
    mcf = get_workload("mcf")
    build = mcf.build_dtt(mcf.make_input())
    assert discover_candidates(build.program) == []


def test_mcf_discovery_matches_the_hand_conversion_shape():
    """On mcf the discovered region is the refresh walk, fed by the
    cost-update store — the exact pair the hand conversion uses."""
    mcf = get_workload("mcf")
    program = mcf.build_baseline(mcf.make_input())
    candidates = discover_candidates(program)
    assert len(candidates) == 1
    (candidate,) = candidates
    assert feeder_ops(program, candidate) == ["stx"]
    region_ops = {program.instructions[pc].op
                  for pc in range(candidate.region_start,
                                  candidate.region_end)}
    assert {"ldx", "stx"} <= region_ops


def test_ranking_scores_silentness_times_redundancy():
    program = micro_program()
    (candidate,) = rank_candidates(program)
    assert candidate.dynamic_stores == 8
    # upd = 7,7,7,5,7,7,5,7 into xs[0]=3: stores 2..3, 5..6, 8 are silent
    assert 0 < candidate.silent_stores < candidate.dynamic_stores
    assert candidate.region_loads > 0
    assert candidate.redundant_loads > 0
    # score = silent fraction x redundant-load mass: both factors in
    # (0, 1], so the product is bounded by the silent fraction alone
    assert 0 < candidate.score <= candidate.silent_fraction
    assert candidate.ci_low is None  # exact profile: no interval


def test_min_dynamic_stores_filters_one_shot_feeders():
    program = micro_program(steps=2)
    assert rank_candidates(program, min_dynamic_stores=4) == []
    kept = rank_candidates(program, min_dynamic_stores=1)
    assert len(kept) == 1


def test_sampled_ranking_carries_ci_bounds():
    program = micro_program()
    (candidate,) = rank_candidates(program, sample_rate=1)
    assert candidate.ci_low is not None
    assert candidate.ci_high is not None
    assert 0.0 <= candidate.ci_low <= candidate.ci_high
    # rate 1 samples every address: the point score sits in the interval
    assert candidate.ci_low <= candidate.score * 1.0001


def test_as_dict_is_json_ready():
    import json

    program = micro_program()
    (candidate,) = rank_candidates(program, sample_rate=1)
    row = json.loads(json.dumps(candidate.as_dict()))
    assert row["region_start"] == candidate.region_start
    assert row["store_pcs"] == list(candidate.store_pcs)
    assert "score_ci_low" in row
