"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) promises doc comments on every public item; this test
makes the promise mechanical.  "Public" = importable module in the
``repro`` package plus every class and function it defines whose name
does not start with an underscore.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _documented(obj) -> bool:
    return bool(obj.__doc__ and obj.__doc__.strip())


def _member_documented(cls, member_name) -> bool:
    """A method is documented if it or any base-class override carries a
    docstring (the standard convention: the contract lives on the base)."""
    for base in cls.__mro__:
        member = vars(base).get(member_name)
        if member is not None and _documented(member):
            return True
    return False


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not _documented(obj):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if not inspect.isfunction(member):
                    continue
                if not _member_documented(obj, member_name):
                    undocumented.append(
                        f"{module.__name__}.{name}.{member_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"
