"""Mechanism-overhead microbenchmarks.

The paper argues the DTT hardware additions are cheap; this module
measures the mechanism costs of *this* implementation in isolation, each
as a per-event cycle figure obtained by differencing two timed runs that
differ only in the mechanism under test:

* **silent triggering store** vs a plain store — what a ``tst`` costs when
  the value filter suppresses it (the common case);
* **clean consume point** — what a ``tcheck`` costs when nothing fired;
* **trigger-to-result** — cycles from a firing trigger to the consume
  point unblocking, for a minimal support thread (spawn latency + queue +
  dispatch + body + barrier), against the same computation inlined;
* **superblock code cache** — first-run compile cost per program and the
  steady-state hit rate across machine re-runs of cached programs, so a
  cache regression (recompiling per run) shows up in history trends.

Used by ``benchmarks/bench_micro_overheads.py`` and the overhead tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.harness.results import ExperimentResult
from repro.isa.builder import ProgramBuilder
from repro.timing.params import named_config
from repro.timing.system import TimingSimulator

ITERATIONS = 600


def _timed(program, specs=None):
    engine = None
    if specs is not None:
        engine = DttEngine(ThreadRegistry(specs), deferred=True)
    return TimingSimulator(program, named_config("smt2"), engine=engine).run()


def _store_loop(triggering: bool, with_thread: bool) -> Tuple:
    """A loop of silent stores; optionally tst, optionally a dummy thread."""
    b = ProgramBuilder()
    b.data("cell", [7])
    if with_thread:
        with b.thread("noop"):
            b.treturn()
    pc_box: List[int] = []
    with b.function("main"):
        t = b.global_reg("t")
        with b.for_range(t, 0, ITERATIONS):
            with b.scratch(2) as (base, v):
                b.la(base, "cell")
                b.li(v, 7)  # always the value already there
                if triggering:
                    pc_box.append(b.tst(v, base, 0))
                else:
                    pc_box.append(b.st(v, base, 0))
        b.halt()
    program = b.build()
    specs = None
    if with_thread:
        specs = [TriggerSpec("noop", store_pcs=[pc_box[0]],
                             per_address_dedupe=False)]
    return program, specs


def silent_tstore_overhead() -> float:
    """Extra cycles per silent triggering store vs a plain store."""
    plain, _ = _store_loop(triggering=False, with_thread=False)
    tstores, specs = _store_loop(triggering=True, with_thread=True)
    baseline = _timed(plain)
    filtered = _timed(tstores, specs)
    return (filtered.cycles - baseline.cycles) / ITERATIONS


def _tcheck_loop(with_tcheck: bool) -> Tuple:
    b = ProgramBuilder()
    b.data("cell", [7])
    with b.thread("noop"):
        b.treturn()
    with b.function("main"):
        t = b.global_reg("t")
        with b.for_range(t, 0, ITERATIONS):
            if with_tcheck:
                b.tcheck_thread("noop")
            else:
                b.nop()  # same instruction count either way
        b.halt()
    program = b.build()
    specs = [TriggerSpec("noop", store_pcs=[0], per_address_dedupe=False)]
    return program, specs


def clean_tcheck_overhead() -> float:
    """Extra cycles per consume point that skips clean, vs a nop."""
    nops, specs = _tcheck_loop(with_tcheck=False)
    tchecks, specs2 = _tcheck_loop(with_tcheck=True)
    return (_timed(tchecks, specs2).cycles - _timed(nops, specs).cycles) \
        / ITERATIONS


def _compute_body(b: ProgramBuilder, work: int) -> None:
    """sum <- cell * work-ish; a small deterministic computation."""
    with b.scratch(3) as (base, acc, i):
        b.la(base, "cell")
        b.ld(acc, base, 0)
        with b.for_range(i, 0, work):
            b.addi(acc, acc, 1)
        with b.scratch(1) as (p,):
            b.la(p, "sum")
            b.st(acc, p, 0)


def _trigger_roundtrip(as_thread: bool, work: int = 8) -> Tuple:
    """Per iteration: a firing store, then (thread+tcheck | inline body)."""
    b = ProgramBuilder()
    b.data("cell", [0])
    b.data("sum", [0])
    if as_thread:
        with b.thread("compute"):
            _compute_body(b, work)
            b.treturn()
    pc_box: List[int] = []
    with b.function("main"):
        t = b.global_reg("t")
        with b.for_range(t, 0, ITERATIONS):
            with b.scratch(2) as (base, v):
                b.la(base, "cell")
                b.addi(v, t, 1)  # always changes
                if as_thread:
                    pc_box.append(b.tst(v, base, 0))
                else:
                    pc_box.append(b.st(v, base, 0))
            if as_thread:
                b.tcheck_thread("compute")
            else:
                _compute_body(b, work)
        b.halt()
    program = b.build()
    specs = None
    if as_thread:
        specs = [TriggerSpec("compute", store_pcs=[pc_box[0]],
                             per_address_dedupe=False)]
    return program, specs


def trigger_roundtrip_overhead(work: int = 8) -> float:
    """Extra cycles per fire-dispatch-execute-barrier round trip, versus
    executing the same tiny body inline (positive: the mechanism costs
    more than it overlaps for a body this small)."""
    inline, _ = _trigger_roundtrip(as_thread=False, work=work)
    threaded, specs = _trigger_roundtrip(as_thread=True, work=work)
    return (_timed(threaded, specs).cycles - _timed(inline).cycles) \
        / ITERATIONS


def instrumentation_overhead(repeats: int = 3) -> Tuple[float, float, float]:
    """Wall-clock cost of attaching the metrics registry to an engine run.

    Runs the same DTT timed run ``repeats`` times bare and ``repeats``
    times with a :class:`~repro.obs.metrics.MetricsRegistry` attached,
    taking the minimum of each (noise rejection).  Returns
    ``(bare_seconds, metered_seconds, ratio)``.  The observability layer
    must never become the hot path: the guard asserted by the overhead
    benchmark is ratio < 2.
    """
    import time

    from repro.obs.metrics import MetricsRegistry
    from repro.workloads.suite import SUITE

    workload = SUITE["perlbmk"]
    inp = workload.make_input(None, None)

    def one_run(metrics) -> float:
        build = workload.build_dtt(inp)
        engine = build.engine(deferred=True)
        simulator = TimingSimulator(build.program, named_config("smt2"),
                                    engine=engine, metrics=metrics)
        started = time.perf_counter()
        simulator.run()
        return time.perf_counter() - started

    bare = min(one_run(None) for _ in range(repeats))
    metered = min(one_run(MetricsRegistry()) for _ in range(repeats))
    return bare, metered, metered / bare if bare else 1.0


def superblock_cache_overhead(runs_per_program: int = 4) -> Dict[str, float]:
    """Compile cost and steady-state hit rate of the superblock cache.

    Runs each interpreter-bench workload ``runs_per_program`` times under
    the superblock tier on fresh machines sharing one program object (the
    long-lived-harness shape), after resetting the cache counters.
    Returns the :func:`~repro.machine.superblock.cache_stats` snapshot
    plus ``programs`` and ``build_seconds_per_program`` — the first run
    of each program is the only compile, so ``hit_rate`` must converge
    to ``(runs - 1) / runs``.
    """
    from repro.harness.bench import BENCH_WORKLOADS
    from repro.machine import superblock
    from repro.machine.machine import Machine, run_to_completion
    from repro.workloads.suite import SUITE

    superblock.reset_cache_stats()
    programs = 0
    for name in BENCH_WORKLOADS:
        workload = SUITE[name]
        program = workload.build_baseline(workload.make_input(None, None))
        programs += 1
        for _run in range(max(runs_per_program, 1)):
            run_to_completion(Machine(program), tier="superblock")
    stats = dict(superblock.cache_stats())
    stats["programs"] = programs
    stats["build_seconds_per_program"] = (
        stats["build_seconds"] / programs if programs else 0.0)
    return stats


def run_micro_overheads() -> ExperimentResult:
    """The mechanism-overhead table (appendix-style; not a paper figure)."""
    silent = silent_tstore_overhead()
    clean = clean_tcheck_overhead()
    roundtrip = trigger_roundtrip_overhead()
    cache = superblock_cache_overhead()
    rows = [
        ["silent triggering store (vs plain store)", f"{silent:.2f} cycles"],
        ["clean consume point (vs nop)", f"{clean:.2f} cycles"],
        ["fire->dispatch->execute->barrier round trip, 8-op body "
         "(vs inline)", f"{roundtrip:.2f} cycles"],
        ["superblock compile (per program, first run)",
         f"{cache['build_seconds_per_program'] * 1000:.1f} ms"],
        ["superblock code-cache hit rate (4 runs/program)",
         f"{cache['hit_rate']:.2f}"],
    ]
    result = ExperimentResult(
        "M1",
        "DTT mechanism overheads in isolation (per event)",
        ["mechanism", "overhead"],
        rows,
        paper_claim="the DTT hardware additions are cheap; the common cases "
                    "(silent store, clean consume) must cost ~nothing",
        notes="appendix-style microbenchmarks; not one of the paper's figures",
    )
    result.add_check("silent triggering stores are essentially free",
                     abs(silent) < 0.5, f"{silent:.2f} cycles/store")
    result.add_check("clean consume points are essentially free",
                     abs(clean) < 2.0, f"{clean:.2f} cycles/consume")
    result.add_check(
        "thread round trip costs tens of cycles, not hundreds",
        -5.0 < roundtrip < 100.0,
        f"{roundtrip:.2f} cycles/round-trip",
    )
    result.add_check(
        "superblock compile stays far under one benchmark repetition",
        0.0 < cache["build_seconds_per_program"] < 0.5,
        f"{cache['build_seconds_per_program'] * 1000:.1f} ms/program",
    )
    result.add_check(
        "code cache hits every re-run of a cached program",
        cache["cache_misses"] == cache["programs"]
        and cache["hit_rate"] >= 0.7,
        f"hit rate {cache['hit_rate']:.2f} "
        f"({cache['cache_hits']:g} hits / {cache['cache_misses']:g} misses)",
    )
    return result
