"""Plain-text table and bar-chart rendering for experiment reports."""

from __future__ import annotations

from typing import List, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as a boxed, column-aligned text table."""
    table = [[_format_cell(cell) for cell in row] for row in rows]
    header = [str(h) for h in headers]
    widths = [len(h) for h in header]
    for row in table:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: List[str]) -> str:
        padded = [cells[i].ljust(widths[i]) if i < len(cells) else " " * widths[i]
                  for i in range(len(widths))]
        return "| " + " | ".join(padded) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [rule, line(header), rule]
    out.extend(line(row) for row in table)
    out.append(rule)
    return "\n".join(out)


def bar_series(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a labeled horizontal bar chart (a text 'figure').

    The longest bar spans ``width`` characters; values are printed next to
    each bar, so the series reads like the paper's per-benchmark figures.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return "(empty series)"
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        length = int(round(width * value / peak)) if peak > 0 else 0
        bar = "#" * max(length, 0)
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)
