"""Interpreter benchmark: instructions/sec per execution tier.

``dtt-harness bench`` (and ``benchmarks/bench_interpreter.py``) measure
the fast execution tiers of :class:`~repro.machine.machine.Machine` —
the per-PC closure thunks and the exec-compiled superblock tier — against
legacy per-instruction stepping, on three workload classes:

* ``mcf`` — pointer-chasing integer code, the paper's headline workload
  and the worst case for per-instruction interpreter overhead;
* ``equake`` — floating-point kernel code;
* ``perlbmk`` — control/branch-heavy code.

Each measurement runs the workload's *baseline* program to completion on
a fresh machine per attempt (the program object is reused, so the
superblock code cache behaves as in a long-lived harness process), and
verifies every tier retired the same instructions and produced
byte-identical output/memory/counters.  One **warmup repetition is run
and discarded** before timing — it absorbs the superblock tier's
first-run compile cost (reported separately as ``build_seconds``) so
steady-state ``instructions_per_sec`` is not polluted; the timed
repetitions report both min (``seconds``, the rate basis) and
``mean_seconds``.

The result dict is written as ``BENCH_interpreter.json`` (kind
``bench_interpreter``, schema 2: one row per ``workload:tier``), which
``dtt-harness compare`` understands: ``instructions_per_sec``,
``speedup`` (vs legacy stepping), and ``speedup_vs_closure`` gate
regressions (they may only fall); the legacy rate and all wall-clock
cells are informational.

``dtt-harness bench --trace`` runs the companion **trace-overhead
benchmark** (:func:`run_trace_bench`, written as
``BENCH_trace_overhead.json``, kind ``bench_trace_overhead``): ctrace
bytes/event and compression ratio over the JSON Chrome export, codec
events/sec, and the sampled profiler's absolute error against the exact
profiler with its 95 % CI width.  ``compare`` gates ``bytes_per_event``
and ``sampled_abs_error`` (may only rise) and ``compression_ratio``
(may only fall); wall-clock throughput (``events_per_sec``,
``encode_seconds``, ``decode_seconds``) is informational only.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.errors import MachineError
from repro.machine.context import ContextState
from repro.machine.machine import Machine
from repro.workloads.suite import SUITE

#: workload class -> why it is in the benchmark set
BENCH_WORKLOADS = {
    "mcf": "pointer-chasing integer (paper headline)",
    "equake": "floating-point kernel",
    "perlbmk": "control/branch-heavy",
}

#: schema version of BENCH_interpreter.json (2: per-tier rows keyed
#: ``workload:tier``, min+mean timings, build_seconds column)
BENCH_SCHEMA = 2

#: schema version of BENCH_trace_overhead.json (unchanged by schema 2
#: of the interpreter bench — the trace rows kept their shape)
TRACE_BENCH_SCHEMA = 1

#: fast tiers measured per workload, in baseline-comparison order
BENCH_TIERS = ("closure", "superblock")


def _run_legacy(machine: Machine) -> None:
    """Drive the main context with per-instruction step() calls."""
    main = machine.main_context
    step = machine.step
    while main.state is ContextState.RUNNING:
        step(main)


def _tier_driver(tier: str):
    def drive(machine: Machine) -> None:
        machine.run(machine.main_context, tier=tier)
    return drive


def _fingerprint(machine: Machine) -> Dict:
    """Everything two equivalent runs must agree on."""
    memory = machine.memory
    lo, hi = memory.written_range()
    return {
        "output": list(machine.output),
        "instructions_executed": machine.instructions_executed,
        "main_instructions": machine.main_instructions,
        "support_instructions": machine.support_instructions,
        "load_count": memory.load_count,
        "store_count": memory.store_count,
        "final_pc": machine.main_context.pc,
        # counted batched readback of the whole written span; runs after
        # the counters above were captured, so it never perturbs them
        "memory_words": memory.load_range(lo, hi - lo + 1) if memory else [],
    }


def _measure(program, driver, repeat: int, max_instructions: int):
    """Warmup (discarded) + ``repeat`` timed runs; (min, mean, fingerprint)."""
    machine = Machine(program, max_instructions=max_instructions)
    driver(machine)  # warmup: compiles caches, warms dicts — never timed
    timings: List[float] = []
    for _attempt in range(max(repeat, 1)):
        machine = Machine(program, max_instructions=max_instructions)
        started = time.perf_counter()
        driver(machine)
        timings.append(time.perf_counter() - started)
    return min(timings), sum(timings) / len(timings), _fingerprint(machine)


def bench_workload(name: str, repeat: int = 3,
                   seed: Optional[int] = None, scale: Optional[int] = None,
                   max_instructions: int = 50_000_000,
                   tiers: Optional[List[str]] = None) -> Dict[str, Dict]:
    """Measure one workload class; returns its per-tier BENCH rows."""
    from repro.machine.superblock import cache_stats

    workload = SUITE[name]
    inp = workload.make_input(seed=seed, scale=scale)
    program = workload.build_baseline(inp)
    tier_names = list(tiers) if tiers else list(BENCH_TIERS)
    legacy_seconds, _legacy_mean, legacy_fp = _measure(
        program, _run_legacy, repeat, max_instructions)
    instructions = legacy_fp["instructions_executed"]
    legacy_ips = instructions / legacy_seconds if legacy_seconds else 0.0
    rows: Dict[str, Dict] = {}
    closure_ips = None
    for tier in tier_names:
        build_before = cache_stats()["build_seconds"]
        seconds, mean_seconds, fp = _measure(
            program, _tier_driver(tier), repeat, max_instructions)
        build_seconds = (cache_stats()["build_seconds"] - build_before
                         if tier == "superblock" else 0.0)
        if fp != legacy_fp:
            raise MachineError(
                f"{tier} tier diverged from legacy stepping on {name!r}: "
                + ", ".join(
                    key for key in legacy_fp if legacy_fp[key] != fp[key]
                )
            )
        ips = instructions / seconds if seconds else 0.0
        if tier == "closure":
            closure_ips = ips
        row = {
            "description": BENCH_WORKLOADS.get(name, ""),
            "workload": name,
            "tier": tier,
            "instructions": instructions,
            "legacy_seconds": legacy_seconds,
            "legacy_instructions_per_sec": legacy_ips,
            "seconds": seconds,
            "mean_seconds": mean_seconds,
            "build_seconds": build_seconds,
            "instructions_per_sec": ips,
            "speedup": ips / legacy_ips if legacy_ips else 0.0,
        }
        if closure_ips:
            # absent (not 0.0) when closure wasn't measured this run, so
            # a --tier superblock result can't fake a gating collapse
            row["speedup_vs_closure"] = ips / closure_ips
        rows[f"{name}:{tier}"] = row
    return rows


def run_bench(workloads: Optional[List[str]] = None, repeat: int = 3,
              seed: Optional[int] = None, scale: Optional[int] = None,
              max_instructions: int = 50_000_000,
              tiers: Optional[List[str]] = None) -> Dict:
    """Benchmark every requested workload class; returns the BENCH dict."""
    from repro.machine.machine import TIERS

    names = list(workloads) if workloads else list(BENCH_WORKLOADS)
    for name in names:
        if name not in SUITE:
            raise MachineError(
                f"unknown bench workload {name!r} (suite has: "
                f"{', '.join(sorted(SUITE))})"
            )
    for tier in tiers or ():
        if tier not in TIERS or tier == "legacy":
            raise MachineError(
                f"unknown bench tier {tier!r} (choose from "
                f"{', '.join(BENCH_TIERS)})"
            )
    rows: Dict[str, Dict] = {}
    for name in names:
        rows.update(bench_workload(name, repeat=repeat, seed=seed,
                                   scale=scale,
                                   max_instructions=max_instructions,
                                   tiers=tiers))
    return {
        "kind": "bench_interpreter",
        "schema": BENCH_SCHEMA,
        "repeat": repeat,
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# trace-overhead benchmark (``dtt-harness bench --trace``)
# ---------------------------------------------------------------------------

#: workload class -> why it is in the trace benchmark set (same classes
#: as the interpreter bench: the event mix differs with the code style)
TRACE_BENCH_WORKLOADS = dict(BENCH_WORKLOADS)


def bench_trace_workload(name: str, repeat: int = 3,
                         seed: Optional[int] = None,
                         scale: Optional[int] = None,
                         sample_rate: int = 64) -> Dict:
    """Measure the observability costs of one workload class.

    Three questions, one row:

    * **compressed-trace density** — bytes/event of the ctrace encoding
      of a real DTT run's event stream, and the compression ratio over
      the JSON Chrome export of the same events;
    * **codec throughput** — events/sec through encode (best of
      ``repeat`` attempts; decode wall-clock is reported as an
      informational ``decode_seconds``);
    * **sampling accuracy** — absolute error of the 1/``sample_rate``
      sampled redundant-load estimate against the exact profiler, plus
      the estimate's 95 % CI width (the error should sit inside it).
    """
    import os
    import tempfile

    from repro.core.trace import EngineTrace
    from repro.obs.ctrace import CTraceReader, write_trace
    from repro.obs.timeline import traces_to_chrome
    from repro.profiling.report import profile_program
    from repro.timing.params import named_config
    from repro.timing.system import TimingSimulator

    workload = SUITE[name]
    inp = workload.make_input(seed=seed, scale=scale)
    build = workload.build_dtt(inp)
    engine = build.engine(deferred=True)
    trace = EngineTrace(engine)
    TimingSimulator(build.program, named_config("smt2"), engine=engine).run()
    events = len(trace.events)
    if events == 0:
        raise MachineError(f"{name!r} produced no trace events to measure")

    best_encode = best_decode = None
    ctrace_bytes = 0
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "bench.ctrace")
        for _attempt in range(max(repeat, 1)):
            started = time.perf_counter()
            footer = write_trace(path, (name, trace))
            elapsed = time.perf_counter() - started
            if best_encode is None or elapsed < best_encode:
                best_encode = elapsed
            ctrace_bytes = footer["bytes"]
            started = time.perf_counter()
            decoded = sum(1 for _ in CTraceReader(path).stream(name).events)
            elapsed = time.perf_counter() - started
            if best_decode is None or elapsed < best_decode:
                best_decode = elapsed
        if decoded != events:
            raise MachineError(
                f"ctrace round-trip lost events on {name!r}: "
                f"{events} written, {decoded} read back")
    chrome_bytes = len(json.dumps(traces_to_chrome([(name, trace)]),
                                  indent=1).encode("utf-8"))

    exact = profile_program(workload.build_baseline(inp), name)
    sampled = profile_program(workload.build_baseline(inp), name,
                              sample_rate=sample_rate)
    estimate = sampled.loads.load_estimate
    exact_fraction = exact.loads.redundant_load_fraction
    return {
        "description": TRACE_BENCH_WORKLOADS.get(name, ""),
        "events": events,
        "ctrace_bytes": ctrace_bytes,
        "chrome_json_bytes": chrome_bytes,
        "bytes_per_event": ctrace_bytes / events,
        "compression_ratio": (chrome_bytes / ctrace_bytes
                              if ctrace_bytes else 0.0),
        "encode_seconds": best_encode,
        "decode_seconds": best_decode,
        "events_per_sec": events / best_encode if best_encode else 0.0,
        "sample_rate": sample_rate,
        "redundant_load_fraction": exact_fraction,
        "sampled_fraction": estimate.fraction,
        "sampled_abs_error": abs(estimate.fraction - exact_fraction),
        "sampled_fraction_ci_width": estimate.ci_width,
        "sampled_in_ci": bool(estimate.contains(exact_fraction)),
    }


def run_trace_bench(workloads: Optional[List[str]] = None, repeat: int = 3,
                    seed: Optional[int] = None, scale: Optional[int] = None,
                    sample_rate: int = 64) -> Dict:
    """The trace-overhead benchmark; result is ``BENCH_trace_overhead.json``."""
    names = list(workloads) if workloads else list(TRACE_BENCH_WORKLOADS)
    for name in names:
        if name not in SUITE:
            raise MachineError(
                f"unknown bench workload {name!r} (suite has: "
                f"{', '.join(sorted(SUITE))})"
            )
    rows = {
        name: bench_trace_workload(name, repeat=repeat, seed=seed,
                                   scale=scale, sample_rate=sample_rate)
        for name in names
    }
    return {
        "kind": "bench_trace_overhead",
        "schema": TRACE_BENCH_SCHEMA,
        "repeat": repeat,
        "rows": rows,
    }


def render_trace_bench(result: Dict) -> str:
    """Terminal table of one ``run_trace_bench`` result."""
    lines = ["trace-overhead benchmark (best of "
             f"{result.get('repeat', '?')})"]
    lines.append(
        f"  {'workload':<10} {'events':>8} {'B/event':>8} {'ratio':>7} "
        f"{'encode':>12} {'sample err':>10} {'CI width':>9}")
    for name, row in result.get("rows", {}).items():
        lines.append(
            f"  {name:<10} {row['events']:>8,} "
            f"{row['bytes_per_event']:>8.2f} "
            f"{row['compression_ratio']:>6.1f}x "
            f"{row['events_per_sec']:>10,.0f}/s "
            f"{row['sampled_abs_error']:>10.4f} "
            f"{row['sampled_fraction_ci_width']:>9.4f}"
        )
    return "\n".join(lines)


def render_bench(result: Dict) -> str:
    """Terminal table of one ``run_bench`` result."""
    lines = ["interpreter benchmark (instructions/sec, min of "
             f"{result.get('repeat', '?')} after warmup)"]
    header = (f"  {'workload:tier':<22} {'instructions':>12} {'rate':>12} "
              f"{'build':>8} {'speedup':>8} {'vs closure':>10}")
    lines.append(header)
    for name, row in result.get("rows", {}).items():
        vs_closure = row.get("speedup_vs_closure")
        lines.append(
            f"  {name:<22} {row['instructions']:>12,} "
            f"{row['instructions_per_sec']:>11,.0f}/s "
            f"{row['build_seconds'] * 1e3:>6.1f}ms "
            f"{row['speedup']:>7.2f}x "
            + (f"{vs_closure:>9.2f}x" if vs_closure is not None
               else f"{'-':>10}")
        )
    return "\n".join(lines)


def write_bench(result: Dict, path: str) -> None:
    """Write ``BENCH_interpreter.json`` atomically."""
    from repro.obs.ioutil import atomic_write_text

    atomic_write_text(path, json.dumps(result, indent=2, sort_keys=True) + "\n")
