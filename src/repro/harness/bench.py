"""Interpreter benchmark: instructions/sec, fast path vs legacy stepping.

``dtt-harness bench`` (and ``benchmarks/bench_interpreter.py``) measure
the two execution tiers of :class:`~repro.machine.machine.Machine` on
three workload classes:

* ``mcf`` — pointer-chasing integer code, the paper's headline workload
  and the worst case for per-instruction interpreter overhead;
* ``equake`` — floating-point kernel code;
* ``perlbmk`` — control/branch-heavy code.

Each measurement runs the workload's *baseline* program to completion
once per tier on a fresh machine, verifies the two tiers retired the same
instructions and produced byte-identical output/memory/counters, and
reports the best of ``repeat`` timed attempts.  The result dict is
written as ``BENCH_interpreter.json`` (kind ``bench_interpreter``), which
``dtt-harness compare`` understands: ``instructions_per_sec`` and
``speedup`` gate regressions (they may only fall), the legacy rate and
wall-clock cells are informational.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.errors import MachineError
from repro.machine.context import ContextState
from repro.machine.machine import Machine
from repro.workloads.suite import SUITE

#: workload class -> why it is in the benchmark set
BENCH_WORKLOADS = {
    "mcf": "pointer-chasing integer (paper headline)",
    "equake": "floating-point kernel",
    "perlbmk": "control/branch-heavy",
}

#: schema version of BENCH_interpreter.json
BENCH_SCHEMA = 1


def _run_legacy(machine: Machine) -> None:
    """Drive the main context with per-instruction step() calls."""
    main = machine.main_context
    step = machine.step
    while main.state is ContextState.RUNNING:
        step(main)


def _run_fast(machine: Machine) -> None:
    """Drive the main context with the batched fast path."""
    machine.run(machine.main_context)


def _fingerprint(machine: Machine) -> Dict:
    """Everything two equivalent runs must agree on."""
    memory = machine.memory
    lo, hi = memory.written_range()
    return {
        "output": list(machine.output),
        "instructions_executed": machine.instructions_executed,
        "main_instructions": machine.main_instructions,
        "support_instructions": machine.support_instructions,
        "load_count": memory.load_count,
        "store_count": memory.store_count,
        "final_pc": machine.main_context.pc,
        # counted batched readback of the whole written span; runs after
        # the counters above were captured, so it never perturbs them
        "memory_words": memory.load_range(lo, hi - lo + 1) if memory else [],
    }


def bench_workload(name: str, repeat: int = 3,
                   seed: Optional[int] = None, scale: Optional[int] = None,
                   max_instructions: int = 50_000_000) -> Dict:
    """Measure one workload class; returns its BENCH row."""
    workload = SUITE[name]
    inp = workload.make_input(seed=seed, scale=scale)
    program = workload.build_baseline(inp)
    best: Dict[str, float] = {}
    fingerprints: List[Dict] = []
    for tier, driver in (("legacy", _run_legacy), ("fast", _run_fast)):
        best_seconds = None
        for _attempt in range(max(repeat, 1)):
            machine = Machine(program, max_instructions=max_instructions)
            started = time.perf_counter()
            driver(machine)
            elapsed = time.perf_counter() - started
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
        best[tier] = best_seconds
        fingerprints.append(_fingerprint(machine))
    legacy_fp, fast_fp = fingerprints
    if legacy_fp != fast_fp:
        raise MachineError(
            f"fast path diverged from legacy stepping on {name!r}: "
            + ", ".join(
                key for key in legacy_fp if legacy_fp[key] != fast_fp[key]
            )
        )
    instructions = fast_fp["instructions_executed"]
    legacy_ips = instructions / best["legacy"] if best["legacy"] else 0.0
    fast_ips = instructions / best["fast"] if best["fast"] else 0.0
    return {
        "description": BENCH_WORKLOADS.get(name, ""),
        "instructions": instructions,
        "legacy_seconds": best["legacy"],
        "fast_seconds": best["fast"],
        "legacy_instructions_per_sec": legacy_ips,
        "instructions_per_sec": fast_ips,
        "speedup": fast_ips / legacy_ips if legacy_ips else 0.0,
    }


def run_bench(workloads: Optional[List[str]] = None, repeat: int = 3,
              seed: Optional[int] = None, scale: Optional[int] = None,
              max_instructions: int = 50_000_000) -> Dict:
    """Benchmark every requested workload class; returns the BENCH dict."""
    names = list(workloads) if workloads else list(BENCH_WORKLOADS)
    for name in names:
        if name not in SUITE:
            raise MachineError(
                f"unknown bench workload {name!r} (suite has: "
                f"{', '.join(sorted(SUITE))})"
            )
    rows = {
        name: bench_workload(name, repeat=repeat, seed=seed, scale=scale,
                             max_instructions=max_instructions)
        for name in names
    }
    return {
        "kind": "bench_interpreter",
        "schema": BENCH_SCHEMA,
        "repeat": repeat,
        "rows": rows,
    }


def render_bench(result: Dict) -> str:
    """Terminal table of one ``run_bench`` result."""
    lines = ["interpreter benchmark (instructions/sec, best of "
             f"{result.get('repeat', '?')})"]
    header = (f"  {'workload':<10} {'instructions':>12} {'legacy':>12} "
              f"{'fast':>12} {'speedup':>8}")
    lines.append(header)
    for name, row in result.get("rows", {}).items():
        lines.append(
            f"  {name:<10} {row['instructions']:>12,} "
            f"{row['legacy_instructions_per_sec']:>11,.0f}/s "
            f"{row['instructions_per_sec']:>11,.0f}/s "
            f"{row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def write_bench(result: Dict, path: str) -> None:
    """Write ``BENCH_interpreter.json`` atomically."""
    from repro.obs.ioutil import atomic_write_text

    atomic_write_text(path, json.dumps(result, indent=2, sort_keys=True) + "\n")
