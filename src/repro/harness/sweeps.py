"""Robustness sweeps: the headline results across seeds and scales.

The calibrated workload inputs are seeded; a reproduction whose claims
only hold at one seed would be fragile.  These sweeps re-measure the
headline quantities (E1's redundancy average, E3's speedup distribution)
across independent seeds and report the spread, so EXPERIMENTS.md's
numbers can be quoted with confidence intervals rather than as point
estimates.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.harness.experiments import geometric_mean
from repro.harness.results import ExperimentResult
from repro.harness.runner import SuiteRunner
from repro.workloads.suite import SUITE

#: default seeds for robustness sweeps (arbitrary, fixed for determinism)
DEFAULT_SEEDS = (1234, 999, 31337)


def _mean_std(values: Sequence[float]):
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def sweep_redundancy(seeds: Sequence[int] = DEFAULT_SEEDS,
                     scale: Optional[int] = None) -> ExperimentResult:
    """E1's suite-average redundant-load fraction across seeds."""
    averages: List[float] = []
    rows = []
    for seed in seeds:
        runner = SuiteRunner(seed=seed, scale=scale)
        fractions = [runner.profile(w).redundant_load_fraction
                     for w in SUITE.values()]
        average = sum(fractions) / len(fractions)
        averages.append(average)
        rows.append([seed, f"{average:.1%}",
                     f"{min(fractions):.1%}", f"{max(fractions):.1%}"])
    mean, std = _mean_std(averages)
    rows.append(["mean +/- std", f"{mean:.1%} +/- {std:.1%}", "", ""])
    result = ExperimentResult(
        "S-E1",
        "Robustness sweep: suite-average redundant loads across seeds",
        ["seed", "suite average", "min benchmark", "max benchmark"],
        rows,
        paper_claim="78% average; the claim must not be a one-seed artifact",
    )
    result.check_range("every seed's average in the paper band",
                       min(averages), 0.70, 0.86)
    result.check_range("spread is small", std, 0.0, 0.03)
    return result


def sweep_speedup(seeds: Sequence[int] = DEFAULT_SEEDS,
                  scale: Optional[int] = None) -> ExperimentResult:
    """E3's headline speedups across seeds."""
    geos: List[float] = []
    maxes: List[float] = []
    rows = []
    for seed in seeds:
        runner = SuiteRunner(seed=seed, scale=scale)
        speedups: Dict[str, float] = {
            w.name: runner.speedup(w) for w in SUITE.values()
        }
        geo = geometric_mean(list(speedups.values()))
        best = max(speedups, key=speedups.get)
        geos.append(geo)
        maxes.append(speedups[best])
        rows.append([seed, f"{geo:.3f}x",
                     f"{speedups[best]:.2f}x ({best})",
                     f"{min(speedups.values()):.2f}x"])
    geo_mean, geo_std = _mean_std(geos)
    rows.append(["mean +/- std", f"{geo_mean:.3f}x +/- {geo_std:.3f}", "", ""])
    result = ExperimentResult(
        "S-E3",
        "Robustness sweep: speedup distribution across seeds",
        ["seed", "geo-mean", "max (benchmark)", "min"],
        rows,
        paper_claim="up to 5.9x, averaging 46%; must hold across seeds",
    )
    result.check_range("geo-mean stable in the paper band",
                       min(geos), 1.25, 1.70)
    result.check_range("geo-mean stable in the paper band (upper)",
                       max(geos), 1.25, 1.70)
    result.add_check(
        "mcf stays the headline at every seed",
        all(row[2].endswith("(mcf)") for row in rows[:-1]),
        f"max column: {[row[2] for row in rows[:-1]]}",
    )
    result.check_range("max speedup band at every seed",
                       min(maxes), 4.0, 8.0)
    return result
