"""Result records for experiments: rows + shape checks + JSON export."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence


class ShapeCheck:
    """One mechanically-verified claim about an experiment's shape."""

    __slots__ = ("name", "passed", "detail")

    def __init__(self, name: str, passed: bool, detail: str = ""):
        self.name = name
        self.passed = passed
        self.detail = detail

    def __repr__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"ShapeCheck({self.name!r}: {mark} {self.detail})"


class ExperimentResult:
    """Everything one experiment produced."""

    def __init__(
        self,
        experiment_id: str,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence],
        checks: Optional[List[ShapeCheck]] = None,
        notes: str = "",
        paper_claim: str = "",
    ):
        self.experiment_id = experiment_id
        self.title = title
        self.headers = list(headers)
        self.rows = [list(row) for row in rows]
        self.checks = checks or []
        self.notes = notes
        self.paper_claim = paper_claim
        #: optional figure series rendered as a text bar chart:
        #: (labels, values, unit)
        self.figure = None
        #: optional :class:`~repro.obs.manifest.RunManifest` describing the
        #: run that produced this result (attached by ``run_experiment``)
        self.manifest = None

    def set_figure(self, labels: Sequence[str], values: Sequence[float],
                   unit: str = "") -> None:
        """Attach a per-benchmark series rendered as the paper's figure."""
        self.figure = (list(labels), list(values), unit)

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def add_check(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one shape check outcome."""
        self.checks.append(ShapeCheck(name, passed, detail))

    def check_range(self, name: str, value: float, low: float, high: float) -> None:
        """Convenience: check ``low <= value <= high``."""
        self.add_check(
            name,
            low <= value <= high,
            f"value={value:.4g}, expected in [{low:g}, {high:g}]",
        )

    def as_dict(self) -> Dict:
        """JSON-ready representation of the whole result."""
        payload = {
            "experiment": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "headers": self.headers,
            "rows": self.rows,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
            "notes": self.notes,
        }
        if self.manifest is not None:
            payload["manifest"] = self.manifest.as_dict()
        return payload

    def stable_dict(self) -> Dict:
        """``as_dict`` minus the manifest — every field left is a pure
        function of the simulated runs, so two invocations that executed
        the same work compare equal regardless of wall clock, cache
        temperature, or parallelism (the parallel-determinism tests and
        ``compare`` rely on this)."""
        payload = self.as_dict()
        payload.pop("manifest", None)
        return payload

    def to_json(self, indent: int = 2) -> str:
        """The result as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable report block."""
        from repro.harness.tables import ascii_table, bar_series

        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_claim:
            lines.append(f"paper claim: {self.paper_claim}")
        lines.append(ascii_table(self.headers, self.rows))
        if self.figure is not None:
            labels, values, unit = self.figure
            lines.append(bar_series(labels, values, unit=unit))
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{mark}] {check.name}: {check.detail}")
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "ok" if self.all_passed else "FAILING"
        return (
            f"ExperimentResult({self.experiment_id}, {len(self.rows)} rows, "
            f"{len(self.checks)} checks, {status})"
        )
