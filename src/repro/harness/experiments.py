"""The experiments: E1–E8, one per paper table/figure, plus the E9
parallelism extension.

Every function takes an optional :class:`~repro.harness.runner.SuiteRunner`
(sharing one across experiments reuses the timed runs) and returns an
:class:`~repro.harness.results.ExperimentResult` whose shape checks encode
DESIGN.md's mechanically-checkable claims.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.core.config import DttConfig
from repro.errors import UnknownExperimentError
from repro.harness.results import ExperimentResult
from repro.harness.runner import SuiteRunner
from repro.timing.params import named_config
from repro.workloads.ablation import BurstyEquakeWorkload, LineFalseWorkload
from repro.workloads.suite import SUITE
from repro.isa.instructions import is_triggering_store

#: subset used by the machine-configuration sensitivity study (E5) and the
#: ablations (E8) — the suite's clearest winners, as the paper's
#: sensitivity sections also focus on the benchmarks with headroom
SENSITIVITY_SUBSET = ("mcf", "equake", "art", "twolf")


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (0.0 for an empty list) — the speedup headline."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ---------------------------------------------------------------------------
# E1 — redundant loads (the paper's 78 % motivation figure)
# ---------------------------------------------------------------------------


def run_e1_redundant_loads(runner: Optional[SuiteRunner] = None) -> ExperimentResult:
    """per-benchmark redundant-load fractions (paper: 78% average).

    With a sampling runner (``--sample-rate``) the fractions are
    bounded-memory estimates, so the shape checks become interval
    checks: the expected band must *overlap* the suite-average 95 % CI
    band rather than contain the point estimate — the same
    tolerance-is-CI-width treatment ``compare`` gives sampled metrics.
    """
    runner = runner or SuiteRunner()
    sampled = getattr(runner, "sample_rate", None) is not None
    rows = []
    fractions = []
    silent = []
    ci_lows: List[float] = []
    ci_highs: List[float] = []
    for workload in runner.suite():
        report = runner.profile(workload)
        fractions.append(report.redundant_load_fraction)
        silent.append(report.silent_store_fraction)
        load_cell = f"{report.redundant_load_fraction:.1%}"
        if sampled:
            estimate = report.loads.load_estimate
            ci_lows.append(estimate.ci_low)
            ci_highs.append(estimate.ci_high)
            load_cell += f" [{estimate.ci_low:.0%}, {estimate.ci_high:.0%}]"
        rows.append([
            workload.name,
            report.loads.total_loads,
            load_cell,
            f"{report.silent_store_fraction:.1%}",
        ])
    average = sum(fractions) / len(fractions)
    avg_silent = sum(silent) / len(silent)
    rows.append(["average", "", f"{average:.1%}", f"{avg_silent:.1%}"])
    labels = [row[0] for row in rows]
    result = ExperimentResult(
        "E1",
        "Fraction of dynamic loads fetching redundant data",
        ["benchmark", "dynamic loads", "redundant loads", "silent stores"],
        rows,
        paper_claim="78% of all loads fetch redundant data (suite average)",
        notes=(f"sampled estimates (1/{runner.sample_rate} of addresses); "
               "cells show the 95% CI" if sampled else ""),
    )
    result.set_figure(labels, [f * 100 for f in fractions] + [average * 100],
                      unit="%")
    if sampled:
        avg_low = sum(ci_lows) / len(ci_lows)
        avg_high = sum(ci_highs) / len(ci_highs)
        result.add_check(
            "suite-average redundant-load fraction (CI overlap)",
            avg_high >= 0.70 and avg_low <= 0.86,
            f"estimate={average:.4g} CI=[{avg_low:.4g}, {avg_high:.4g}], "
            f"expected band [0.7, 0.86] must overlap the CI",
        )
        result.add_check(
            "every benchmark consistent with redundancy",
            min(ci_highs) > 0.10,
            f"min benchmark CI upper bound = {min(ci_highs):.1%}",
        )
    else:
        result.check_range("suite-average redundant-load fraction",
                           average, 0.70, 0.86)
        result.add_check(
            "every benchmark exhibits redundancy",
            min(fractions) > 0.10,
            f"min benchmark fraction = {min(fractions):.1%}",
        )
    return result


# ---------------------------------------------------------------------------
# E2 — redundant computation (forward slice of redundant loads)
# ---------------------------------------------------------------------------


def run_e2_redundant_computation(
    runner: Optional[SuiteRunner] = None,
) -> ExperimentResult:
    """redundant-computation fractions via taint slicing (shape-only)."""
    runner = runner or SuiteRunner()
    rows = []
    fractions = []
    for workload in runner.suite():
        report = runner.profile(workload)
        fractions.append(report.redundant_computation_fraction)
        rows.append([
            workload.name,
            report.slices.total_instructions,
            f"{report.redundant_computation_fraction:.1%}",
        ])
    average = sum(fractions) / len(fractions)
    rows.append(["average", "", f"{average:.1%}"])
    result = ExperimentResult(
        "E2",
        "Fraction of dynamic instructions that are redundant computation",
        ["benchmark", "dynamic instructions", "redundant computation"],
        rows,
        paper_claim=("redundant loads lead to a 'high incidence of redundant "
                     "computation' (shape-only; exact series unpublished)"),
        notes="taint-propagation operationalization; see profiling.slices",
    )
    if getattr(runner, "sample_rate", None) is not None:
        # taint propagation needs every load's classification; a sampled
        # profile cannot estimate it (see profiling.report), so the
        # fractions above are all zero by construction — record that
        # honestly instead of failing a claim the data cannot test
        result.add_check(
            "slice analysis sampled out",
            True,
            f"--sample-rate 1/{runner.sample_rate} profiles skip taint "
            "slicing; rerun without sampling for E2's fractions",
        )
        return result
    result.add_check(
        "redundant computation is substantial on average",
        average > 0.10,
        f"average = {average:.1%}",
    )
    result.add_check(
        "computation fraction below load fraction (slices are subsets)",
        all(runner.profile(w).redundant_computation_fraction
            <= runner.profile(w).redundant_load_fraction + 1e-9
            for w in runner.suite()),
        "per-benchmark computation <= load redundancy",
    )
    return result


# ---------------------------------------------------------------------------
# E3 — speedup (the headline figure)
# ---------------------------------------------------------------------------


def run_e3_speedup(runner: Optional[SuiteRunner] = None) -> ExperimentResult:
    """the headline speedup figure (paper: max 5.9x, mean 1.46x)."""
    runner = runner or SuiteRunner()
    rows = []
    speedups = {}
    for workload in runner.suite():
        baseline = runner.timed(workload, "baseline")
        dtt = runner.timed(workload, "dtt")
        speedup = dtt.speedup_over(baseline)
        speedups[workload.name] = speedup
        rows.append([
            workload.name, baseline.cycles, dtt.cycles, f"{speedup:.2f}x",
        ])
    geo = geometric_mean(list(speedups.values()))
    arith = sum(speedups.values()) / len(speedups)
    rows.append(["geo-mean", "", "", f"{geo:.2f}x"])
    rows.append(["arith-mean", "", "", f"{arith:.2f}x"])
    best = max(speedups, key=speedups.get)
    result = ExperimentResult(
        "E3",
        "DTT speedup over baseline (simulated cycles, smt2 machine)",
        ["benchmark", "baseline cycles", "DTT cycles", "speedup"],
        rows,
        paper_claim="speedup up to 5.9x, averaging 46%",
    )
    result.set_figure(list(speedups) + ["geo-mean"],
                      list(speedups.values()) + [geo], unit="x")
    result.check_range("maximum speedup (paper: 5.9x on mcf)",
                       max(speedups.values()), 4.5, 7.0)
    result.add_check("maximum achieved on mcf", best == "mcf",
                     f"best benchmark = {best}")
    result.check_range("mean speedup (paper: 1.46x)", geo, 1.25, 1.70)
    result.add_check(
        "DTT never materially hurts",
        min(speedups.values()) >= 0.97,
        f"min speedup = {min(speedups.values()):.3f}",
    )
    return result


# ---------------------------------------------------------------------------
# E4 — committed-instruction reduction
# ---------------------------------------------------------------------------


def run_e4_committed_instructions(
    runner: Optional[SuiteRunner] = None,
) -> ExperimentResult:
    """committed-instruction reduction under DTT (shape-only)."""
    runner = runner or SuiteRunner()
    rows = []
    reductions = {}
    for workload in runner.suite():
        baseline = runner.timed(workload, "baseline")
        dtt = runner.timed(workload, "dtt")
        reduction = 1.0 - dtt.instructions / baseline.instructions
        reductions[workload.name] = reduction
        rows.append([
            workload.name,
            baseline.instructions,
            dtt.main_instructions,
            dtt.support_instructions,
            f"{reduction:.1%}",
        ])
    average = sum(reductions.values()) / len(reductions)
    rows.append(["average", "", "", "", f"{average:.1%}"])
    result = ExperimentResult(
        "E4",
        "Committed dynamic instructions: baseline vs DTT (main + support)",
        ["benchmark", "baseline insts", "DTT main", "DTT support",
         "reduction"],
        rows,
        paper_claim="DTT eliminates committed instructions in proportion to "
                    "skipped computation (shape-only)",
    )
    result.add_check(
        "mcf eliminates most of its instructions",
        reductions["mcf"] > 0.5,
        f"mcf reduction = {reductions['mcf']:.1%}",
    )
    result.add_check(
        "no benchmark executes materially more instructions under DTT",
        min(reductions.values()) > -0.05,
        f"min reduction = {min(reductions.values()):.1%}",
    )
    return result


# ---------------------------------------------------------------------------
# E5 — where support threads run (machine-configuration sensitivity)
# ---------------------------------------------------------------------------


def run_e5_context_sensitivity(
    runner: Optional[SuiteRunner] = None,
) -> ExperimentResult:
    """speedup vs where support threads run (smt2/cmp2/serial)."""
    runner = runner or SuiteRunner()
    configs = ("smt2", "cmp2", "serial")
    rows = []
    table: Dict[str, Dict[str, float]] = {}
    for name in SENSITIVITY_SUBSET:
        workload = SUITE[name]
        per_config = {}
        for config_name in configs:
            baseline = runner.timed(workload, "baseline", config_name)
            dtt = runner.timed(workload, "dtt", config_name)
            per_config[config_name] = dtt.speedup_over(baseline)
        table[name] = per_config
        rows.append([name] + [f"{per_config[c]:.2f}x" for c in configs])
    for config_name in configs:
        values = [table[n][config_name] for n in SENSITIVITY_SUBSET]
        geo = geometric_mean(values)
        if config_name == configs[0]:
            geo_row = ["geo-mean", f"{geo:.2f}x"]
        else:
            geo_row.append(f"{geo:.2f}x")
    rows.append(geo_row)
    result = ExperimentResult(
        "E5",
        "Speedup vs where support threads run: spare SMT context (smt2), "
        "idle CMP core (cmp2), none/serialized (serial)",
        ["benchmark", "smt2", "cmp2", "serial"],
        rows,
        paper_claim="spare SMT context is the paper's main configuration; an "
                    "idle core also works; with no spare context only the "
                    "skip benefit survives (shape-only ordering)",
    )
    for name in SENSITIVITY_SUBSET:
        result.add_check(
            f"{name}: spare-context >= serialized",
            table[name]["smt2"] >= table[name]["serial"] - 0.02,
            f"smt2={table[name]['smt2']:.2f}, serial={table[name]['serial']:.2f}",
        )
        result.add_check(
            f"{name}: serialized still profits from skipping",
            table[name]["serial"] >= 0.95,
            f"serial={table[name]['serial']:.2f}",
        )
    return result


# ---------------------------------------------------------------------------
# E6 — benchmark characteristics table
# ---------------------------------------------------------------------------


def run_e6_benchmark_table(
    runner: Optional[SuiteRunner] = None,
) -> ExperimentResult:
    """the benchmark-characteristics table of the DTT conversions."""
    runner = runner or SuiteRunner()
    rows = []
    for workload in runner.suite():
        inp = workload.make_input(runner.seed, runner.scale)
        build = workload.build_dtt(inp)
        static_tstores = sum(
            1 for instruction in build.program
            if is_triggering_store(instruction.op)
        )
        runner.timed(workload, "dtt")  # ensure the engine exists
        engine = runner.engine_for(workload, "dtt")
        summary = engine.summary()
        dynamic = summary["triggering_stores"]
        fired = summary["triggers_fired"]
        clean = summary["clean_consumes"]
        consumes = summary["consumes"]
        rows.append([
            workload.name,
            workload.converted_region,
            len(build.program.threads),
            static_tstores,
            dynamic,
            f"{fired / dynamic:.1%}" if dynamic else "n/a",
            f"{clean / consumes:.1%}" if consumes else "n/a",
        ])
    result = ExperimentResult(
        "E6",
        "Benchmark characteristics of the DTT conversions",
        ["benchmark", "converted region", "threads", "static tstores",
         "dynamic tstores", "trigger rate", "consumes skipped"],
        rows,
        paper_claim="per-benchmark conversion characteristics (table form)",
    )
    skip_rates = []
    for row in rows:
        if row[6] != "n/a":
            skip_rates.append(float(row[6].rstrip("%")) / 100.0)
    result.add_check(
        "most consume points are skipped on average",
        sum(skip_rates) / len(skip_rates) > 0.5,
        f"average skip rate = {sum(skip_rates) / len(skip_rates):.1%}",
    )
    return result


# ---------------------------------------------------------------------------
# E7 — machine configuration + energy proxy
# ---------------------------------------------------------------------------


def run_e7_machine_energy(
    runner: Optional[SuiteRunner] = None,
) -> ExperimentResult:
    """machine-parameter table plus the energy-proxy reductions."""
    runner = runner or SuiteRunner()
    config = named_config("smt2")
    rows = [["[config] " + key, value, "", ""]
            for key, value in config.parameter_table().items()]
    reductions = {}
    for workload in runner.suite():
        baseline = runner.timed(workload, "baseline")
        dtt = runner.timed(workload, "dtt")
        reduction = 1.0 - dtt.energy / baseline.energy
        reductions[workload.name] = reduction
        rows.append([
            workload.name,
            f"{baseline.energy:.0f}",
            f"{dtt.energy:.0f}",
            f"{reduction:.1%}",
        ])
    average = sum(reductions.values()) / len(reductions)
    rows.append(["average", "", "", f"{average:.1%}"])
    result = ExperimentResult(
        "E7",
        "Simulated machine configuration and event-weighted energy proxy",
        ["item / benchmark", "baseline energy", "DTT energy", "reduction"],
        rows,
        paper_claim="energy savings track eliminated work (shape-only)",
    )
    result.add_check(
        "mcf energy reduction is large",
        reductions["mcf"] > 0.4,
        f"mcf = {reductions['mcf']:.1%}",
    )
    result.add_check(
        "energy never materially increases",
        min(reductions.values()) > -0.05,
        f"min = {min(reductions.values()):.1%}",
    )
    return result


# ---------------------------------------------------------------------------
# E8 — design-choice ablations
# ---------------------------------------------------------------------------


def run_e8_ablations(runner: Optional[SuiteRunner] = None) -> ExperimentResult:
    """value-filter, granularity, and queue-depth ablations."""
    runner = runner or SuiteRunner()
    rows = []

    # (a) same-value filter off: every triggering store fires
    mcf = SUITE["mcf"]
    normal = runner.speedup(mcf)
    no_filter = runner.speedup(
        mcf, dtt_config=DttConfig(same_value_filter=False)
    )
    rows.append(["a: same-value filter", "mcf on", f"{normal:.2f}x"])
    rows.append(["a: same-value filter", "mcf OFF", f"{no_filter:.2f}x"])

    # (b) trigger granularity: word vs cache line (false triggers).
    # Through the runner: memoized, store-persisted, and the output is
    # checked against the baseline inside timed() — granularity is a
    # performance knob, not a correctness knob.
    linefalse = LineFalseWorkload()
    by_granularity = {}
    fired = {}
    for granularity in (1, 16):
        config = DttConfig(granularity=granularity)
        by_granularity[granularity] = runner.speedup(linefalse,
                                                     dtt_config=config)
        engine = runner.engine_for(linefalse, "dtt", "smt2", config)
        fired[granularity] = engine.summary()["triggers_fired"]
        rows.append([
            "b: granularity", f"linefalse {granularity}-word watch",
            f"{by_granularity[granularity]:.2f}x "
            f"({fired[granularity]} triggers)",
        ])

    # (c) thread-queue capacity, on the deliberately bursty equake
    # variant (several activations pending at once, so a shallow queue
    # overflows; see BurstyEquakeWorkload)
    bursty = BurstyEquakeWorkload()
    by_capacity = {}
    overflow = {}
    for capacity in (1, 2, 16):
        config = DttConfig(queue_capacity=capacity)
        by_capacity[capacity] = runner.speedup(bursty, dtt_config=config)
        engine = runner.engine_for(bursty, "dtt", "smt2", config)
        overflow[capacity] = engine.summary()["overflow_inline_runs"]
        rows.append([
            "c: queue depth", f"bursty-equake capacity={capacity}",
            f"{by_capacity[capacity]:.2f}x ({overflow[capacity]} overflow runs)",
        ])

    result = ExperimentResult(
        "E8",
        "Design-choice ablations: value filter, granularity, queue depth",
        ["ablation", "configuration", "result"],
        rows,
        paper_claim="the same-value filter provides the benefit; line-granular "
                    "triggering causes false triggers; queue overflow degrades "
                    "to inline execution (design discussion, shape-only)",
    )
    result.add_check(
        "a: disabling the value filter collapses the benefit",
        no_filter < 0.6 * normal,
        f"on={normal:.2f}x, off={no_filter:.2f}x",
    )
    result.add_check(
        "b: line granularity causes false triggers and loses the benefit",
        by_granularity[16] < by_granularity[1] - 0.25
        and fired[16] > 10 * fired[1],
        f"word={by_granularity[1]:.2f}x ({fired[1]} fired), "
        f"line={by_granularity[16]:.2f}x ({fired[16]} fired)",
    )
    result.add_check(
        "c: a tiny queue forces overflow runs but stays correct",
        overflow[1] > 0 and overflow[1] > overflow[16]
        and by_capacity[16] >= by_capacity[1] - 0.02,
        f"overflows: cap1={overflow[1]}, cap2={overflow[2]}, "
        f"cap16={overflow[16]}",
    )
    return result


# ---------------------------------------------------------------------------
# E9 (extension) — the abstract's parallelism claim
# ---------------------------------------------------------------------------


def run_e9_parallelism(runner: Optional[SuiteRunner] = None) -> ExperimentResult:
    """Extension experiment (not a paper artifact): isolate the
    *parallelism* benefit the abstract claims but the paper's evaluation
    does not separate out.  The overlap workload's watched data changes
    every iteration, so skipping contributes nothing; all speedup comes
    from running the support thread under the main thread's independent
    work."""
    from repro.workloads.overlap import OverlapWorkload

    runner = runner or SuiteRunner()
    workload = OverlapWorkload()
    rows = []
    speedups: Dict[str, float] = {}
    clean_consumes = None
    for config_name in ("smt2", "cmp2", "serial"):
        # through the runner: memoized, correctness-checked, and metered
        baseline = runner.timed(workload, "baseline", config_name)
        timed = runner.timed(workload, "dtt", config_name)
        engine = runner.engine_for(workload, "dtt", config_name)
        speedups[config_name] = timed.speedup_over(baseline)
        row = engine.status["coeffthr"]
        clean_consumes = row.clean_consumes
        rows.append([
            config_name,
            f"{speedups[config_name]:.2f}x",
            row.triggers_fired,
            row.clean_consumes,
        ])
    result = ExperimentResult(
        "E9",
        "Parallelism extension: always-changing trigger, overlap-only benefit",
        ["machine", "speedup", "triggers fired", "consumes skipped"],
        rows,
        paper_claim="DTT 'enables increased parallelism and the elimination "
                    "of redundant computation' (abstract); the evaluation "
                    "covers the latter, this extension isolates the former",
        notes="extension experiment — not one of the paper's figures",
    )
    result.add_check(
        "no skipping is available (every trigger fires)",
        clean_consumes == 0,
        f"clean consumes = {clean_consumes}",
    )
    result.add_check(
        "a spare context converts overlap into speedup",
        speedups["smt2"] > 1.25 and speedups["cmp2"] > 1.25,
        f"smt2={speedups['smt2']:.2f}x, cmp2={speedups['cmp2']:.2f}x",
    )
    result.add_check(
        "without a spare context there is (correctly) no benefit",
        0.9 <= speedups["serial"] <= 1.05,
        f"serial={speedups['serial']:.2f}x",
    )
    return result


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


EXPERIMENTS: Dict[str, Callable[[Optional[SuiteRunner]], ExperimentResult]] = {
    "E1": run_e1_redundant_loads,
    "E2": run_e2_redundant_computation,
    "E3": run_e3_speedup,
    "E4": run_e4_committed_instructions,
    "E5": run_e5_context_sensitivity,
    "E6": run_e6_benchmark_table,
    "E7": run_e7_machine_energy,
    "E8": run_e8_ablations,
    "E9": run_e9_parallelism,
}


def run_experiment(experiment_id: str,
                   runner: Optional[SuiteRunner] = None) -> ExperimentResult:
    """Run one experiment by id ('E1'..'E9'), manifest attached."""
    from repro.obs.manifest import RunManifest

    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    runner = runner or SuiteRunner()
    result = EXPERIMENTS[key](runner)
    result.manifest = RunManifest.from_runner(runner, key)
    return result
