"""Experiment harness: regenerates every table and figure (E1–E8).

Each experiment function returns an
:class:`~repro.harness.results.ExperimentResult` carrying the rows of the
paper artifact it reconstructs plus mechanically-checked *shape claims*
(see DESIGN.md).  ``python -m repro.harness.cli run all`` prints them all;
the ``benchmarks/`` directory wraps one experiment per pytest-benchmark
target.
"""

from repro.harness.results import ExperimentResult, ShapeCheck
from repro.harness.tables import ascii_table, bar_series
from repro.harness.runner import SuiteRunner
from repro.harness.experiments import (
    EXPERIMENTS,
    run_experiment,
    run_e1_redundant_loads,
    run_e2_redundant_computation,
    run_e3_speedup,
    run_e4_committed_instructions,
    run_e5_context_sensitivity,
    run_e6_benchmark_table,
    run_e7_machine_energy,
    run_e8_ablations,
    run_e9_parallelism,
)
from repro.harness.microbench import run_micro_overheads
from repro.harness.sweeps import sweep_redundancy, sweep_speedup

__all__ = [
    "ExperimentResult",
    "ShapeCheck",
    "ascii_table",
    "bar_series",
    "SuiteRunner",
    "EXPERIMENTS",
    "run_experiment",
    "run_e1_redundant_loads",
    "run_e2_redundant_computation",
    "run_e3_speedup",
    "run_e4_committed_instructions",
    "run_e5_context_sensitivity",
    "run_e6_benchmark_table",
    "run_e7_machine_energy",
    "run_e8_ablations",
    "run_e9_parallelism",
    "run_micro_overheads",
    "sweep_redundancy",
    "sweep_speedup",
]
