"""Command-line entry point: ``dtt-harness`` / ``python -m repro.harness.cli``.

Commands::

    dtt-harness list                 # experiments and workloads
    dtt-harness run E3               # one experiment
    dtt-harness run all              # everything, shared runner
    dtt-harness run all --jobs 4     # shard the run plan across workers
    dtt-harness run all --store .dtt-store   # persist + reuse results
    dtt-harness run E1 E3 --json out.json
    dtt-harness run E3 --trace-out t.json --metrics-out m.json
    dtt-harness run E3 --ctrace-out run.ctrace --trace-keep tail
    dtt-harness run E1 --sample-rate 64      # CI-bounded estimates
    dtt-harness compare old.json new.json    # flag regressions
    dtt-harness convert --workload mcf       # auto-convert to DTT
    dtt-harness convert --workload all --bench-out BENCH_autoconvert.json
    dtt-harness bench                # interpreter instructions/sec per tier
    dtt-harness bench --tier superblock      # only the superblock tier
    dtt-harness bench --trace        # trace codec + sampling accuracy
    dtt-harness run E3 --tier closure        # pin the execution tier
    dtt-harness verify --tier superblock     # correctness sweep, one tier
    dtt-harness stats --sample-rate 64 --ctrace-out run.ctrace
    dtt-harness explain --ctrace run.ctrace --activation 3
    dtt-harness report --ctrace run.ctrace -o report.html
    dtt-harness run E1 --profile profile.txt # cProfile the whole run
    dtt-harness verify               # correctness sweep of the suite
    dtt-harness sweep                # headline robustness across seeds
    dtt-harness stats                # run one workload, print the metrics
    dtt-harness explain --workload mcf --activation 3   # causal lineage
    dtt-harness explain --workload mcf --address 1040   # why suppressed?
    dtt-harness report --store .dtt-store -o report.html  # cross-run HTML
    dtt-harness lint --workload all          # structural checks, all builds
    dtt-harness lint program.dtt --json      # lint one assembly file
    dtt-harness analyze --workload mcf       # DTT safety analysis
    dtt-harness analyze --workload all --fail-on warning \
        --baseline benchmarks/analysis_baseline.json    # the CI gate
    dtt-harness bench --history benchmarks/history   # grow the series
    dtt-harness run E3 --status-file status.json     # live heartbeat
    dtt-harness history --gate               # trend gate over the store
    dtt-harness history benchmarks/history/ci.jsonl \
        --append BENCH_interpreter.json --gate       # CI: ingest + gate
    dtt-harness dashboard -o trends.html     # sparkline + flame HTML

``--store`` also defaults from the ``DTT_STORE`` environment variable;
``--no-store`` disables it.  ``compare`` accepts two result-store
directories, two ``--json`` results files, or two manifest JSON files.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.runner import SuiteRunner
from repro.workloads.base import verify_workload
from repro.workloads.suite import SUITE


def _cmd_list(_args) -> int:
    print("experiments:")
    for experiment_id, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"  {experiment_id}: {doc[0] if doc else fn.__name__}")
    print("workloads:")
    for name, workload in SUITE.items():
        print(f"  {name:8s} {workload.description}")
    return 0


def _cmd_run(args) -> int:
    for path in (args.json, args.metrics_out, args.trace_out,
                 args.ctrace_out, args.profile, args.status_file):
        # fail before the (slow) runs, not after
        if path and not os.path.isdir(os.path.dirname(path) or "."):
            print(f"output directory does not exist: {path}")
            return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}")
        return 2
    if not args.profile:
        return _run_experiments(args)
    import cProfile
    import io
    import pstats

    from repro.obs.flame import fold_superblock_frames
    from repro.obs.ioutil import atomic_write_text

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _run_experiments(args)
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(50)
        stats.sort_stats("tottime").print_stats(25)
        atomic_write_text(args.profile,
                          fold_superblock_frames(buffer.getvalue()))
        print(f"wrote {args.profile} (pstats text: cumulative top 50, "
              "tottime top 25)")
    return status


def _set_default_tier(tier: Optional[str]) -> bool:
    """Pin ``Machine.run``'s default execution tier for this process."""
    from repro.machine.machine import TIERS, Machine

    if tier is None:
        return True
    if tier not in TIERS:
        print(f"unknown execution tier {tier!r}; "
              f"choose from {', '.join(TIERS)}")
        return False
    Machine.default_tier = tier
    return True


def _run_experiments(args) -> int:
    from repro.obs.metrics import MetricsRegistry

    if not _set_default_tier(args.tier):
        return 2
    wanted = [w.upper() for w in args.experiments]
    if "ALL" in wanted:
        wanted = list(EXPERIMENTS)
    store = None if args.no_store \
        else (args.store or os.environ.get("DTT_STORE"))
    jobs = args.jobs
    if args.trace_out and jobs > 1:
        print("note: --trace-out needs live engines; forcing --jobs 1")
        jobs = 1
    if args.ctrace_out and jobs > 1:
        print("note: --ctrace-out needs live engines; forcing --jobs 1")
        jobs = 1
    if args.sample_rate is not None and jobs > 1:
        print("note: --sample-rate estimates stay memo-only; forcing "
              "--jobs 1")
        jobs = 1
    if args.sample_rate is not None and args.sample_rate < 1:
        print(f"--sample-rate must be >= 1, got {args.sample_rate}")
        return 2
    registry = MetricsRegistry() if args.metrics_out else None
    runner = SuiteRunner(seed=args.seed, scale=args.scale, metrics=registry,
                         trace=bool(args.trace_out), store=store,
                         trace_keep=args.trace_keep,
                         ctrace_out=args.ctrace_out,
                         sample_rate=args.sample_rate,
                         sample_seed=args.sample_seed,
                         status=args.status_file or None)
    try:
        return _run_experiments_inner(args, runner, wanted, jobs, registry)
    except BaseException:
        if runner.status is not None:
            runner.status.finish("failed")
        raise


def _run_experiments_inner(args, runner, wanted, jobs, registry) -> int:
    from repro.obs.timeline import traces_to_chrome

    if jobs > 1 or runner.store is not None or runner.status is not None:
        # state the deduplicated run matrix once and execute it up front
        # (sharded across workers / served from the store); every
        # experiment below is then pure memo hits.  A status file also
        # takes this path: the plan size is the ETA's denominator
        from repro.exec.plan import build_plan
        from repro.exec.pool import execute_plan

        plan = build_plan(wanted, seed=args.seed, scale=args.scale)
        stats = execute_plan(plan, runner, jobs=jobs,
                             task_timeout=args.task_timeout)
        executed = stats["parallel_executed"] + stats["serial_executed"]
        print(f"plan: {stats['planned']} runs — {stats['memo_hits']} "
              f"memoized, {stats['store_hits']} from store, {executed} "
              f"executed ({stats['mode']}, jobs={stats['jobs']})")
        if stats["worker_retries"]:
            print(f"note: {stats['worker_retries']} run(s) retried after "
                  "a worker crash")
        print()
    results = []
    failed = False
    for experiment_id in wanted:
        result = run_experiment(experiment_id, runner)
        results.append(result)
        print(result.render())
        print()
        failed = failed or not result.all_passed
    if runner.status is not None:
        runner.status.finish("done" if not failed else "failed")
    if args.history:
        _append_history(args.history, [r.as_dict() for r in results],
                        source=args.json or "run", runner=runner)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([r.as_dict() for r in results], handle, indent=2)
        print(f"wrote {args.json}")
    if args.metrics_out:
        from repro.machine.superblock import publish_metrics

        publish_metrics(registry)  # code-cache counters ride along
        with open(args.metrics_out, "w") as handle:
            handle.write(registry.to_json())
        print(f"wrote {args.metrics_out}")
    if args.trace_out:
        from repro.obs.ioutil import atomic_write_text

        atomic_write_text(args.trace_out,
                          json.dumps(traces_to_chrome(runner.traces())))
        print(f"wrote {args.trace_out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.ctrace_out:
        footer = runner.close_ctrace() or {}
        print(f"wrote {args.ctrace_out} ({footer.get('streams', 0)} "
              f"streams, {footer.get('events', 0)} events, "
              f"{footer.get('bytes', 0)} bytes compressed)")
    return 1 if failed else 0


def _cmd_compare(args) -> int:
    from repro.errors import CompareError
    from repro.exec.compare import compare_paths

    if args.json and not os.path.isdir(os.path.dirname(args.json) or "."):
        print(f"output directory does not exist: {args.json}")
        return 2
    try:
        report = compare_paths(args.old, args.new, tolerance=args.tolerance)
    except CompareError as error:
        print(f"compare failed: {error}")
        return 2
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"wrote {args.json}")
    return 1 if report.has_regressions else 0


def _cmd_bench(args) -> int:
    from repro.errors import MachineError
    from repro.harness.bench import (render_bench, render_trace_bench,
                                     run_bench, run_trace_bench, write_bench)

    output = args.output
    if args.trace and output == "BENCH_interpreter.json":
        output = "BENCH_trace_overhead.json"  # untouched default: retarget
    if output and not os.path.isdir(os.path.dirname(output) or "."):
        print(f"output directory does not exist: {output}")
        return 2
    if args.repeat < 1:
        print(f"--repeat must be >= 1, got {args.repeat}")
        return 2
    try:
        if args.trace:
            result = run_trace_bench(workloads=args.workloads,
                                     repeat=args.repeat, seed=args.seed,
                                     scale=args.scale,
                                     sample_rate=args.sample_rate)
        else:
            result = run_bench(workloads=args.workloads, repeat=args.repeat,
                               seed=args.seed, scale=args.scale,
                               max_instructions=args.max_instructions,
                               tiers=args.tier)
    except MachineError as error:
        print(f"bench failed: {error}")
        return 2
    print(render_trace_bench(result) if args.trace else render_bench(result))
    if output:
        write_bench(result, output)
        print(f"wrote {output}")
    if args.history:
        if _append_history(args.history, result,
                           source=output or "bench") is None:
            return 2
    return 0


def _append_history(store_path: str, payload, source: str,
                    runner=None) -> Optional[str]:
    """Append one payload to the performance-history store.

    Returns the record id (None on a HistoryError, which is printed,
    not raised — a malformed payload should fail the command without a
    traceback).  When ``runner`` is given the append is recorded as
    provenance, so a manifest built *afterwards* carries the record id.
    """
    from repro.errors import HistoryError
    from repro.obs.history import HistoryStore, record_from_payload

    try:
        store = HistoryStore(store_path)
        record = record_from_payload(payload, source=source)
        record_id = store.append(record)
    except HistoryError as error:
        print(f"history append failed: {error}")
        return None
    target = store.file_for(record["kind"])
    if runner is not None:
        runner.note_history(record_id, record["kind"], target)
    print(f"history: appended {record['kind']} record "
          f"{record_id[:12]} to {target}")
    return record_id


def _cmd_stats(args) -> int:
    from repro.obs.metrics import MetricsRegistry

    if args.workload not in SUITE:
        print(f"unknown workload {args.workload!r}; "
              f"choose from {', '.join(SUITE)}")
        return 2
    if args.sample_rate is not None and args.sample_rate < 1:
        print(f"--sample-rate must be >= 1, got {args.sample_rate}")
        return 2
    registry = MetricsRegistry()
    runner = SuiteRunner(seed=args.seed, scale=args.scale, metrics=registry,
                         ctrace_out=args.ctrace_out,
                         sample_rate=args.sample_rate,
                         sample_seed=args.sample_seed)
    workload = SUITE[args.workload]
    runner.timed(workload, "baseline")
    runner.timed(workload, "dtt")
    from repro.machine.superblock import publish_metrics

    publish_metrics(registry)
    print(f"metrics after a baseline + DTT timed run of {workload.name} "
          f"(smt2):")
    if args.prometheus:
        print(registry.to_prometheus_text(), end="")
    else:
        print(registry.render())
    if args.sample_rate is not None:
        profile = runner.profile(workload)
        loads = profile.loads
        load = loads.load_estimate
        store = loads.store_estimate
        print(f"\nsampled redundancy profile (1/{args.sample_rate} of "
              f"addresses, seed {args.sample_seed}):")
        print(f"  redundant loads: {load.fraction:.4f}  "
              f"95% CI [{load.ci_low:.4f}, {load.ci_high:.4f}]  "
              f"width {load.ci_width:.4f}  "
              f"({load.trials:,} loads sampled)")
        print(f"  silent stores:   {store.fraction:.4f}  "
              f"95% CI [{store.ci_low:.4f}, {store.ci_high:.4f}]  "
              f"width {store.ci_width:.4f}  "
              f"({store.trials:,} stores sampled)")
    if args.ctrace_out:
        from repro.obs.timeline import traces_to_chrome

        chrome_bytes = len(json.dumps(
            traces_to_chrome(runner.traces()), indent=1).encode("utf-8"))
        footer = runner.close_ctrace() or {}
        ctrace_bytes = footer.get("bytes", 0)
        events = footer.get("events", 0)
        ratio = chrome_bytes / ctrace_bytes if ctrace_bytes else 0.0
        print(f"\ncompressed trace: {args.ctrace_out}")
        print(f"  {events:,} events in {ctrace_bytes:,} bytes "
              f"({ctrace_bytes / events if events else 0:.2f} B/event); "
              f"{ratio:.1f}x smaller than the JSON Chrome export "
              f"({chrome_bytes:,} bytes)")
    return 0


def _cmd_explain(args) -> int:
    from repro.obs.causality import CausalGraph
    from repro.obs.report import (render_activation_list,
                                  render_explain_activation,
                                  render_explain_address)

    if args.ctrace:
        from repro.errors import CTraceError
        from repro.obs.ctrace import CTraceReader

        try:
            reader = CTraceReader(args.ctrace)
            wanted = f"{args.workload}:dtt:{args.config}"
            names = [name for name, _stream in reader.named_streams()]
            trace = reader.stream(wanted if wanted in names else None)
        except (OSError, CTraceError) as error:
            print(f"cannot read compressed trace: {error}")
            return 2
        label = trace.name
    else:
        if args.workload not in SUITE:
            print(f"unknown workload {args.workload!r}; "
                  f"choose from {', '.join(SUITE)}")
            return 2
        workload = SUITE[args.workload]
        runner = SuiteRunner(seed=args.seed, scale=args.scale, trace=True)
        try:
            runner.timed(workload, "dtt", args.config)
        except Exception as error:
            print(f"cannot run {workload.name} under DTT: {error}")
            return 2
        trace = runner.trace_for(workload.name, "dtt", args.config)
        if trace is None:
            print(f"{workload.name} produced no DTT trace under "
                  f"{args.config}")
            return 2
        label = f"{workload.name}:dtt:{args.config}"
    graph = CausalGraph.from_trace(trace)
    if args.activation is not None:
        print(render_explain_activation(graph, args.activation))
    elif args.address is not None:
        print(render_explain_address(graph, args.address))
    else:
        print(render_activation_list(graph, label))
    if trace.truncated:
        print(f"warning: trace buffer filled; {trace.dropped} events "
              "dropped — lineage may be incomplete")
    return 0


def _cmd_report(args) -> int:
    from repro.exec.store import ResultStore
    from repro.obs.ioutil import atomic_write_text
    from repro.obs.report import html_report

    entries = []
    if args.store:
        if not os.path.isdir(os.path.join(args.store, "objects")):
            print(f"{args.store!r} is not a result store "
                  "(no objects/ inside)")
            return 2
        entries = list(ResultStore(args.store).entries())
    results = None
    if args.results:
        try:
            with open(args.results, encoding="utf-8") as handle:
                results = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"cannot read {args.results!r}: {error}")
            return 2
        if not isinstance(results, list):
            print(f"{args.results!r} is not a results list "
                  "(expected `run --json` output)")
            return 2
    streams = []
    if args.ctrace:
        from repro.errors import CTraceError
        from repro.obs.ctrace import CTraceReader

        try:
            streams = CTraceReader(args.ctrace).named_streams()
        except (OSError, CTraceError) as error:
            print(f"cannot read compressed trace: {error}")
            return 2
    if not entries and results is None and not streams:
        print("nothing to report: pass --store, --results, "
              "and/or --ctrace")
        return 2
    atomic_write_text(args.output,
                      html_report(entries, results, title=args.title,
                                  ctrace_streams=streams))
    sources = []
    if entries:
        sources.append(f"{len(entries)} stored runs")
    if results is not None:
        sources.append(f"{len(results)} experiment results")
    if streams:
        sources.append(f"{len(streams)} compressed trace streams")
    print(f"wrote {args.output} ({', '.join(sources)})")
    return 0


def _cmd_history(args) -> int:
    from repro.errors import HistoryError
    from repro.obs.history import HistoryStore
    from repro.obs.trends import analyze_history

    if args.window < 1:
        print(f"--window must be >= 1, got {args.window}")
        return 2
    if args.min_runs < 2:
        print(f"--min-runs must be >= 2, got {args.min_runs}")
        return 2
    if args.append:
        try:
            with open(args.append, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"cannot read {args.append!r}: {error}")
            return 2
        if _append_history(args.path, payload, source=args.append) is None:
            return 2
    try:
        report = analyze_history(HistoryStore(args.path),
                                 window=args.window,
                                 tolerance=args.tolerance,
                                 min_runs=args.min_runs,
                                 kind=args.kind)
    except HistoryError as error:
        print(f"history analysis failed: {error}")
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render(verbose=args.verbose))
    return 1 if args.gate and report.has_regressions else 0


def _flame_attributions(report, seed=None, scale=None):
    """Cycle attributions for every SUITE workload a flagged (or
    improved) series row names: one traced DTT run each, joined with
    its redundancy profile so the flame cells carry silent-store
    counts.  A workload that fails to trace is skipped with a note —
    the dashboard must render even when one build is broken."""
    from repro.obs.causality import CausalGraph
    from repro.obs.flame import attribute_cycles

    wanted = []
    for verdict in report.verdicts:
        if verdict.verdict not in ("regression", "changepoint",
                                   "improvement"):
            continue
        for name in (verdict.row, verdict.row.rsplit(":", 1)[-1]):
            if name in SUITE and name not in wanted:
                wanted.append(name)
                break
    flames = {}
    if not wanted:
        return flames
    runner = SuiteRunner(seed=seed, scale=scale, trace=True)
    for name in sorted(wanted):
        workload = SUITE[name]
        try:
            result = runner.timed(workload, "dtt")
            trace = runner.trace_for(name, "dtt", "smt2")
        except Exception as error:
            print(f"note: no cycle attribution for {name}: {error}")
            continue
        if trace is None:
            print(f"note: {name} produced no DTT trace; "
                  "no cycle attribution")
            continue
        graph = CausalGraph.from_trace(trace)
        flames[name] = attribute_cycles(name, graph, result.cycles)
    return flames


def _cmd_dashboard(args) -> int:
    from repro.errors import HistoryError
    from repro.obs.history import HistoryStore
    from repro.obs.ioutil import atomic_write_text
    from repro.obs.report import trend_dashboard_html
    from repro.obs.trends import analyze_history

    if not os.path.isdir(os.path.dirname(args.output) or "."):
        print(f"output directory does not exist: {args.output}")
        return 2
    try:
        report = analyze_history(HistoryStore(args.history),
                                 window=args.window,
                                 tolerance=args.tolerance,
                                 min_runs=args.min_runs)
    except HistoryError as error:
        print(f"dashboard failed: {error}")
        return 2
    flames = {} if args.no_flames else _flame_attributions(
        report, seed=args.seed, scale=args.scale)
    atomic_write_text(args.output,
                      trend_dashboard_html(report, flames,
                                           title=args.title))
    print(f"wrote {args.output} ({len(report.verdicts)} series, "
          f"{len(report.flagged)} gating verdict(s), "
          f"{len(flames)} flame section(s))")
    return 0


def _analysis_targets(args):
    """Resolve a lint/analyze invocation to ``(label, program, specs)``
    triples — one per analyzed build.  ``specs`` is None for targets with
    no trigger registry (assembly files, baseline builds); exits via
    SystemExit(2) on unusable arguments."""
    from repro.isa.assembler import parse_program
    from repro.workloads.suite import workload_names

    targets = []
    if args.program:
        try:
            with open(args.program, encoding="utf-8") as handle:
                program = parse_program(handle.read())
            program.finalize()
        except Exception as error:
            print(f"cannot load {args.program!r}: {error}")
            raise SystemExit(2)
        targets.append((os.path.basename(args.program), program, None))
    names = list(args.workload or [])
    if "all" in names:
        names = workload_names()
    kind = args.kind
    for name in names:
        if name not in SUITE:
            print(f"unknown workload {name!r}; "
                  f"choose from {', '.join(SUITE)} or 'all'")
            raise SystemExit(2)
        workload = SUITE[name]
        inp = workload.make_input(args.seed, args.scale)
        if kind == "baseline":
            targets.append((f"{name}:baseline",
                            workload.build_baseline(inp), None))
            continue
        if kind == "dtt-watch":
            build = workload.build_dtt_watch(inp)
            if build is None:
                continue  # no watch variant: nothing to analyze
        else:
            build = workload.build_dtt(inp)
        targets.append((f"{name}:{kind}", build.program, build.specs))
    if not targets:
        print("nothing to check: pass an assembly file or --workload NAME")
        raise SystemExit(2)
    return targets


def _render_findings(label: str, findings, suppressed: int = 0) -> None:
    counts = f"{sum(1 for f in findings if f.severity == 'error')} error(s), " \
             f"{sum(1 for f in findings if f.severity == 'warning')} warning(s)"
    if suppressed:
        counts += f", {suppressed} baselined"
    print(f"{label}: {counts}")
    for finding in findings:
        print(f"  {finding!r}")
        if finding.detail:
            print(f"      {finding.detail}")


def _cmd_lint(args) -> int:
    from repro.isa.lint import lint_program

    try:
        targets = _analysis_targets(args)
    except SystemExit as error:
        return int(error.code)
    payload = []
    worst_errors = 0
    for label, program, _specs in targets:
        findings = lint_program(program)
        worst_errors += sum(1 for f in findings if f.severity == "error")
        if args.json:
            payload.append({
                "target": label,
                "findings": [f.to_dict() for f in findings],
            })
        else:
            _render_findings(label, findings)
    if args.json:
        print(json.dumps(payload, indent=2))
    return 1 if worst_errors else 0


def _cmd_analyze(args) -> int:
    from repro.analysis import (Baseline, analysis_summary, analyze_program)
    from repro.errors import DttError

    try:
        targets = _analysis_targets(args)
    except SystemExit as error:
        return int(error.code)
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except DttError as error:
            print(str(error))
            return 2
    written = Baseline()
    payload = []
    failed = False
    all_findings = []
    for label, program, specs in targets:
        findings = analyze_program(program, specs)
        written.add(findings, target=label)
        suppressed = 0
        if baseline is not None:
            findings, suppressed = baseline.filter(findings, target=label)
        all_findings.extend(findings)
        summary = analysis_summary(findings)
        if summary["errors"] or (args.fail_on == "warning"
                                 and summary["warnings"]):
            failed = True
        if args.json:
            row = {
                "target": label,
                "findings": [f.to_dict() for f in findings],
                "summary": summary,
                "suppressed": suppressed,
            }
            if specs is not None:
                from repro.analysis.symbolic import symbolic_report

                row["symbolic"] = symbolic_report(program, specs)
            payload.append(row)
        else:
            _render_findings(label, findings, suppressed)
    if args.write_baseline:
        written.save(args.write_baseline)
        print(f"wrote {args.write_baseline} "
              f"({len(written)} fingerprint(s))")
        return 0
    totals = analysis_summary(all_findings)
    if args.json:
        print(json.dumps({"targets": payload, "summary": totals}, indent=2))
    else:
        print(f"total: {totals['errors']} error(s), "
              f"{totals['warnings']} warning(s) "
              f"across {len(targets)} target(s)")
    return 1 if failed else 0


def _cmd_convert(args) -> int:
    from repro.autoconvert import convert_program
    from repro.obs.manifest import RunManifest
    from repro.workloads.suite import workload_names

    names = list(args.workload or [])
    if "all" in names:
        names = workload_names()
    for name in names:
        if name not in SUITE:
            print(f"unknown workload {name!r}; "
                  f"choose from {', '.join(SUITE)} or 'all'")
            return 2
    if args.top_k < 1:
        print(f"--top-k must be >= 1, got {args.top_k}")
        return 2

    runner = SuiteRunner(seed=args.seed, scale=args.scale)
    rows = {}
    status = 0
    for name in names:
        workload = SUITE[name]
        inp = workload.make_input(args.seed, args.scale)
        program = workload.build_baseline(inp)
        result = convert_program(
            program, top_k=args.top_k, min_speedup=args.min_speedup,
            config_name=args.config, sample_rate=args.sample_rate,
            sample_seed=args.sample_seed)
        runner.note_autoconvert(name, result.provenance())
        hand_elimination = _hand_elimination(workload, inp,
                                             result.baseline_redundant)
        print(f"  {name:8s} {len(result.accepted)}/{result.considered} "
              f"accepted  speedup {result.speedup:6.3f}  "
              f"elimination {result.elimination:6.1%}"
              + (f"  (hand {hand_elimination:6.1%})"
                 if hand_elimination is not None else ""))
        for reason, count in sorted(result.rejected.items()):
            print(f"           rejected {count} x {reason}")
        row = {
            "considered": result.considered,
            "accepted": len(result.accepted),
            "baseline_cycles": result.baseline_cycles,
            "cycles": result.cycles,
            "speedup": round(result.speedup, 6),
            "elimination": round(result.elimination, 6),
            "analysis_errors": 0,  # the gate only accepts at zero errors
        }
        if hand_elimination is not None:
            row["hand_elimination"] = round(hand_elimination, 6)
        rows[name] = row
        if not result.accepted:
            status = 1
        if args.emit:
            from repro.isa.assembler import format_program
            from repro.obs.ioutil import atomic_write_text
            if result.build is None:
                print(f"           nothing accepted; not writing {args.emit}")
            else:
                path = (args.emit if len(names) == 1
                        else f"{args.emit}.{name}")
                atomic_write_text(path, format_program(result.build.program))
                print(f"           wrote {path}")

    payload = {
        "kind": "bench_autoconvert",
        "config": args.config,
        "top_k": args.top_k,
        "min_speedup": args.min_speedup,
        "rows": rows,
    }
    if args.history:
        # append before the manifest is built, so the v7 manifest
        # carries the record id of the series this run extended
        if _append_history(args.history, payload,
                           source=args.bench_out or "convert",
                           runner=runner) is None:
            return 2
    manifest = RunManifest.from_runner(runner, experiment_id="convert")
    if args.json:
        from repro.obs.ioutil import atomic_write_text
        atomic_write_text(args.json, manifest.to_json())
        print(f"wrote {args.json}")
    if args.bench_out:
        from repro.obs.ioutil import atomic_write_text
        atomic_write_text(args.bench_out, json.dumps(payload, indent=2))
        print(f"wrote {args.bench_out}")
    return status


def _hand_elimination(workload, inp, baseline_redundant):
    """The hand-written conversion's redundancy elimination, or None
    when the workload has no (working) hand conversion to compare to."""
    from repro.machine.machine import Machine, run_to_completion
    from repro.profiling.redundancy import RedundantLoadProfiler

    if not baseline_redundant:
        return None
    try:
        build = workload.build_dtt(inp)
        machine = Machine(build.program, num_contexts=2)
        machine.attach_engine(build.engine())
        profiler = RedundantLoadProfiler()
        machine.add_observer(profiler)
        run_to_completion(machine)
    except Exception:
        return None
    return 1.0 - profiler.redundant_loads / baseline_redundant


def _cmd_sweep(args) -> int:
    from repro.harness.sweeps import sweep_redundancy, sweep_speedup

    seeds = tuple(args.seeds) if args.seeds else None
    failed = False
    for sweep in (sweep_redundancy, sweep_speedup):
        result = sweep(seeds) if seeds else sweep()
        print(result.render())
        print()
        failed = failed or not result.all_passed
    return 1 if failed else 0


def _cmd_verify(args) -> int:
    if not _set_default_tier(args.tier):
        return 2
    status = 0
    for name, workload in SUITE.items():
        try:
            verify_workload(workload, seed=args.seed, scale=args.scale)
            print(f"  {name:8s} OK")
        except Exception as error:  # report every failure, not just the first
            print(f"  {name:8s} FAILED: {error}")
            status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    """The dtt-harness argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="dtt-harness",
        description="Reproduction harness for 'Data-triggered threads' "
                    "(Tseng & Tullsen, HPCA 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments and workloads")
    run = sub.add_parser("run", help="run experiments (E1..E8 or 'all')")
    run.add_argument("experiments", nargs="+",
                     help="experiment ids, or 'all'")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--scale", type=int, default=None)
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="shard the run plan across N worker processes "
                          "(default: 1, serial)")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="persistent result store directory (default: "
                          "$DTT_STORE if set); repeated runs against the "
                          "same store skip already-computed simulations")
    run.add_argument("--no-store", action="store_true",
                     help="disable the result store even if DTT_STORE is set")
    run.add_argument("--task-timeout", type=float, default=600.0,
                     metavar="SECONDS",
                     help="per-run timeout under --jobs N (default: 600)")
    run.add_argument("--json", default=None, help="also write JSON here")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write a Chrome trace-event timeline of every "
                          "DTT run (open in chrome://tracing / Perfetto)")
    run.add_argument("--ctrace-out", default=None, metavar="FILE",
                     help="spill the full event stream of every DTT run "
                          "to a compressed trace file (readable by "
                          "`explain --ctrace` / `report --ctrace`); the "
                          "in-memory buffer cap no longer loses events")
    run.add_argument("--trace-keep", default="head",
                     choices=["head", "tail"],
                     help="which side of a full trace buffer survives: "
                          "'head' keeps the first events (default), "
                          "'tail' the most recent window")
    run.add_argument("--sample-rate", type=int, default=None, metavar="K",
                     help="profile redundancy on a 1/K address sample "
                          "(bounded memory, estimates with 95%% CIs) "
                          "instead of exactly")
    run.add_argument("--sample-seed", type=int, default=0,
                     help="seed of the sampling hash (default: 0); same "
                          "seed + rate = same estimate, any process")
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="write the metrics-registry snapshot as JSON")
    run.add_argument("--profile", default=None, metavar="FILE",
                     help="wrap the whole run in cProfile and write the "
                          "pstats text report here")
    run.add_argument("--history", default=None, metavar="DIR",
                     help="append this run's results to a performance-"
                          "history store (a directory of per-kind JSONL "
                          "files, or one .jsonl file) for `dtt-harness "
                          "history` trend analysis")
    run.add_argument("--tier", default=None,
                     choices=["legacy", "closure", "superblock"],
                     help="pin Machine.run's execution tier for every "
                          "simulation in this process (default: the "
                          "machine's default tier)")
    run.add_argument("--status-file", default=None, metavar="FILE",
                     help="write a live atomic-JSON heartbeat (phase, "
                          "runs completed, instructions retired, queue "
                          "depth, EWMA ETA) to FILE while the run is in "
                          "flight")
    bench = sub.add_parser(
        "bench",
        help="measure interpreter instructions/sec (fast path vs legacy "
             "stepping) and write BENCH_interpreter.json")
    bench.add_argument("--workloads", nargs="+", default=None,
                       metavar="NAME",
                       help="workload classes to measure (default: mcf "
                            "equake perlbmk)")
    bench.add_argument("--repeat", type=int, default=3, metavar="N",
                       help="timed attempts per tier; best is reported "
                            "(default: 3)")
    bench.add_argument("--seed", type=int, default=None)
    bench.add_argument("--scale", type=int, default=None)
    bench.add_argument("--max-instructions", type=int, default=50_000_000)
    bench.add_argument("--tier", nargs="+", default=None,
                       choices=["closure", "superblock"],
                       help="fast tier(s) to measure against legacy "
                            "stepping (default: both)")
    bench.add_argument("--trace", action="store_true",
                       help="run the trace-overhead benchmark instead "
                            "(ctrace bytes/event, compression ratio, codec "
                            "events/sec, sampled-vs-exact profiler error) "
                            "and write BENCH_trace_overhead.json")
    bench.add_argument("--sample-rate", type=int, default=64, metavar="K",
                       help="sampling denominator for the --trace bench's "
                            "accuracy measurement (default: 64)")
    bench.add_argument("-o", "--output", default="BENCH_interpreter.json",
                       metavar="FILE",
                       help="benchmark JSON path (default: "
                            "BENCH_interpreter.json, or "
                            "BENCH_trace_overhead.json under --trace); "
                            "'' skips writing")
    bench.add_argument("--history", default=None, metavar="DIR",
                       help="also append the result to a performance-"
                            "history store for `dtt-harness history` "
                            "trend analysis")
    convert = sub.add_parser(
        "convert",
        help="automatically convert plain workload builds to DTT: "
             "profile, synthesize, prove (static checks + output "
             "equality), accept only on a measured cycle win")
    convert.add_argument("--workload", nargs="+", default=["mcf"],
                         metavar="NAME",
                         help="workload(s) to convert, or 'all' "
                              "(default: mcf)")
    convert.add_argument("--top-k", type=int, default=8, metavar="N",
                         help="profile-ranked candidates the gate "
                              "considers (default: 8)")
    convert.add_argument("--min-speedup", type=float, default=1.0,
                         metavar="X",
                         help="minimum simulated-cycle speedup vs the "
                              "unconverted baseline to accept (default: "
                              "1.0 — any strict win)")
    convert.add_argument("--config", default="smt2",
                         help="timing configuration for the measurement "
                              "(default: smt2)")
    convert.add_argument("--seed", type=int, default=None)
    convert.add_argument("--scale", type=int, default=None)
    convert.add_argument("--sample-rate", type=int, default=None,
                         metavar="K",
                         help="rank candidates from a 1/K sampled "
                              "profile (CI-lower-bound ordering) instead "
                              "of an exact one")
    convert.add_argument("--sample-seed", type=int, default=0)
    convert.add_argument("--json", default=None, metavar="FILE",
                         help="write the run manifest (schema v7, with "
                              "the full conversion audit) here")
    convert.add_argument("--emit", default=None, metavar="FILE",
                         help="write the converted program as assembly "
                              "text (suffixed per workload when "
                              "converting several)")
    convert.add_argument("--bench-out", default=None, metavar="FILE",
                         help="write a bench_autoconvert JSON (one row "
                              "per workload) usable with `compare`")
    convert.add_argument("--history", default=None, metavar="DIR",
                         help="append the conversion metrics to a "
                              "performance-history store; the --json "
                              "manifest then carries the record id")
    compare = sub.add_parser(
        "compare",
        help="diff two result sets (stores, --json files, or manifests) "
             "and flag regressions")
    compare.add_argument("old", help="baseline side: store dir / JSON file")
    compare.add_argument("new", help="candidate side: store dir / JSON file")
    compare.add_argument("--tolerance", type=float, default=0.05,
                         help="relative change tolerated before flagging "
                              "(default: 0.05)")
    compare.add_argument("--json", default=None,
                         help="also write the compare report as JSON here")
    verify = sub.add_parser("verify", help="verify baseline == DTT == reference")
    verify.add_argument("--seed", type=int, default=None)
    verify.add_argument("--scale", type=int, default=None)
    verify.add_argument("--tier", default=None,
                        choices=["legacy", "closure", "superblock"],
                        help="pin the execution tier the sweep runs under "
                             "(the CI smoke pins 'superblock')")
    sweep = sub.add_parser("sweep", help="headline robustness across seeds")
    sweep.add_argument("--seeds", type=int, nargs="+", default=None)
    stats = sub.add_parser(
        "stats", help="run one workload metered and print the registry")
    stats.add_argument("--workload", default="mcf",
                       help="workload to run (default: mcf)")
    stats.add_argument("--seed", type=int, default=None)
    stats.add_argument("--scale", type=int, default=None)
    stats.add_argument("--prometheus", action="store_true",
                       help="print Prometheus text format instead of the "
                            "aligned table")
    stats.add_argument("--sample-rate", type=int, default=None, metavar="K",
                       help="also run a 1/K sampled redundancy profile and "
                            "print the estimates with their 95%% CIs")
    stats.add_argument("--sample-seed", type=int, default=0)
    stats.add_argument("--ctrace-out", default=None, metavar="FILE",
                       help="spill the DTT run's events to a compressed "
                            "trace and print its compression ratio")
    explain = sub.add_parser(
        "explain",
        help="trace one DTT run and explain an activation's causal "
             "lineage (or an address's suppression)")
    explain.add_argument("--workload", default="mcf",
                         help="workload to trace (default: mcf)")
    explain.add_argument("--config", default="smt2",
                         help="machine configuration (default: smt2)")
    explain.add_argument("--ctrace", default=None, metavar="FILE",
                         help="explain from a compressed trace file "
                              "(written by `run --ctrace-out`) instead of "
                              "re-running the workload")
    explain.add_argument("--seed", type=int, default=None)
    explain.add_argument("--scale", type=int, default=None)
    what = explain.add_mutually_exclusive_group()
    what.add_argument("--activation", type=int, default=None, metavar="N",
                      help="explain why activation N ran (trigger -> match "
                           "-> enqueue -> dispatch -> outcome)")
    what.add_argument("--address", type=int, default=None, metavar="ADDR",
                      help="explain what happened at one trigger address "
                           "(suppressions, duplicates, activations)")
    what.add_argument("--list", action="store_true",
                      help="list every activation with its outcome "
                           "(the default)")
    report = sub.add_parser(
        "report",
        help="write a self-contained cross-run HTML report from a result "
             "store and/or a `run --json` results file")
    report.add_argument("--store", default=None, metavar="DIR",
                        help="result store directory to aggregate")
    report.add_argument("--results", default=None, metavar="FILE",
                        help="results JSON written by `run --json` "
                             "(adds paper-claim vs measured and latency "
                             "sections)")
    report.add_argument("--ctrace", default=None, metavar="FILE",
                        help="compressed trace file (`run --ctrace-out`); "
                             "adds a per-stream causal summary section")
    report.add_argument("-o", "--output", default="report.html",
                        metavar="FILE",
                        help="output HTML path (default: report.html)")
    report.add_argument("--title", default="DTT reproduction report",
                        help="report page title")
    history = sub.add_parser(
        "history",
        help="trend analysis over the performance-history store: "
             "EWMA prediction intervals + changepoint flagging per "
             "metric series; --gate exits nonzero on regressions")
    history.add_argument("path", nargs="?", default="benchmarks/history",
                         help="history store: a directory of per-kind "
                              "JSONL files or one .jsonl file "
                              "(default: benchmarks/history)")
    history.add_argument("--append", default=None, metavar="FILE",
                         help="first append this bench / manifest / "
                              "results JSON to the store (the CI "
                              "ingestion step), then analyze")
    history.add_argument("--kind", default=None,
                         help="restrict the analysis to one record kind "
                              "(e.g. bench_interpreter)")
    history.add_argument("--window", type=int, default=20, metavar="N",
                         help="newest records per kind to analyze "
                              "(default: 20)")
    history.add_argument("--tolerance", type=float, default=0.05,
                         help="relative change floor before a deviation "
                              "can flag (default: 0.05)")
    history.add_argument("--min-runs", type=int, default=3, metavar="N",
                         help="fewest runs of a series before its "
                              "verdicts may gate (default: 3)")
    history.add_argument("--gate", action="store_true",
                         help="exit 1 when any series gets a gating "
                              "verdict (regression / changepoint) — "
                              "the CI trend gate")
    history.add_argument("--verbose", action="store_true",
                         help="list quiet (ok / info / short) series "
                              "too, not just flagged ones")
    history.add_argument("--json", action="store_true",
                         help="print the trend report as JSON instead "
                              "of text")
    dashboard = sub.add_parser(
        "dashboard",
        help="write the self-contained trend-dashboard HTML "
             "(sparklines, verdicts, flame-style cycle attribution "
             "for flagged workloads)")
    dashboard.add_argument("--history", default="benchmarks/history",
                           metavar="DIR",
                           help="history store to analyze "
                                "(default: benchmarks/history)")
    dashboard.add_argument("-o", "--output", default="trends.html",
                           metavar="FILE",
                           help="output HTML path (default: trends.html)")
    dashboard.add_argument("--window", type=int, default=20, metavar="N")
    dashboard.add_argument("--tolerance", type=float, default=0.05)
    dashboard.add_argument("--min-runs", type=int, default=3, metavar="N")
    dashboard.add_argument("--title", default="DTT performance trends",
                           help="dashboard page title")
    dashboard.add_argument("--no-flames", action="store_true",
                           help="skip the traced runs that build the "
                                "cycle-attribution sections")
    dashboard.add_argument("--seed", type=int, default=None)
    dashboard.add_argument("--scale", type=int, default=None)

    def _add_target_arguments(command):
        command.add_argument("program", nargs="?", default=None,
                             help="assembly file to check (optional)")
        command.add_argument("--workload", nargs="+", default=None,
                             metavar="NAME",
                             help="bundled workload(s) to check, or 'all'")
        command.add_argument("--kind", default="dtt",
                             choices=["baseline", "dtt", "dtt-watch"],
                             help="which build of a workload to check "
                                  "(default: dtt)")
        command.add_argument("--seed", type=int, default=None)
        command.add_argument("--scale", type=int, default=None)
        command.add_argument("--json", action="store_true",
                             help="print findings as JSON instead of text")

    lint = sub.add_parser(
        "lint",
        help="structural checks over a program or workload builds "
             "(nonzero exit on errors)")
    _add_target_arguments(lint)
    analyze = sub.add_parser(
        "analyze",
        help="DTT safety analysis (lint + trigger coverage + race checks); "
             "nonzero exit per --fail-on")
    _add_target_arguments(analyze)
    analyze.add_argument("--fail-on", default="error",
                         choices=["error", "warning"],
                         help="findings severity that makes the exit code "
                              "nonzero (default: error)")
    analyze.add_argument("--baseline", default=None, metavar="FILE",
                         help="suppress findings fingerprinted in this "
                              "baseline file")
    analyze.add_argument("--write-baseline", default=None, metavar="FILE",
                         help="write all current findings as a baseline "
                              "and exit 0")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "convert":
        return _cmd_convert(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "history":
        return _cmd_history(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    return _cmd_verify(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # piping into `head` etc. closes stdout early; exit quietly
        sys.exit(0)
