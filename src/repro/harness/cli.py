"""Command-line entry point: ``dtt-harness`` / ``python -m repro.harness.cli``.

Commands::

    dtt-harness list                 # experiments and workloads
    dtt-harness run E3               # one experiment
    dtt-harness run all              # everything, shared runner
    dtt-harness run E1 E3 --json out.json
    dtt-harness verify               # correctness sweep of the suite
    dtt-harness sweep                # headline robustness across seeds
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.runner import SuiteRunner
from repro.workloads.base import verify_workload
from repro.workloads.suite import SUITE


def _cmd_list(_args) -> int:
    print("experiments:")
    for experiment_id, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"  {experiment_id}: {doc[0] if doc else fn.__name__}")
    print("workloads:")
    for name, workload in SUITE.items():
        print(f"  {name:8s} {workload.description}")
    return 0


def _cmd_run(args) -> int:
    wanted = [w.upper() for w in args.experiments]
    if "ALL" in wanted:
        wanted = list(EXPERIMENTS)
    runner = SuiteRunner(seed=args.seed, scale=args.scale)
    results = []
    failed = False
    for experiment_id in wanted:
        result = run_experiment(experiment_id, runner)
        results.append(result)
        print(result.render())
        print()
        failed = failed or not result.all_passed
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([r.as_dict() for r in results], handle, indent=2)
        print(f"wrote {args.json}")
    return 1 if failed else 0


def _cmd_sweep(args) -> int:
    from repro.harness.sweeps import sweep_redundancy, sweep_speedup

    seeds = tuple(args.seeds) if args.seeds else None
    failed = False
    for sweep in (sweep_redundancy, sweep_speedup):
        result = sweep(seeds) if seeds else sweep()
        print(result.render())
        print()
        failed = failed or not result.all_passed
    return 1 if failed else 0


def _cmd_verify(args) -> int:
    status = 0
    for name, workload in SUITE.items():
        try:
            verify_workload(workload, seed=args.seed, scale=args.scale)
            print(f"  {name:8s} OK")
        except Exception as error:  # report every failure, not just the first
            print(f"  {name:8s} FAILED: {error}")
            status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    """The dtt-harness argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="dtt-harness",
        description="Reproduction harness for 'Data-triggered threads' "
                    "(Tseng & Tullsen, HPCA 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments and workloads")
    run = sub.add_parser("run", help="run experiments (E1..E8 or 'all')")
    run.add_argument("experiments", nargs="+",
                     help="experiment ids, or 'all'")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--scale", type=int, default=None)
    run.add_argument("--json", default=None, help="also write JSON here")
    verify = sub.add_parser("verify", help="verify baseline == DTT == reference")
    verify.add_argument("--seed", type=int, default=None)
    verify.add_argument("--scale", type=int, default=None)
    sweep = sub.add_parser("sweep", help="headline robustness across seeds")
    sweep.add_argument("--seeds", type=int, nargs="+", default=None)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    return _cmd_verify(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # piping into `head` etc. closes stdout early; exit quietly
        sys.exit(0)
