"""Suite runner: executes (and memoizes) the runs experiments share.

E3, E4, E6 and E7 all need the same baseline/DTT timed runs; running the
whole suite once and caching results keeps the full harness fast.  Cache
keys include everything that affects a run (workload, build kind, machine
configuration, DTT configuration fingerprint, seed, scale), so distinct
experiments never alias.  The fingerprint is auto-derived from
``DttConfig.__slots__`` (:func:`repro.exec.plan.config_fingerprint`), so
a newly added configuration knob can never silently alias entries.

Behind the in-memory memo sits an optional persistent backend, the
content-addressed :class:`~repro.exec.store.ResultStore`: a memo miss
first consults the store (counted as ``runner.store_hits`` /
``runner.store_misses``), and every executed run is written back, so a
second harness invocation against the same store executes zero
simulations.  DTT results restored from the store carry a
:class:`~repro.exec.store.StoredEngineView` standing in for the live
engine, so experiments that read engine counters keep working.

The runner is also the observability anchor of a harness run: it counts
memoization and store hits/misses, accumulates wall-clock seconds per
phase (one phase per distinct run), optionally wraps every DTT engine in
an :class:`~repro.core.trace.EngineTrace` for timeline export, and feeds
a shared :class:`~repro.obs.metrics.MetricsRegistry` through to the
timing simulator — all of which
:meth:`repro.obs.manifest.RunManifest.from_runner` rolls into the
per-run manifest.  Pool workers (:mod:`repro.exec.pool`) run their own
private runner and hand results back through
:meth:`SuiteRunner.install_payload` / :meth:`merge_worker_run`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.config import DttConfig
from repro.core.trace import EngineTrace
from repro.errors import CorrectnessError, DttError, ExecError
from repro.exec.plan import (RunSpec, canonical_run_name, config_fingerprint,
                             resolve_workload)
from repro.exec.store import (ResultStore, decode_profile, decode_timed,
                              encode_profile, encode_timed)
from repro.profiling.report import RedundancyReport, profile_program
from repro.timing.params import named_config
from repro.timing.stats import TimingResult
from repro.timing.system import TimingSimulator
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE


class SuiteRunner:
    """Runs workloads under timing/profiling with memoization."""

    def __init__(self, seed: Optional[int] = None, scale: Optional[int] = None,
                 metrics=None, trace: bool = False, store=None,
                 trace_keep: str = "head",
                 trace_max_events: int = 100_000,
                 ctrace_out: Optional[str] = None,
                 sample_rate: Optional[int] = None,
                 sample_seed: int = 0,
                 status=None):
        self.seed = seed
        self.scale = scale
        #: optional MetricsRegistry shared by every run this runner makes
        self.metrics = metrics
        #: when True, every DTT engine is wrapped in an EngineTrace; the
        #: store is then never *read* (traces need live engines), though
        #: executed runs are still written back
        self.trace_enabled = trace or ctrace_out is not None
        #: which side of a full trace buffer survives ("head" = first
        #: events, the historical default; "tail" = most recent window)
        self.trace_keep = trace_keep
        self.trace_max_events = trace_max_events
        #: path of the compressed spill file; when set, every traced
        #: run's full event stream is written through a
        #: :class:`~repro.obs.ctrace.CTraceWriter` regardless of the
        #: in-memory buffer cap (call :meth:`close_ctrace` when done)
        self.ctrace_out = ctrace_out
        #: profiling sample rate (denominator; None = exact profiling).
        #: Sampled profiles are estimates, so they stay memo-only — the
        #: persistent store never sees them
        self.sample_rate = sample_rate
        self.sample_seed = sample_seed
        self._ctrace_writer = None
        self._ctrace_footer: Optional[Dict] = None
        #: optional persistent ResultStore behind the in-memory memo;
        #: a path string is accepted and opened
        self.store: Optional[ResultStore] = (
            ResultStore(store) if isinstance(store, str) else store)
        #: optional live-telemetry heartbeat
        #: (:class:`~repro.obs.status.StatusFile`); a path string is
        #: accepted and opened.  Every executed run ticks it with the
        #: phase, wall-clock, instructions retired, and queue depth.
        if isinstance(status, str):
            from repro.obs.status import StatusFile
            status = StatusFile(status)
        self.status = status
        self._timed: Dict[Tuple, TimingResult] = {}
        self._profiles: Dict[Tuple, RedundancyReport] = {}
        self._engines: Dict[Tuple, object] = {}
        self._traces: Dict[Tuple, EngineTrace] = {}
        self._autoconvert: List[Dict] = []
        self._history: List[Dict] = []
        self._phase_seconds: Dict[str, float] = {}
        self._hits = 0
        self._misses = 0
        self._store_hits = 0
        self._store_misses = 0

    # -- cache accounting --------------------------------------------------------

    def _record_hit(self) -> None:
        self._hits += 1
        if self.metrics is not None:
            self.metrics.counter(
                "runner.cache_hits", "memoized runs served from cache").inc()

    def _record_miss(self) -> None:
        self._misses += 1
        if self.metrics is not None:
            self.metrics.counter(
                "runner.cache_misses", "runs actually executed").inc()

    def _record_store_hit(self) -> None:
        self._store_hits += 1
        if self.metrics is not None:
            self.metrics.counter(
                "runner.store_hits",
                "runs restored from the persistent result store").inc()

    def _record_store_miss(self) -> None:
        self._store_misses += 1
        if self.metrics is not None:
            self.metrics.counter(
                "runner.store_misses",
                "store lookups that found no entry").inc()

    def _record_phase(self, phase: str, seconds: float) -> None:
        self._phase_seconds[phase] = self._phase_seconds.get(phase, 0.0) \
            + seconds
        if self.metrics is not None:
            self.metrics.histogram(
                "runner.run_seconds", "wall-clock seconds per executed run",
                buckets=(0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60, 300),
            ).observe(seconds)
        if self.store is not None:
            self.store.record_timing(phase, seconds)

    def cache_stats(self) -> Dict:
        """Hit/miss counts and the cached runs as canonical strings.

        ``keys`` holds the documented, serialization-safe
        ``workload:build:config:seed=<seed>:scale=<scale>`` form (see
        :func:`repro.exec.plan.canonical_run_name`) — the same strings
        the result store hashes into content addresses.
        """
        keys = [
            canonical_run_name(workload, build, config, fields, seed, scale)
            for (workload, build, config, fields, seed, scale) in self._timed
        ] + [
            canonical_run_name(workload, "profile", None, (), seed, scale)
            for (workload, seed, scale) in self._profiles
        ]
        return {
            "hits": self._hits,
            "misses": self._misses,
            "store_hits": self._store_hits,
            "store_misses": self._store_misses,
            "timed_entries": len(self._timed),
            "profile_entries": len(self._profiles),
            "keys": keys,
        }

    def clear(self) -> None:
        """Drop every memoized run (counters and phase timings too)."""
        self._timed.clear()
        self._profiles.clear()
        self._engines.clear()
        self._traces.clear()
        self._autoconvert.clear()
        self._history.clear()
        self._phase_seconds.clear()
        self._hits = 0
        self._misses = 0
        self._store_hits = 0
        self._store_misses = 0

    def phase_seconds(self) -> Dict[str, float]:
        """Wall-clock seconds per phase (one phase per executed run)."""
        return dict(self._phase_seconds)

    def peak_queue_depth(self) -> int:
        """Deepest any cached engine's thread queue ever got."""
        depths = [engine.queue.depth_high_water
                  for engine in self._engines.values()]
        return max(depths, default=0)

    def analysis_summaries(self) -> List[Dict]:
        """Static-analysis summaries for every DTT build this runner ran.

        One row per distinct ``(workload, kind)`` among the memoized timed
        runs with a DTT build (``dtt`` / ``dtt-watch``), produced by
        :func:`repro.analysis.checks.summarize_workload` under the default
        :class:`~repro.core.config.DttConfig` — the analyzer's verdict is
        a property of the *build* (program + trigger specs), not of the
        machine configuration, so ablation variants of one build share a
        row.  Rolled into the run manifest (schema v4) so ``compare`` can
        flag a conversion whose safety profile changed.

        Only bundled (suite-registered) workloads are summarized: ad-hoc
        experiment workloads (e.g. E9's contention micro-workloads) are
        not resolvable by name after the fact.
        """
        from repro.analysis.checks import summarize_workload

        seen = set()
        rows: List[Dict] = []
        for (workload, build, _config, _fields, seed, scale) in self._timed:
            if build not in ("dtt", "dtt-watch") or (workload, build) in seen:
                continue
            if workload not in SUITE:
                continue  # ad-hoc experiment workload, not in the registry
            seen.add((workload, build))
            try:
                rows.append(summarize_workload(workload, kind=build,
                                               seed=seed, scale=scale))
            except DttError:
                continue  # e.g. a build kind the workload no longer has
        rows.sort(key=lambda row: (row["workload"], row["kind"]))
        return rows

    def traces(self) -> List[Tuple[str, EngineTrace]]:
        """(label, trace) for every traced run, in execution order."""
        return [
            (f"{key[0]}:{key[1]}:{key[2]}", trace)
            for key, trace in self._traces.items()
        ]

    def trace_for(self, workload: str, kind: str = "dtt",
                  config_name: str = "smt2") -> Optional[EngineTrace]:
        """The trace of one run (requires ``trace=True``), or None."""
        for key, trace in self._traces.items():
            if (key[0], key[1], key[2]) == (workload, kind, config_name):
                return trace
        return None

    # -- compressed-trace spill --------------------------------------------------

    def _begin_spill(self, stream_name: str):
        """Open (lazily) the ctrace writer and start a stream; returns
        the spill sink for the new EngineTrace, or None."""
        if self.ctrace_out is None:
            return None
        if self._ctrace_writer is None:
            from repro.obs.ctrace import CTraceWriter
            self._ctrace_writer = CTraceWriter(self.ctrace_out)
        self._ctrace_writer.begin_stream(stream_name)
        return self._ctrace_writer

    def _end_spill(self, trace: EngineTrace) -> None:
        if self._ctrace_writer is None:
            return
        self._ctrace_writer.end_stream(
            memory_dropped=trace.dropped, drop_policy=trace.keep)

    def close_ctrace(self) -> Optional[Dict]:
        """Commit the compressed spill file (idempotent).

        Until this runs the target path holds the previous artifact (or
        nothing) — the writer stages through a temp file.  Returns the
        footer metadata, or None when no spill was configured.
        """
        if self._ctrace_writer is not None:
            self._ctrace_footer = self._ctrace_writer.close()
            self._ctrace_writer = None
        return self._ctrace_footer

    # -- manifest provenance -----------------------------------------------------

    def sampling_provenance(self) -> Optional[Dict]:
        """Sampled-profiling provenance for the manifest (schema v5):
        rate, seed, and each sampled profile's estimator state.  None
        when profiling is exact."""
        if self.sample_rate is None:
            return None
        profiles = {}
        for (workload, _seed, _scale), report in self._profiles.items():
            if hasattr(report.loads, "provenance"):
                profiles[workload] = report.loads.provenance()
        return {
            "sample_rate": self.sample_rate,
            "sample_seed": self.sample_seed,
            "profiles": profiles,
        }

    def note_autoconvert(self, workload: str, provenance: Dict) -> None:
        """Record one automatic conversion's gate audit for the manifest.

        ``provenance`` is :meth:`repro.autoconvert.gate.ConversionResult.\
        provenance`; the row lands in the manifest's ``autoconvert`` list
        (schema v6) keyed by workload name.
        """
        self._autoconvert.append(dict(provenance, workload=workload))

    def autoconvert_provenance(self) -> List[Dict]:
        """Automatic-conversion audit rows for the manifest (schema v6):
        one per :meth:`note_autoconvert` call, in recording order."""
        return [dict(row) for row in self._autoconvert]

    def note_history(self, record_id: str, kind: str, path: str) -> None:
        """Record one performance-history append for the manifest.

        Called after a ``--history`` append so the v7 manifest names the
        exact :mod:`repro.obs.history` record(s) this run produced — the
        join key between a manifest and the trend series it extended.
        """
        self._history.append(
            {"record_id": record_id, "kind": kind, "path": path})

    def history_provenance(self) -> List[Dict]:
        """History-append records for the manifest (schema v7): one per
        :meth:`note_history` call, in recording order."""
        return [dict(row) for row in self._history]

    def status_summary(self) -> Optional[Dict]:
        """Condensed heartbeat telemetry for the manifest (schema v7),
        or None when no ``--status-file`` was wired."""
        if self.status is None or not self.status.enabled:
            return None
        return self.status.summary()

    def ctrace_provenance(self) -> Optional[Dict]:
        """Compressed-spill provenance for the manifest (schema v5).

        Never closes the writer (a manifest can be built mid-harness,
        with more traced runs still to come): while the spill is open
        this reports live counters with ``committed: False``; after
        :meth:`close_ctrace` it reports the final footer.
        """
        if self.ctrace_out is None:
            return None
        provenance: Dict = {"path": self.ctrace_out}
        if self._ctrace_footer is not None:
            provenance.update(self._ctrace_footer)
            provenance["committed"] = True
        else:
            writer = self._ctrace_writer
            provenance.update({
                "streams": writer.streams_written if writer else 0,
                "events": writer.events_written if writer else 0,
                "committed": False,
            })
        return provenance

    # -- persistent store --------------------------------------------------------

    def _try_store(self, spec: RunSpec) -> bool:
        """Restore ``spec`` from the store into the memo, if possible.

        The single counting site for store hits and misses: a hit
        installs the entry and returns True; an absent/corrupt entry
        counts a miss and returns False.  Reads are disabled while
        tracing (traces need live engines).
        """
        if self.store is None or self.trace_enabled:
            return False
        entry = self.store.get(spec)
        if entry is None:
            self._record_store_miss()
            return False
        self._install(spec, entry["payload"])
        self._record_store_hit()
        return True

    def _install(self, spec: RunSpec, payload: Dict) -> None:
        """Decode ``payload`` into the memo (and engine views)."""
        key = spec.runner_key()
        if spec.kind == "profile":
            self._profiles[key] = decode_profile(payload)
        else:
            result, view = decode_timed(payload)
            self._timed[key] = result
            if view is not None:
                self._engines[key] = view

    def _persist(self, spec: RunSpec, elapsed: float) -> None:
        """Write a just-executed run through to the store."""
        if self.store is None:
            return
        key = spec.runner_key()
        if spec.kind == "profile":
            payload = encode_profile(self._profiles[key])
        else:
            payload = encode_timed(self._timed[key], self._engines.get(key))
        self.store.put(spec, payload, elapsed)

    # -- spec-driven execution (the pool scheduler's interface) -----------------

    def is_cached(self, spec: RunSpec) -> bool:
        """Is this run already in the in-memory memo?"""
        key = spec.runner_key()
        return key in (self._profiles if spec.kind == "profile"
                       else self._timed)

    def load_from_store(self, spec: RunSpec) -> bool:
        """Serve ``spec`` from the persistent store if present.

        Counts only hits — a miss here means the scheduler will execute
        the run, and the execution path counts the store miss exactly
        once (avoiding double counting when serial fallback re-checks).
        """
        if self.store is None or self.trace_enabled:
            return False
        if spec.kind == "profile" and self.sample_rate is not None:
            return False  # stored profiles are exact; this runner samples
        entry = self.store.get(spec)
        if entry is None:
            return False
        self._install(spec, entry["payload"])
        self._record_store_hit()
        return True

    def execute_spec(self, spec: RunSpec,
                     check_against_baseline: bool = True) -> None:
        """Run one :class:`RunSpec` through the ordinary memoized path."""
        workload = resolve_workload(spec.workload)
        if spec.kind == "profile":
            self.profile(workload)
        else:
            self.timed(workload, spec.build, spec.config_name,
                       spec.dtt_config(), check_against_baseline)

    def result_for(self, spec: RunSpec):
        """The memoized result of ``spec`` (raises if never run)."""
        key = spec.runner_key()
        memo = self._profiles if spec.kind == "profile" else self._timed
        if key not in memo:
            raise ExecError(f"run {spec.canonical()} has not been executed")
        return memo[key]

    def payload_for(self, spec: RunSpec) -> Dict:
        """Encode the memoized result of ``spec`` (worker-side)."""
        if spec.kind == "profile":
            return encode_profile(self.result_for(spec))
        return encode_timed(self.result_for(spec),
                            self._engines.get(spec.runner_key()))

    def install_payload(self, spec: RunSpec, payload: Dict,
                        elapsed: float) -> None:
        """Adopt a worker-executed run: memo, store write-back, and the
        executed-run count.  The run's engine/timing/cache-miss counters
        arrive separately via :meth:`merge_worker_run` (already
        incremented worker-side); the store miss is metered *here*
        because workers never see the store."""
        self._install(spec, payload)
        self._misses += 1
        if self.store is not None:
            self._record_store_miss()
            self.store.put(spec, payload, elapsed)

    def merge_worker_run(self, metrics_values: Optional[Dict],
                         phases: Optional[Dict[str, float]]) -> None:
        """Fold a worker's metrics snapshot and phase timings into this
        runner's registry, phase table, and store timing hints."""
        if metrics_values and self.metrics is not None:
            self.metrics.merge_values(metrics_values)
        for phase, seconds in (phases or {}).items():
            self._phase_seconds[phase] = \
                self._phase_seconds.get(phase, 0.0) + seconds
            if self.store is not None:
                self.store.record_timing(phase, seconds)

    # -- timed runs --------------------------------------------------------------

    def timed(
        self,
        workload: Workload,
        kind: str = "baseline",
        config_name: str = "smt2",
        dtt_config: Optional[DttConfig] = None,
        check_against_baseline: bool = True,
    ) -> TimingResult:
        """One timed run.  ``kind`` is 'baseline', 'dtt', or 'dtt-watch'."""
        spec = RunSpec("timed", workload.name, kind, config_name,
                       config_fingerprint(dtt_config), self.seed, self.scale)
        key = spec.runner_key()
        if key in self._timed:
            self._record_hit()
            return self._timed[key]
        if self._try_store(spec):
            return self._timed[key]
        self._record_miss()
        inp = workload.make_input(self.seed, self.scale)
        system = named_config(config_name)
        if kind == "baseline":
            simulator = TimingSimulator(workload.build_baseline(inp), system,
                                        metrics=self.metrics)
            engine = None
        else:
            build = (workload.build_dtt_watch(inp) if kind == "dtt-watch"
                     else workload.build_dtt(inp))
            if build is None:
                raise CorrectnessError(
                    f"{workload.name} has no {kind} build"
                )
            engine = build.engine(config=dtt_config, deferred=True)
            if self.trace_enabled:
                spill = self._begin_spill(f"{key[0]}:{key[1]}:{key[2]}")
                self._traces[key] = EngineTrace(
                    engine, max_events=self.trace_max_events,
                    keep=self.trace_keep, spill=spill)
            simulator = TimingSimulator(build.program, system, engine=engine,
                                        metrics=self.metrics)
        started = time.perf_counter()
        result = simulator.run()
        elapsed = time.perf_counter() - started
        if engine is not None and key in self._traces:
            trace = self._traces[key]
            self._end_spill(trace)
            if self.metrics is not None and trace.dropped:
                # labeled by drop policy: a "head" drop loses the run's
                # recent events, a "tail" drop its beginning — exported
                # metrics must distinguish the two windows
                self.metrics.counter(
                    "trace.dropped_events",
                    "events dropped by full in-memory trace buffers",
                    labels={"keep": trace.keep}).inc(trace.dropped)
        self._record_phase(spec.phase_name(), elapsed)
        if self.status is not None:
            self.status.complete_run(
                spec.phase_name(), elapsed,
                instructions=result.instructions,
                queue_depth=(engine.queue.depth_high_water
                             if engine is not None else 0))
        if kind != "baseline" and check_against_baseline:
            baseline = self.timed(workload, "baseline", config_name)
            if result.output != baseline.output:
                raise CorrectnessError(
                    f"{workload.name}: {kind} output diverges from baseline "
                    f"under {config_name}"
                )
        self._timed[key] = result
        if engine is not None:
            self._engines[key] = engine
        self._persist(spec, elapsed)
        return result

    def engine_for(self, workload: Workload, kind: str = "dtt",
                   config_name: str = "smt2",
                   dtt_config: Optional[DttConfig] = None):
        """The engine of a previously-run (or now-run) DTT timed run.

        For runs restored from the persistent store this is a read-only
        :class:`~repro.exec.store.StoredEngineView` carrying the same
        ``summary()`` / ``status`` / queue high-water surfaces.
        """
        key = (workload.name, kind, config_name,
               config_fingerprint(dtt_config), self.seed, self.scale)
        if key not in self._engines:
            self.timed(workload, kind, config_name, dtt_config)
        if key not in self._engines:
            raise DttError(
                f"no engine available for {workload.name}:{kind}:"
                f"{config_name} (baseline runs have no DTT engine)"
            )
        return self._engines[key]

    # -- profiles ------------------------------------------------------------------

    def profile(self, workload: Workload) -> RedundancyReport:
        """Redundancy profile of the workload's baseline build.

        With :attr:`sample_rate` set, the profile is a bounded-memory
        *estimate* (see
        :class:`~repro.profiling.redundancy.SampledRedundantLoadProfiler`)
        and is kept memo-only: the persistent store holds exact profiles
        exclusively, so an estimated run can never be restored where an
        exact one is expected.
        """
        spec = RunSpec.for_profile(workload.name, self.seed, self.scale)
        key = spec.runner_key()
        sampled = self.sample_rate is not None
        if key in self._profiles:
            self._record_hit()
            return self._profiles[key]
        if not sampled and self._try_store(spec):
            return self._profiles[key]
        self._record_miss()
        inp = workload.make_input(self.seed, self.scale)
        started = time.perf_counter()
        report = profile_program(workload.build_baseline(inp), workload.name,
                                 sample_rate=self.sample_rate,
                                 sample_seed=self.sample_seed)
        elapsed = time.perf_counter() - started
        self._record_phase(spec.phase_name(), elapsed)
        if self.status is not None:
            self.status.complete_run(spec.phase_name(), elapsed)
        self._profiles[key] = report
        if not sampled:
            self._persist(spec, elapsed)
        return report

    # -- sweeps ---------------------------------------------------------------------

    def speedup(self, workload: Workload, config_name: str = "smt2",
                dtt_config: Optional[DttConfig] = None) -> float:
        """Baseline-over-DTT cycle ratio for one workload/config."""
        baseline = self.timed(workload, "baseline", config_name)
        dtt = self.timed(workload, "dtt", config_name, dtt_config)
        return dtt.speedup_over(baseline)

    def suite(self):
        """The full workload suite, in canonical order."""
        return SUITE.values()
