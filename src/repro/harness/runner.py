"""Suite runner: executes (and memoizes) the runs experiments share.

E3, E4, E6 and E7 all need the same baseline/DTT timed runs; running the
whole suite once and caching results keeps the full harness fast.  Cache
keys include everything that affects a run (workload, build kind, machine
configuration, DTT configuration fingerprint, seed, scale), so distinct
experiments never alias.

The runner is also the observability anchor of a harness run: it counts
memoization hits/misses, accumulates wall-clock seconds per phase (one
phase per distinct run), optionally wraps every DTT engine in an
:class:`~repro.core.trace.EngineTrace` for timeline export, and feeds a
shared :class:`~repro.obs.metrics.MetricsRegistry` through to the timing
simulator — all of which :meth:`repro.obs.manifest.RunManifest.from_runner`
rolls into the per-run manifest.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.config import DttConfig
from repro.core.trace import EngineTrace
from repro.errors import CorrectnessError
from repro.profiling.report import RedundancyReport, profile_program
from repro.timing.params import SystemConfig, named_config
from repro.timing.stats import TimingResult
from repro.timing.system import TimingSimulator
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE


def _config_fingerprint(config: Optional[DttConfig]) -> Tuple:
    if config is None:
        return ()
    return (
        config.same_value_filter,
        config.granularity,
        config.queue_capacity,
        config.allow_cascading,
        config.per_address_dedupe_default,
    )


class SuiteRunner:
    """Runs workloads under timing/profiling with memoization."""

    def __init__(self, seed: Optional[int] = None, scale: Optional[int] = None,
                 metrics=None, trace: bool = False):
        self.seed = seed
        self.scale = scale
        #: optional MetricsRegistry shared by every run this runner makes
        self.metrics = metrics
        #: when True, every DTT engine is wrapped in an EngineTrace
        self.trace_enabled = trace
        self._timed: Dict[Tuple, TimingResult] = {}
        self._profiles: Dict[Tuple, RedundancyReport] = {}
        self._engines: Dict[Tuple, object] = {}
        self._traces: Dict[Tuple, EngineTrace] = {}
        self._phase_seconds: Dict[str, float] = {}
        self._hits = 0
        self._misses = 0

    # -- cache accounting --------------------------------------------------------

    def _record_hit(self) -> None:
        self._hits += 1
        if self.metrics is not None:
            self.metrics.counter(
                "runner.cache_hits", "memoized runs served from cache").inc()

    def _record_miss(self) -> None:
        self._misses += 1
        if self.metrics is not None:
            self.metrics.counter(
                "runner.cache_misses", "runs actually executed").inc()

    def _record_phase(self, phase: str, seconds: float) -> None:
        self._phase_seconds[phase] = self._phase_seconds.get(phase, 0.0) \
            + seconds
        if self.metrics is not None:
            self.metrics.histogram(
                "runner.run_seconds", "wall-clock seconds per executed run",
                buckets=(0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60, 300),
            ).observe(seconds)

    def cache_stats(self) -> Dict:
        """Hit/miss counts and the memoization keys currently cached."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "timed_entries": len(self._timed),
            "profile_entries": len(self._profiles),
            "keys": list(self._timed) + list(self._profiles),
        }

    def clear(self) -> None:
        """Drop every memoized run (counters and phase timings too)."""
        self._timed.clear()
        self._profiles.clear()
        self._engines.clear()
        self._traces.clear()
        self._phase_seconds.clear()
        self._hits = 0
        self._misses = 0

    def phase_seconds(self) -> Dict[str, float]:
        """Wall-clock seconds per phase (one phase per executed run)."""
        return dict(self._phase_seconds)

    def peak_queue_depth(self) -> int:
        """Deepest any cached engine's thread queue ever got."""
        depths = [engine.queue.depth_high_water
                  for engine in self._engines.values()]
        return max(depths, default=0)

    def traces(self) -> List[Tuple[str, EngineTrace]]:
        """(label, trace) for every traced run, in execution order."""
        return [
            (f"{key[0]}:{key[1]}:{key[2]}", trace)
            for key, trace in self._traces.items()
        ]

    # -- timed runs --------------------------------------------------------------

    def timed(
        self,
        workload: Workload,
        kind: str = "baseline",
        config_name: str = "smt2",
        dtt_config: Optional[DttConfig] = None,
        check_against_baseline: bool = True,
    ) -> TimingResult:
        """One timed run.  ``kind`` is 'baseline', 'dtt', or 'dtt-watch'."""
        key = (workload.name, kind, config_name,
               _config_fingerprint(dtt_config), self.seed, self.scale)
        if key in self._timed:
            self._record_hit()
            return self._timed[key]
        self._record_miss()
        inp = workload.make_input(self.seed, self.scale)
        system = named_config(config_name)
        if kind == "baseline":
            simulator = TimingSimulator(workload.build_baseline(inp), system,
                                        metrics=self.metrics)
            engine = None
        else:
            build = (workload.build_dtt_watch(inp) if kind == "dtt-watch"
                     else workload.build_dtt(inp))
            if build is None:
                raise CorrectnessError(
                    f"{workload.name} has no {kind} build"
                )
            engine = build.engine(config=dtt_config, deferred=True)
            if self.trace_enabled:
                self._traces[key] = EngineTrace(engine)
            simulator = TimingSimulator(build.program, system, engine=engine,
                                        metrics=self.metrics)
        started = time.perf_counter()
        result = simulator.run()
        self._record_phase(f"{workload.name}:{kind}:{config_name}",
                           time.perf_counter() - started)
        if kind != "baseline" and check_against_baseline:
            baseline = self.timed(workload, "baseline", config_name)
            if result.output != baseline.output:
                raise CorrectnessError(
                    f"{workload.name}: {kind} output diverges from baseline "
                    f"under {config_name}"
                )
        self._timed[key] = result
        if engine is not None:
            self._engines[key] = engine
        return result

    def engine_for(self, workload: Workload, kind: str = "dtt",
                   config_name: str = "smt2",
                   dtt_config: Optional[DttConfig] = None):
        """The engine of a previously-run (or now-run) DTT timed run."""
        key = (workload.name, kind, config_name,
               _config_fingerprint(dtt_config), self.seed, self.scale)
        if key not in self._engines:
            self.timed(workload, kind, config_name, dtt_config)
        return self._engines[key]

    # -- profiles ------------------------------------------------------------------

    def profile(self, workload: Workload) -> RedundancyReport:
        """Redundancy profile of the workload's baseline build."""
        key = (workload.name, self.seed, self.scale)
        if key in self._profiles:
            self._record_hit()
            return self._profiles[key]
        self._record_miss()
        inp = workload.make_input(self.seed, self.scale)
        started = time.perf_counter()
        report = profile_program(workload.build_baseline(inp), workload.name)
        self._record_phase(f"{workload.name}:profile",
                           time.perf_counter() - started)
        self._profiles[key] = report
        return report

    # -- sweeps ---------------------------------------------------------------------

    def speedup(self, workload: Workload, config_name: str = "smt2",
                dtt_config: Optional[DttConfig] = None) -> float:
        """Baseline-over-DTT cycle ratio for one workload/config."""
        baseline = self.timed(workload, "baseline", config_name)
        dtt = self.timed(workload, "dtt", config_name, dtt_config)
        return dtt.speedup_over(baseline)

    def suite(self):
        """The full workload suite, in canonical order."""
        return SUITE.values()
