"""Suite runner: executes (and memoizes) the runs experiments share.

E3, E4, E6 and E7 all need the same baseline/DTT timed runs; running the
whole suite once and caching results keeps the full harness fast.  Cache
keys include everything that affects a run (workload, build kind, machine
configuration, DTT configuration fingerprint, seed, scale), so distinct
experiments never alias.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.config import DttConfig
from repro.errors import CorrectnessError
from repro.profiling.report import RedundancyReport, profile_program
from repro.timing.params import SystemConfig, named_config
from repro.timing.stats import TimingResult
from repro.timing.system import TimingSimulator
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE


def _config_fingerprint(config: Optional[DttConfig]) -> Tuple:
    if config is None:
        return ()
    return (
        config.same_value_filter,
        config.granularity,
        config.queue_capacity,
        config.allow_cascading,
        config.per_address_dedupe_default,
    )


class SuiteRunner:
    """Runs workloads under timing/profiling with memoization."""

    def __init__(self, seed: Optional[int] = None, scale: Optional[int] = None):
        self.seed = seed
        self.scale = scale
        self._timed: Dict[Tuple, TimingResult] = {}
        self._profiles: Dict[Tuple, RedundancyReport] = {}
        self._engines: Dict[Tuple, object] = {}

    # -- timed runs --------------------------------------------------------------

    def timed(
        self,
        workload: Workload,
        kind: str = "baseline",
        config_name: str = "smt2",
        dtt_config: Optional[DttConfig] = None,
        check_against_baseline: bool = True,
    ) -> TimingResult:
        """One timed run.  ``kind`` is 'baseline', 'dtt', or 'dtt-watch'."""
        key = (workload.name, kind, config_name,
               _config_fingerprint(dtt_config), self.seed, self.scale)
        if key in self._timed:
            return self._timed[key]
        inp = workload.make_input(self.seed, self.scale)
        system = named_config(config_name)
        if kind == "baseline":
            simulator = TimingSimulator(workload.build_baseline(inp), system)
            engine = None
        else:
            build = (workload.build_dtt_watch(inp) if kind == "dtt-watch"
                     else workload.build_dtt(inp))
            if build is None:
                raise CorrectnessError(
                    f"{workload.name} has no {kind} build"
                )
            engine = build.engine(config=dtt_config, deferred=True)
            simulator = TimingSimulator(build.program, system, engine=engine)
        result = simulator.run()
        if kind != "baseline" and check_against_baseline:
            baseline = self.timed(workload, "baseline", config_name)
            if result.output != baseline.output:
                raise CorrectnessError(
                    f"{workload.name}: {kind} output diverges from baseline "
                    f"under {config_name}"
                )
        self._timed[key] = result
        if engine is not None:
            self._engines[key] = engine
        return result

    def engine_for(self, workload: Workload, kind: str = "dtt",
                   config_name: str = "smt2",
                   dtt_config: Optional[DttConfig] = None):
        """The engine of a previously-run (or now-run) DTT timed run."""
        key = (workload.name, kind, config_name,
               _config_fingerprint(dtt_config), self.seed, self.scale)
        if key not in self._engines:
            self.timed(workload, kind, config_name, dtt_config)
        return self._engines[key]

    # -- profiles ------------------------------------------------------------------

    def profile(self, workload: Workload) -> RedundancyReport:
        """Redundancy profile of the workload's baseline build."""
        key = (workload.name, self.seed, self.scale)
        if key in self._profiles:
            return self._profiles[key]
        inp = workload.make_input(self.seed, self.scale)
        report = profile_program(workload.build_baseline(inp), workload.name)
        self._profiles[key] = report
        return report

    # -- sweeps ---------------------------------------------------------------------

    def speedup(self, workload: Workload, config_name: str = "smt2",
                dtt_config: Optional[DttConfig] = None) -> float:
        """Baseline-over-DTT cycle ratio for one workload/config."""
        baseline = self.timed(workload, "baseline", config_name)
        dtt = self.timed(workload, "dtt", config_name, dtt_config)
        return dtt.speedup_over(baseline)

    def suite(self):
        """The full workload suite, in canonical order."""
        return SUITE.values()
