"""Replacement policies for set-associative caches.

A policy instance is attached to one cache and consulted per set.  The
cache identifies ways by index within the set; the policy tracks whatever
recency/insertion metadata it needs, keyed by set index.

All policies are deterministic given their construction arguments —
:class:`RandomPolicy` takes an explicit seed — so simulations are
reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List


class ReplacementPolicy:
    """Interface: notified on hits and fills, chooses victims."""

    def __init__(self, num_sets: int, associativity: int):
        self.num_sets = num_sets
        self.associativity = associativity

    def on_access(self, set_index: int, way: int) -> None:
        """A hit (or a fill) touched ``way`` of ``set_index``."""
        raise NotImplementedError

    def victim(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all metadata (cache flush)."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: per-set recency stacks."""

    def __init__(self, num_sets: int, associativity: int):
        super().__init__(num_sets, associativity)
        # most-recent last; lazily created per set
        self._stacks: Dict[int, List[int]] = {}

    def on_access(self, set_index: int, way: int) -> None:
        stack = self._stacks.setdefault(set_index, [])
        if way in stack:
            stack.remove(way)
        stack.append(way)

    def victim(self, set_index: int) -> int:
        stack = self._stacks.get(set_index)
        if not stack:
            return 0
        return stack[0]

    def reset(self) -> None:
        self._stacks.clear()


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: eviction order is fill order, hits don't matter."""

    def __init__(self, num_sets: int, associativity: int):
        super().__init__(num_sets, associativity)
        self._queues: Dict[int, List[int]] = {}

    def on_access(self, set_index: int, way: int) -> None:
        queue = self._queues.setdefault(set_index, [])
        if way not in queue:
            queue.append(way)

    def victim(self, set_index: int) -> int:
        queue = self._queues.get(set_index)
        if not queue:
            return 0
        way = queue.pop(0)
        queue.append(way)
        return way

    def reset(self) -> None:
        self._queues.clear()


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim from a seeded generator (reproducible)."""

    def __init__(self, num_sets: int, associativity: int, seed: int = 0):
        super().__init__(num_sets, associativity)
        self.seed = seed
        self._rng = random.Random(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass  # stateless

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.associativity)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, num_sets: int, associativity: int) -> ReplacementPolicy:
    """Construct a policy by name: 'lru', 'fifo', or 'random'."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, associativity)
