"""Cache-hierarchy substrate for the timing model.

Parameterized set-associative caches (:mod:`repro.cache.cache`) with
pluggable replacement policies (:mod:`repro.cache.policies`) compose into a
CMP hierarchy (:mod:`repro.cache.hierarchy`): one L1D per core, a shared
L2, and DRAM, with write-invalidate coherence between the private L1s.
Instruction fetch is modeled as ideal (the machine's program store is
PC-indexed); this affects the paper's baseline and DTT configurations
identically and is noted in DESIGN.md.
"""

from repro.cache.policies import FifoPolicy, LruPolicy, RandomPolicy, make_policy
from repro.cache.cache import Cache, CacheParams, CacheStats
from repro.cache.hierarchy import CacheHierarchy, HierarchyParams

__all__ = [
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "make_policy",
    "Cache",
    "CacheParams",
    "CacheStats",
    "CacheHierarchy",
    "HierarchyParams",
]
