"""One set-associative, write-back, write-allocate cache.

Addresses are word addresses (the machine's unit); a line holds
``line_words`` words.  The cache stores only tags and dirty bits — data
lives in the functional machine's memory — because the timing model needs
hit/miss outcomes and writeback counts, not contents.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.policies import ReplacementPolicy, make_policy


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class CacheParams:
    """Geometry and policy of one cache."""

    __slots__ = ("name", "num_lines", "associativity", "line_words", "policy")

    def __init__(
        self,
        name: str,
        num_lines: int,
        associativity: int,
        line_words: int = 16,
        policy: str = "lru",
    ):
        if not _is_power_of_two(line_words):
            raise ValueError(f"line_words must be a power of two, got {line_words}")
        if num_lines % associativity != 0:
            raise ValueError(
                f"num_lines ({num_lines}) must be a multiple of associativity "
                f"({associativity})"
            )
        num_sets = num_lines // associativity
        if not _is_power_of_two(num_sets):
            raise ValueError(f"number of sets must be a power of two, got {num_sets}")
        self.name = name
        self.num_lines = num_lines
        self.associativity = associativity
        self.line_words = line_words
        self.policy = policy

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @property
    def size_words(self) -> int:
        return self.num_lines * self.line_words

    def __repr__(self) -> str:
        return (
            f"CacheParams({self.name!r}, lines={self.num_lines}, "
            f"assoc={self.associativity}, line={self.line_words}w, "
            f"{self.policy})"
        )


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("hits", "misses", "evictions", "writebacks", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports and JSON export)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"miss_rate={self.miss_rate:.3f})"
        )


class Cache:
    """Tag store of one cache level."""

    def __init__(self, params: CacheParams,
                 policy: Optional[ReplacementPolicy] = None):
        self.params = params
        self._policy = policy or make_policy(
            params.policy, params.num_sets, params.associativity
        )
        self._set_mask = params.num_sets - 1
        # per set: list of tags (None = invalid way)
        self._tags: List[List[Optional[int]]] = [
            [None] * params.associativity for _ in range(params.num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * params.associativity for _ in range(params.num_sets)
        ]
        self.stats = CacheStats()

    # -- address math ----------------------------------------------------------

    def line_of(self, address: int) -> int:
        """Line number (address with the offset bits stripped)."""
        return address // self.params.line_words

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address // self.params.line_words
        return (line & self._set_mask, line >> self._set_mask.bit_length())

    # -- operations ----------------------------------------------------------------

    def access(self, address: int, is_write: bool) -> bool:
        """Look up ``address``; fill on miss.  Returns True on hit.

        A miss that evicts a dirty line counts a writeback; the caller
        (hierarchy) charges the latency of the next level.
        """
        set_index, tag = self._index_tag(address)
        tags = self._tags[set_index]
        for way, existing in enumerate(tags):
            if existing == tag:
                self.stats.hits += 1
                self._policy.on_access(set_index, way)
                if is_write:
                    self._dirty[set_index][way] = True
                return True
        self.stats.misses += 1
        self._fill(set_index, tag, is_write)
        return False

    def _fill(self, set_index: int, tag: int, is_write: bool) -> None:
        tags = self._tags[set_index]
        way = None
        for candidate, existing in enumerate(tags):
            if existing is None:
                way = candidate
                break
        if way is None:
            way = self._policy.victim(set_index)
            self.stats.evictions += 1
            if self._dirty[set_index][way]:
                self.stats.writebacks += 1
        tags[way] = tag
        self._dirty[set_index][way] = is_write
        self._policy.on_access(set_index, way)

    def contains(self, address: int) -> bool:
        """Tag-only probe (no stats, no state change)."""
        set_index, tag = self._index_tag(address)
        return tag in self._tags[set_index]

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address`` if present (coherence).

        Returns True if a line was invalidated.  A dirty invalidated line
        counts a writeback (the data must reach the shared level).
        """
        set_index, tag = self._index_tag(address)
        tags = self._tags[set_index]
        for way, existing in enumerate(tags):
            if existing == tag:
                if self._dirty[set_index][way]:
                    self.stats.writebacks += 1
                tags[way] = None
                self._dirty[set_index][way] = False
                self.stats.invalidations += 1
                return True
        return False

    def flush(self) -> None:
        """Invalidate everything and reset policy metadata (not stats)."""
        for set_index in range(self.params.num_sets):
            for way in range(self.params.associativity):
                self._tags[set_index][way] = None
                self._dirty[set_index][way] = False
        self._policy.reset()

    def resident_lines(self) -> int:
        """Number of valid lines currently held (for invariant tests)."""
        return sum(
            1
            for ways in self._tags
            for tag in ways
            if tag is not None
        )

    def __repr__(self) -> str:
        return f"Cache({self.params.name!r}, {self.stats!r})"
