"""CMP cache hierarchy: private L1Ds, shared L2, DRAM.

``access(core_id, address, is_write)`` returns the latency in cycles of
the access and updates all level stats.  Coherence between private L1s is
a simple write-invalidate protocol: a write that hits or fills in one
core's L1 invalidates the line from every other core's L1.  That is the
effect that matters for the paper's CMP configuration (E5b): support
threads running on another core pull shared lines away from the main
thread and start cold.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.cache import Cache, CacheParams


class HierarchyParams:
    """Geometry and latencies of the whole hierarchy.

    Defaults approximate the mid-2000s SMT/CMP machines of SMTSIM-era
    evaluations: 32 KiB 4-way L1, 2 MiB 8-way shared L2, ~200-cycle DRAM.
    Sizes are in lines of ``line_words`` words (a word being the DTIR
    memory unit); with 16-word lines the defaults give 512-line (8 K-word)
    L1s and 8192-line (128 K-word) L2 — scaled down ~4x from the real
    machines to match our scaled-down workload footprints, preserving the
    working-set-to-cache ratios that make misses happen.
    """

    __slots__ = (
        "line_words",
        "l1_lines",
        "l1_associativity",
        "l1_latency",
        "l2_lines",
        "l2_associativity",
        "l2_latency",
        "memory_latency",
        "policy",
    )

    def __init__(
        self,
        line_words: int = 16,
        l1_lines: int = 128,
        l1_associativity: int = 4,
        l1_latency: int = 2,
        l2_lines: int = 2048,
        l2_associativity: int = 8,
        l2_latency: int = 12,
        memory_latency: int = 200,
        policy: str = "lru",
    ):
        self.line_words = line_words
        self.l1_lines = l1_lines
        self.l1_associativity = l1_associativity
        self.l1_latency = l1_latency
        self.l2_lines = l2_lines
        self.l2_associativity = l2_associativity
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency
        self.policy = policy

    def __repr__(self) -> str:
        return (
            f"HierarchyParams(L1 {self.l1_lines}x{self.l1_associativity} "
            f"@{self.l1_latency}cy, L2 {self.l2_lines}x{self.l2_associativity} "
            f"@{self.l2_latency}cy, mem @{self.memory_latency}cy)"
        )


class CacheHierarchy:
    """Private per-core L1s over a shared L2 over DRAM."""

    def __init__(self, num_cores: int, params: HierarchyParams = None):
        if num_cores < 1:
            raise ValueError("hierarchy needs at least one core")
        self.params = params or HierarchyParams()
        p = self.params
        self.l1: List[Cache] = [
            Cache(
                CacheParams(
                    f"L1.core{core}",
                    p.l1_lines,
                    p.l1_associativity,
                    p.line_words,
                    p.policy,
                )
            )
            for core in range(num_cores)
        ]
        self.l2 = Cache(
            CacheParams("L2", p.l2_lines, p.l2_associativity, p.line_words, p.policy)
        )
        self.num_cores = num_cores
        self.dram_accesses = 0
        self.coherence_invalidations = 0
        #: optional per-core L1 instruction caches (see enable_icache)
        self.l1i: List[Cache] = []

    #: instruction addresses are mapped into a region disjoint from data
    #: (data layout starts near 0 and stays tiny) so code and data can
    #: share the L2 without aliasing
    ICODE_BASE = 1 << 28

    def enable_icache(self, lines: int = 64, associativity: int = 2) -> None:
        """Create per-core L1 instruction caches (off by default).

        Instruction fetch is normally modeled as ideal — the paper-shape
        results do not depend on it and it affects baseline and DTT builds
        alike — but the knob exists for sensitivity studies.
        """
        p = self.params
        self.l1i = [
            Cache(
                CacheParams(
                    f"L1I.core{core}", lines, associativity,
                    p.line_words, p.policy,
                )
            )
            for core in range(self.num_cores)
        ]

    def fetch(self, core_id: int, pc: int) -> int:
        """Instruction fetch through the I-cache; returns latency.

        Requires :meth:`enable_icache`.  Code misses refill through the
        shared L2 (which then holds code lines alongside data lines).
        """
        p = self.params
        address = self.ICODE_BASE + pc
        latency = p.l1_latency
        if not self.l1i[core_id].access(address, False):
            latency += p.l2_latency
            if not self.l2.access(address, False):
                latency += p.memory_latency
                self.dram_accesses += 1
        return latency

    def access(self, core_id: int, address: int, is_write: bool) -> int:
        """Perform one data access; returns its latency in cycles."""
        p = self.params
        l1 = self.l1[core_id]
        latency = p.l1_latency
        if not l1.access(address, is_write):
            latency += p.l2_latency
            if not self.l2.access(address, is_write):
                latency += p.memory_latency
                self.dram_accesses += 1
        if is_write and self.num_cores > 1:
            for other_core, other_l1 in enumerate(self.l1):
                if other_core != core_id and other_l1.invalidate(address):
                    self.coherence_invalidations += 1
        return latency

    # -- reporting ---------------------------------------------------------------

    def level_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-cache stat dictionaries, keyed by cache name."""
        stats = {cache.params.name: cache.stats.as_dict() for cache in self.l1}
        for cache in self.l1i:
            stats[cache.params.name] = cache.stats.as_dict()
        stats["L2"] = self.l2.stats.as_dict()
        stats["DRAM"] = {"accesses": self.dram_accesses}
        return stats

    def total_l1_accesses(self) -> int:
        """Data accesses summed across every core's L1D."""
        return sum(cache.stats.accesses for cache in self.l1)

    def total_l1_misses(self) -> int:
        """Data misses summed across every core's L1D."""
        return sum(cache.stats.misses for cache in self.l1)

    def flush(self) -> None:
        """Flush every level (stats preserved)."""
        for cache in self.l1:
            cache.flush()
        for cache in self.l1i:
            cache.flush()
        self.l2.flush()

    def __repr__(self) -> str:
        return (
            f"CacheHierarchy({self.num_cores} cores, "
            f"L1 misses={self.total_l1_misses()}, "
            f"L2 misses={self.l2.stats.misses}, DRAM={self.dram_accesses})"
        )
