"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to trap anything the simulator, runtime, or
harness raises deliberately.  Sub-hierarchies mirror the package layout:
ISA construction problems, machine execution faults, DTT runtime misuse,
and harness configuration mistakes are each distinguishable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# --------------------------------------------------------------------------
# ISA layer
# --------------------------------------------------------------------------


class IsaError(ReproError):
    """Base class for errors in program construction or encoding."""


class InvalidInstructionError(IsaError):
    """An instruction was constructed with malformed operands."""


class InvalidRegisterError(IsaError):
    """A register name or index is outside the architected register file."""


class ProgramValidationError(IsaError):
    """A program failed whole-program validation (labels, entry, ranges)."""


class AssemblerError(IsaError):
    """Textual assembly could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class BuilderError(IsaError):
    """Misuse of the structured program builder (unclosed loop, etc.)."""


# --------------------------------------------------------------------------
# Machine layer
# --------------------------------------------------------------------------


class MachineError(ReproError):
    """Base class for functional-execution faults."""


class MemoryFault(MachineError):
    """An access touched an unmapped or out-of-range address."""

    def __init__(self, address: int, message: str = ""):
        detail = message or "memory fault"
        super().__init__(f"{detail} at address {address:#x}")
        self.address = address


class AlignmentFault(MachineError):
    """A word access was not word-aligned."""


class ExecutionFault(MachineError):
    """The machine decoded an instruction it cannot execute."""


class ExecutionLimitExceeded(MachineError):
    """The dynamic-instruction safety limit was reached.

    This nearly always indicates a workload bug (an unbounded loop), so
    it is an error rather than a silent truncation.
    """


class ContextError(MachineError):
    """A hardware context was used in an invalid state."""


# --------------------------------------------------------------------------
# DTT layer
# --------------------------------------------------------------------------


class DttError(ReproError):
    """Base class for data-triggered-thread configuration/runtime errors."""


class RegistryError(DttError):
    """Invalid thread-registry configuration (duplicate trigger, bad PC)."""


class ThreadQueueError(DttError):
    """Thread-queue misuse (e.g. popping from an empty queue)."""


class RuntimeApiError(DttError):
    """Misuse of the software DTT runtime's public API."""


class CascadeError(DttError):
    """A support thread attempted a triggering store while cascading
    triggers are disabled and strict mode is on."""


# --------------------------------------------------------------------------
# Observability layer
# --------------------------------------------------------------------------


class ObservabilityError(ReproError):
    """Base class for metrics/trace-export misuse."""


class MetricsError(ObservabilityError):
    """Invalid metric registration or update (type conflict, negative
    counter increment, malformed histogram buckets)."""


class CTraceError(ObservabilityError):
    """Malformed or truncated compressed event-trace file, or misuse of
    the streaming writer (appending outside a stream, writing after
    close)."""


class HistoryError(ObservabilityError):
    """Unusable performance-history store or record (path is neither a
    directory nor a ``.jsonl`` file, payload has no numeric rows, or a
    trend query over an empty/foreign store)."""


# --------------------------------------------------------------------------
# Execution layer (parallel scheduler + result store)
# --------------------------------------------------------------------------


class ExecError(ReproError):
    """Base class for parallel-execution subsystem errors (bad run plan,
    worker-pool failure, task timeout)."""


class StoreError(ExecError):
    """A persistent result-store entry could not be read, decoded, or
    written (corruption, schema mismatch, unserializable payload)."""


class CompareError(ExecError):
    """Two result sets could not be compared (unreadable input, mixed
    kinds, unrecognized format)."""


# --------------------------------------------------------------------------
# Automatic conversion pipeline
# --------------------------------------------------------------------------


class AutoConvertError(ReproError):
    """Base class for automatic DTT conversion errors (candidate
    discovery, synthesis, acceptance gate)."""


class SynthesisError(AutoConvertError):
    """A candidate set could not be rewritten into a DTT program
    (overlapping regions, non-relocatable code, unconvertible store)."""


# --------------------------------------------------------------------------
# Harness layer
# --------------------------------------------------------------------------


class HarnessError(ReproError):
    """Base class for experiment-harness errors."""


class UnknownExperimentError(HarnessError):
    """An experiment id was requested that the harness does not define."""


class UnknownWorkloadError(HarnessError):
    """A workload name was requested that the suite does not define."""


class CorrectnessError(HarnessError):
    """A DTT build produced output differing from its baseline build."""
