"""The thread status table: per-thread lifecycle counters.

The paper's thread status table lets the main thread's consume point
decide, in one lookup, whether the derived data is *clean* (no trigger
since the last consume — skip everything), or whether a support thread is
pending/executing (wait for it).  Ours additionally accumulates the
statistics the evaluation reports: how many triggering stores fired, how
many were suppressed by the same-value filter or duplicate suppression,
how many support-thread executions ran, were canceled, or were consumed
clean.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DttError


class ThreadStatus:
    """Counters for one support thread."""

    __slots__ = (
        "name",
        "triggering_stores",
        "same_value_suppressed",
        "triggers_fired",
        "duplicates_suppressed",
        "executions_started",
        "executions_completed",
        "cancels",
        "overflow_inline_runs",
        "consumes",
        "clean_consumes",
        "wait_consumes",
        "executing",
    )

    def __init__(self, name: str):
        self.name = name
        #: dynamic triggering stores that matched this thread's spec
        self.triggering_stores = 0
        #: of those, stores filtered because the value did not change
        self.same_value_suppressed = 0
        #: triggers that fired (survived the same-value filter)
        self.triggers_fired = 0
        #: fired triggers suppressed because a same-key entry was pending
        self.duplicates_suppressed = 0
        self.executions_started = 0
        self.executions_completed = 0
        #: executions aborted by a re-trigger (cancel-and-restart)
        self.cancels = 0
        #: triggers run immediately as a function call on queue overflow
        self.overflow_inline_runs = 0
        #: tcheck consume points executed
        self.consumes = 0
        #: consumes that found the data clean — entire computation skipped
        self.clean_consumes = 0
        #: consumes that had to wait for (or run) pending executions
        self.wait_consumes = 0
        #: number of instances currently executing on some context
        self.executing = 0

    @property
    def skip_fraction(self) -> float:
        """Fraction of consume points that skipped the computation."""
        return self.clean_consumes / self.consumes if self.consumes else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports and diffing in tests)."""
        return {slot: getattr(self, slot) for slot in self.__slots__ if slot != "name"}

    def __repr__(self) -> str:
        return (
            f"ThreadStatus({self.name!r}, fired={self.triggers_fired}, "
            f"completed={self.executions_completed}, "
            f"clean={self.clean_consumes}/{self.consumes})"
        )


class ThreadStatusTable:
    """Status rows for every registered support thread."""

    def __init__(self, thread_names: List[str]):
        self._rows: Dict[str, ThreadStatus] = {
            name: ThreadStatus(name) for name in thread_names
        }

    def __getitem__(self, name: str) -> ThreadStatus:
        try:
            return self._rows[name]
        except KeyError:
            raise DttError(f"unknown support thread {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._rows

    def __iter__(self):
        return iter(self._rows.values())

    def rows(self) -> Dict[str, ThreadStatus]:
        """All status rows, keyed by thread name."""
        return dict(self._rows)

    # -- aggregates ------------------------------------------------------------

    def total(self, field: str) -> int:
        """Sum of one counter across all threads."""
        return sum(getattr(row, field) for row in self._rows.values())

    def summary(self) -> Dict[str, int]:
        """Suite-level totals across all threads."""
        fields = (
            "triggering_stores",
            "same_value_suppressed",
            "triggers_fired",
            "duplicates_suppressed",
            "executions_started",
            "executions_completed",
            "cancels",
            "overflow_inline_runs",
            "consumes",
            "clean_consumes",
            "wait_consumes",
        )
        return {field: self.total(field) for field in fields}

    def __repr__(self) -> str:
        return f"ThreadStatusTable({list(self._rows)})"
