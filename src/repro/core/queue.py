"""The thread queue: pending support-thread activations.

A bounded FIFO with duplicate suppression, modeling the paper's hardware
thread queue.  Entries are keyed — by (thread, address) or by thread alone
(see :class:`~repro.core.config.DttConfig`) — and a trigger whose key is
already pending is *suppressed*: the pending execution will observe the
newest memory state anyway, so one activation suffices.  That suppression
is the second half of the redundancy elimination (the same-value filter
being the first).
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum
from typing import Hashable, Optional, Tuple, Union

from repro.errors import ThreadQueueError

Number = Union[int, float]


class EnqueueResult(str, Enum):
    """Outcome of a try_enqueue: accepted, deduplicated, or overflowed."""

    ENQUEUED = "enqueued"
    DUPLICATE = "duplicate"
    OVERFLOW = "overflow"


class QueueEntry:
    """One pending activation: the thread plus its trigger arguments."""

    __slots__ = ("thread", "address", "new_value", "old_value", "sequence",
                 "enqueue_cycle", "activation_id")

    def __init__(
        self,
        thread: str,
        address: int,
        new_value: Number,
        old_value: Number,
        sequence: int = 0,
        activation_id: int = 0,
    ):
        self.thread = thread
        self.address = address
        self.new_value = new_value
        self.old_value = old_value
        #: global trigger sequence number (diagnostics / determinism checks)
        self.sequence = sequence
        #: simulated cycle at enqueue time (0 outside timed, metered runs);
        #: dispatch latency = dispatch cycle - this
        self.enqueue_cycle = 0
        #: the engine-minted activation id carried through the queue into
        #: dispatch, completion, and cancellation (0 = never assigned)
        self.activation_id = activation_id

    def __repr__(self) -> str:
        return (
            f"QueueEntry({self.thread!r}, addr={self.address}, "
            f"new={self.new_value!r}, old={self.old_value!r}, "
            f"seq={self.sequence})"
        )


class ThreadQueue:
    """Bounded FIFO of :class:`QueueEntry` with key-based dedupe."""

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ThreadQueueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, QueueEntry]" = OrderedDict()
        # cumulative stats
        self.enqueued = 0
        self.duplicates_suppressed = 0
        self.overflows = 0
        #: deepest the queue ever got (peak pending entries)
        self.depth_high_water = 0

    def try_enqueue(self, key: Hashable, entry: QueueEntry) -> EnqueueResult:
        """Enqueue unless a same-key entry is pending or the queue is full."""
        if key in self._entries:
            self.duplicates_suppressed += 1
            return EnqueueResult.DUPLICATE
        if len(self._entries) >= self.capacity:
            self.overflows += 1
            return EnqueueResult.OVERFLOW
        self._entries[key] = entry
        self.enqueued += 1
        if len(self._entries) > self.depth_high_water:
            self.depth_high_water = len(self._entries)
        return EnqueueResult.ENQUEUED

    def pop(self) -> Tuple[Hashable, QueueEntry]:
        """Remove and return the oldest (key, entry)."""
        if not self._entries:
            raise ThreadQueueError("pop from an empty thread queue")
        return self._entries.popitem(last=False)

    def pop_for_thread(self, thread: str) -> Optional[Tuple[Hashable, QueueEntry]]:
        """Remove and return the oldest entry belonging to ``thread``."""
        for key, entry in self._entries.items():
            if entry.thread == thread:
                del self._entries[key]
                return (key, entry)
        return None

    def entry_for(self, key: Hashable) -> Optional[QueueEntry]:
        """The pending entry under ``key``, or None (does not remove it)."""
        return self._entries.get(key)

    def has_pending(self, thread: str) -> bool:
        """True if any entry for ``thread`` is pending."""
        return any(entry.thread == thread for entry in self._entries.values())

    def pending_count(self, thread: Optional[str] = None) -> int:
        """Pending entries, totalled or for one thread."""
        if thread is None:
            return len(self._entries)
        return sum(1 for e in self._entries.values() if e.thread == thread)

    def peek_keys(self) -> Tuple[Hashable, ...]:
        """Keys currently pending, oldest first (for tests/diagnostics)."""
        return tuple(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:
        return (
            f"ThreadQueue({len(self._entries)}/{self.capacity} pending, "
            f"{self.enqueued} enqueued, {self.duplicates_suppressed} dups, "
            f"{self.overflows} overflows)"
        )
