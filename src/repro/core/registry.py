"""Thread registry: which stores trigger which support threads.

The paper's registry is a hardware table, filled by the compiler/loader,
mapping triggering-store *static PCs* to support-thread PCs.  We support
that (``store_pcs``) and also the conceptual "attached to a memory
location" form (``watch`` address ranges), which is what the granularity
ablation (E8b) needs — PC-matched triggers have no notion of false
neighbors, address-watched ones do.

A single store may match several specs (it then fires several threads);
one spec may be fed by many static stores.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import RegistryError


def widen_ranges(ranges: Iterable[Tuple[int, int]],
                 granularity: int) -> List[Tuple[int, int]]:
    """Watch ranges widened to ``granularity``-word alignment.

    This is the *one* definition of the engine's trigger-detection
    granularity semantics: ``lo`` rounds down and ``hi`` rounds up to the
    next granularity multiple, modeling hardware that tracks whole cache
    lines (stores to neighboring words inside the granule then match
    too).  :meth:`ThreadRegistry.matches`,
    :meth:`ThreadRegistry.build_prefilter`, and the static safety checks
    in :mod:`repro.analysis.checks` all call this helper, so an analysis
    verdict can never drift from what the engine actually matches —
    including for tstores inserted by the automatic converter, whose
    specs never pass through the hand-registration path.
    """
    widened = []
    for lo, hi in ranges:
        if granularity > 1:
            lo -= lo % granularity
            hi += (-hi) % granularity
        widened.append((lo, hi))
    return widened


class TriggerSpec:
    """Attachment of one support thread to its triggering stores.

    Parameters
    ----------
    thread:
        Name of the support thread (must be declared in the program, or
        registered with the software runtime).
    store_pcs:
        Static PCs of triggering stores that fire this thread.  The normal
        (paper) mechanism.
    watch:
        Address ranges ``(lo, hi)`` (half-open, word addresses): any
        triggering store whose address falls inside fires this thread.
        Subject to the engine's match ``granularity``.
    per_address_dedupe:
        Override of the engine default: if True, duplicate suppression is
        keyed by (thread, address); if False, by thread alone.  ``None``
        uses the engine config's default.
    """

    __slots__ = ("thread", "store_pcs", "watch", "per_address_dedupe")

    def __init__(
        self,
        thread: str,
        store_pcs: Optional[Iterable[int]] = None,
        watch: Optional[Sequence[Tuple[int, int]]] = None,
        per_address_dedupe: Optional[bool] = None,
    ):
        self.thread = thread
        self.store_pcs = frozenset(store_pcs or ())
        self.watch: Tuple[Tuple[int, int], ...] = tuple(
            (int(lo), int(hi)) for lo, hi in (watch or ())
        )
        self.per_address_dedupe = per_address_dedupe
        if not self.store_pcs and not self.watch:
            raise RegistryError(
                f"trigger spec for thread {thread!r} watches nothing "
                "(no store_pcs, no address ranges)"
            )
        for lo, hi in self.watch:
            if lo < 0 or hi <= lo:
                raise RegistryError(
                    f"thread {thread!r}: bad watch range ({lo}, {hi})"
                )

    def __repr__(self) -> str:
        parts = [repr(self.thread)]
        if self.store_pcs:
            parts.append(f"store_pcs={sorted(self.store_pcs)}")
        if self.watch:
            parts.append(f"watch={list(self.watch)}")
        return f"TriggerSpec({', '.join(parts)})"


class TriggerPrefilter:
    """Frozen may-this-store-trigger index over one registry state.

    Built by :meth:`ThreadRegistry.build_prefilter` for one granularity;
    consulted by the engine before walking specs.  ``store_pcs`` mirrors
    the registry's PC table exactly and ``ranges`` is the union of every
    watch range pre-widened to the granularity (and coalesced), so a
    negative answer is *proof* that :meth:`ThreadRegistry.matches` would
    return nothing — no false negatives, no false positives.

    ``version``/``granularity`` let the holder detect staleness with two
    int compares; the engine rebuilds whenever either moved.
    """

    __slots__ = ("version", "granularity", "store_pcs", "ranges")

    def __init__(self, version: int, granularity: int,
                 store_pcs: frozenset, ranges: Tuple[Tuple[int, int], ...]):
        self.version = version
        self.granularity = granularity
        self.store_pcs = store_pcs
        self.ranges = ranges

    def may_match(self, pc: int, address: int) -> bool:
        """Could a triggering store at (pc, address) match any spec?"""
        if pc in self.store_pcs:
            return True
        for lo, hi in self.ranges:
            if lo <= address < hi:
                return True
        return False

    def __repr__(self) -> str:
        return (f"TriggerPrefilter(v{self.version}, g{self.granularity}, "
                f"{len(self.store_pcs)} pcs, {len(self.ranges)} ranges)")


class ThreadRegistry:
    """The set of trigger specs, with fast store-PC lookup."""

    def __init__(self, specs: Iterable[TriggerSpec] = ()):
        self._specs: List[TriggerSpec] = []
        self._by_pc: Dict[int, List[TriggerSpec]] = {}
        self._watched: List[Tuple[int, int, TriggerSpec]] = []
        #: bumped on every mutation; lets prefilter holders detect staleness
        self.version = 0
        for spec in specs:
            self.register(spec)

    def register(self, spec: TriggerSpec) -> None:
        """Add a spec; a thread may appear in at most one spec."""
        if any(s.thread == spec.thread for s in self._specs):
            raise RegistryError(f"thread {spec.thread!r} registered twice")
        self._specs.append(spec)
        for pc in spec.store_pcs:
            self._by_pc.setdefault(pc, []).append(spec)
        for lo, hi in spec.watch:
            self._watched.append((lo, hi, spec))
        self.version += 1

    def build_prefilter(self, granularity: int = 1) -> TriggerPrefilter:
        """Freeze the current specs into a :class:`TriggerPrefilter`.

        Watch ranges are widened exactly as :meth:`matches` widens them
        for ``granularity``, then sorted and coalesced, so membership in
        the prefilter is equivalent to "matches() would be non-empty".
        """
        widened = widen_ranges(
            [(lo, hi) for lo, hi, _spec in self._watched], granularity)
        widened.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in widened:
            if merged and lo <= merged[-1][1]:
                if hi > merged[-1][1]:
                    merged[-1] = (merged[-1][0], hi)
            else:
                merged.append((lo, hi))
        return TriggerPrefilter(
            self.version, granularity, frozenset(self._by_pc), tuple(merged)
        )

    @property
    def specs(self) -> Tuple[TriggerSpec, ...]:
        return tuple(self._specs)

    @property
    def thread_names(self) -> List[str]:
        return [spec.thread for spec in self._specs]

    def matches(self, pc: int, address: int, granularity: int = 1) -> List[TriggerSpec]:
        """All specs fired by a triggering store at ``pc`` to ``address``.

        PC matches are exact.  Address matches widen each watch range to
        ``granularity``-word alignment, modeling trigger-detection hardware
        that tracks whole cache lines: stores to *neighboring* words inside
        the same granule then fire the thread too (false triggers).
        """
        matched = list(self._by_pc.get(pc, ()))
        if self._watched:
            widened = widen_ranges(
                [(lo, hi) for lo, hi, _spec in self._watched], granularity)
            for (lo, hi), (_lo, _hi, spec) in zip(widened, self._watched):
                if lo <= address < hi and spec not in matched:
                    matched.append(spec)
        return matched

    def spec_for(self, thread: str) -> TriggerSpec:
        """The spec registered for ``thread`` (error if absent)."""
        for spec in self._specs:
            if spec.thread == thread:
                return spec
        raise RegistryError(f"no trigger spec for thread {thread!r}")

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:
        return f"ThreadRegistry({self.thread_names})"
