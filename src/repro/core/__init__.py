"""Data-triggered threads — the paper's primary contribution.

This package implements the DTT execution model of Tseng & Tullsen (HPCA
2011) twice, sharing one semantics:

* **Hardware model** (:class:`~repro.core.engine.DttEngine` plus the
  :class:`~repro.core.registry.ThreadRegistry`,
  :class:`~repro.core.queue.ThreadQueue`, and
  :class:`~repro.core.status.ThreadStatusTable`): attaches to a simulated
  :class:`~repro.machine.machine.Machine` and gives the ``tst``/``tcheck``/
  ``treturn`` instructions their meaning.  Used by the evaluation.

* **Software runtime** (:class:`~repro.core.runtime.DttRuntime`): the same
  model for plain Python programs — tracked arrays whose mutations play
  the role of triggering stores, decorated functions as support threads.
  Used by the examples and by anyone adopting the library.

The model in three sentences: a *triggering store* that actually changes
the value at a watched location enqueues its attached *support thread*,
which recomputes some derived data on a spare context.  A store that
writes back the same value triggers nothing.  At the *consume point*
(``tcheck``) the main thread waits for in-flight support threads — and if
the inputs never changed, there is nothing to wait for and the entire
computation is skipped.
"""

from repro.core.config import DttConfig
from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.core.queue import EnqueueResult, QueueEntry, ThreadQueue
from repro.core.status import ThreadStatus, ThreadStatusTable
from repro.core.engine import DttEngine
from repro.core.runtime import DttRuntime, TrackedArray, TriggerEvent
from repro.core.trace import EngineEvent, EngineTrace

__all__ = [
    "DttConfig",
    "ThreadRegistry",
    "TriggerSpec",
    "EnqueueResult",
    "QueueEntry",
    "ThreadQueue",
    "ThreadStatus",
    "ThreadStatusTable",
    "DttEngine",
    "DttRuntime",
    "TrackedArray",
    "TriggerEvent",
    "EngineEvent",
    "EngineTrace",
]
