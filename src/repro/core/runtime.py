"""Software data-triggered threads for plain Python code.

This is the user-facing face of the library: the same execution model the
hardware engine gives DTIR programs, packaged for ordinary Python — in the
spirit of the authors' follow-on software-DTT work, where the compiler
lowers triggering stores to instrumented writes and support threads to
functions.

Usage::

    rt = DttRuntime()
    costs = rt.array("costs", initial_costs)

    @rt.support_thread(triggers=[costs])
    def refresh(event):
        # recompute whatever depends on costs[event.index]
        totals[event.index // 10] = sum(costs[event.index // 10 * 10:
                                              event.index // 10 * 10 + 10])

    costs[3] = 7        # triggering store: fires only if the value changed
    costs[3] = 7        # same value — suppressed, nothing pending
    rt.tcheck(refresh)  # runs pending activations; skips when clean

Semantics mirrored from the hardware engine: the same-value filter,
per-(thread, index) duplicate suppression, bounded pending queue with
run-immediately overflow, no cascading by default (writes made *inside* a
support thread do not trigger), and skip accounting at the consume point.
Execution is synchronous at ``tcheck`` — the software runtime provides the
redundancy-elimination benefit, not the concurrency benefit, exactly as
the paper's serialized configuration does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Union

from repro.core.status import ThreadStatus
from repro.errors import RuntimeApiError

Number = Union[int, float]


class TriggerEvent:
    """Argument passed to a support thread: what changed, where."""

    __slots__ = ("array", "index", "old_value", "new_value")

    def __init__(self, array: "TrackedArray", index: int, old_value, new_value):
        self.array = array
        self.index = index
        self.old_value = old_value
        self.new_value = new_value

    def __repr__(self) -> str:
        return (
            f"TriggerEvent({self.array.name!r}[{self.index}]: "
            f"{self.old_value!r} -> {self.new_value!r})"
        )


class TrackedArray:
    """A list-like array whose item assignments are triggering stores."""

    def __init__(self, runtime: "DttRuntime", name: str, values: Sequence):
        self._runtime = runtime
        self.name = name
        self._values: List = list(values)

    # -- reads are ordinary -------------------------------------------------------

    def __getitem__(self, index):
        return self._values[index]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def tolist(self) -> List:
        """A plain-list copy of the current contents."""
        return list(self._values)

    # -- writes are triggering stores ------------------------------------------------

    def __setitem__(self, index: int, value) -> None:
        if isinstance(index, slice):
            raise RuntimeApiError(
                "slice assignment to a TrackedArray is ambiguous; "
                "assign elements individually"
            )
        old_value = self._values[index]
        self._values[index] = value
        self._runtime._on_store(self, self._normalize(index), old_value, value)

    def write_untracked(self, index: int, value) -> None:
        """Plain (non-triggering) store — the analog of ``st`` vs ``tst``."""
        self._values[index] = value

    def _normalize(self, index: int) -> int:
        return index if index >= 0 else len(self._values) + index

    def __repr__(self) -> str:
        return f"TrackedArray({self.name!r}, len={len(self._values)})"


class SupportThread:
    """A registered support thread: the function plus its statistics."""

    def __init__(self, runtime: "DttRuntime", name: str,
                 fn: Callable[[TriggerEvent], None], per_index_dedupe: bool):
        self._runtime = runtime
        self.name = name
        self.fn = fn
        self.per_index_dedupe = per_index_dedupe
        self.stats = ThreadStatus(name)

    def __call__(self, event: TriggerEvent) -> None:
        """Direct invocation (rarely needed; tcheck is the normal path)."""
        self.fn(event)

    def __repr__(self) -> str:
        return f"SupportThread({self.name!r}, {self.stats!r})"


class DttRuntime:
    """Software DTT runtime: tracked arrays + support threads + tcheck."""

    def __init__(
        self,
        same_value_filter: bool = True,
        queue_capacity: int = 1024,
        allow_cascading: bool = False,
    ):
        if queue_capacity < 1:
            raise RuntimeApiError("queue_capacity must be >= 1")
        self.same_value_filter = same_value_filter
        self.queue_capacity = queue_capacity
        self.allow_cascading = allow_cascading
        self._arrays: Dict[str, TrackedArray] = {}
        self._threads: Dict[str, SupportThread] = {}
        # triggers: array name -> list of support threads watching it
        self._watchers: Dict[str, List[SupportThread]] = {}
        # pending activations: key -> (thread, event), FIFO
        self._pending: "OrderedDict[Hashable, tuple]" = OrderedDict()
        self._support_depth = 0
        self._untracked_depth = 0

    # -- construction -----------------------------------------------------------------

    def array(self, name: str, values: Sequence) -> TrackedArray:
        """Create (and register) a tracked array."""
        if name in self._arrays:
            raise RuntimeApiError(f"array {name!r} already exists")
        tracked = TrackedArray(self, name, values)
        self._arrays[name] = tracked
        return tracked

    def support_thread(
        self,
        triggers: Iterable[TrackedArray],
        name: Optional[str] = None,
        per_index_dedupe: bool = True,
    ) -> Callable[[Callable[[TriggerEvent], None]], SupportThread]:
        """Decorator registering a function as a support thread.

        ``triggers`` lists the tracked arrays whose (value-changing) writes
        activate the thread.  ``per_index_dedupe=False`` collapses all
        pending activations into one, for threads that recompute everything
        regardless of which element changed.
        """
        trigger_list = list(triggers)
        if not trigger_list:
            raise RuntimeApiError("support_thread needs at least one trigger")
        for trigger in trigger_list:
            if not isinstance(trigger, TrackedArray):
                raise RuntimeApiError(
                    f"triggers must be TrackedArray instances, got {trigger!r}"
                )
            if trigger.name not in self._arrays:
                raise RuntimeApiError(
                    f"array {trigger.name!r} belongs to a different runtime"
                )

        def decorator(fn: Callable[[TriggerEvent], None]) -> SupportThread:
            thread_name = name or fn.__name__
            if thread_name in self._threads:
                raise RuntimeApiError(f"thread {thread_name!r} already registered")
            thread = SupportThread(self, thread_name, fn, per_index_dedupe)
            self._threads[thread_name] = thread
            for trigger in trigger_list:
                self._watchers.setdefault(trigger.name, []).append(thread)
            return thread

        return decorator

    # -- the triggering-store path ---------------------------------------------------------

    def _on_store(self, array: TrackedArray, index: int, old_value, new_value):
        if self._untracked_depth:
            return
        if self._support_depth and not self.allow_cascading:
            return
        watchers = self._watchers.get(array.name)
        if not watchers:
            return
        for thread in watchers:
            stats = thread.stats
            stats.triggering_stores += 1
            if self.same_value_filter and old_value == new_value:
                stats.same_value_suppressed += 1
                continue
            stats.triggers_fired += 1
            if thread.per_index_dedupe:
                key = (thread.name, array.name, index)
            else:
                key = thread.name
            if key in self._pending:
                stats.duplicates_suppressed += 1
                continue
            event = TriggerEvent(array, index, old_value, new_value)
            if len(self._pending) >= self.queue_capacity:
                # overflow: run immediately as a plain call
                stats.overflow_inline_runs += 1
                self._execute(thread, event)
            else:
                self._pending[key] = (thread, event)

    # -- the consume point --------------------------------------------------------------------

    def tcheck(self, thread: SupportThread) -> int:
        """Consume point: run the thread's pending activations.

        Returns the number of activations executed; 0 means the data was
        clean and the computation was skipped entirely.
        """
        if thread.name not in self._threads:
            raise RuntimeApiError(f"thread {thread.name!r} is not registered here")
        stats = thread.stats
        stats.consumes += 1
        executed = 0
        while True:
            found_key = None
            for key, (pending_thread, _event) in self._pending.items():
                if pending_thread is thread:
                    found_key = key
                    break
            if found_key is None:
                break
            _thread, event = self._pending.pop(found_key)
            self._execute(thread, event)
            executed += 1
        if executed:
            stats.wait_consumes += 1
        else:
            stats.clean_consumes += 1
        return executed

    def drain(self) -> int:
        """Run everything pending, regardless of thread.  Returns count."""
        executed = 0
        while self._pending:
            _key, (thread, event) = self._pending.popitem(last=False)
            self._execute(thread, event)
            executed += 1
        return executed

    def _execute(self, thread: SupportThread, event: TriggerEvent) -> None:
        stats = thread.stats
        stats.executions_started += 1
        stats.executing += 1
        self._support_depth += 1
        try:
            thread.fn(event)
        finally:
            self._support_depth -= 1
            stats.executing -= 1
            stats.executions_completed += 1

    # -- helpers -----------------------------------------------------------------------------------

    class _Untracked:
        def __init__(self, runtime):
            self._runtime = runtime

        def __enter__(self):
            self._runtime._untracked_depth += 1
            return self._runtime

        def __exit__(self, exc_type, exc, tb):
            self._runtime._untracked_depth -= 1
            return False

    def untracked(self) -> "_Untracked":
        """Context manager disabling triggering (bulk initialization)."""
        return DttRuntime._Untracked(self)

    def pending_count(self, thread: Optional[SupportThread] = None) -> int:
        """Pending activations, totalled or for one thread."""
        if thread is None:
            return len(self._pending)
        return sum(1 for t, _ in self._pending.values() if t is thread)

    def thread_stats(self) -> Dict[str, ThreadStatus]:
        """Per-thread statistics rows, keyed by thread name."""
        return {name: thread.stats for name, thread in self._threads.items()}

    def __repr__(self) -> str:
        return (
            f"DttRuntime({len(self._arrays)} arrays, {len(self._threads)} "
            f"threads, {len(self._pending)} pending)"
        )
