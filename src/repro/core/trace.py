"""Engine event tracing: a timeline of what the DTT machinery did.

The status table answers "how many"; the trace answers "in what order" —
which is what you need when a conversion misbehaves (why did this consume
wait? what canceled that execution?).  Attach a :class:`EngineTrace` to an
engine *before* binding it to a machine, and read the recorded
:class:`EngineEvent` timeline afterwards.

Implementation note: the engine has no observer bus (the hardware
analogue wouldn't either); the trace wraps the engine's public hook
methods, so it composes with any engine mode without engine changes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.engine import DttEngine


class EngineEvent:
    """One traced event."""

    __slots__ = ("sequence", "kind", "thread", "address", "detail")

    def __init__(self, sequence: int, kind: str, thread: Optional[str],
                 address: Optional[int] = None, detail: str = ""):
        self.sequence = sequence
        self.kind = kind
        self.thread = thread
        self.address = address
        self.detail = detail

    def __repr__(self) -> str:
        at = f" addr={self.address}" if self.address is not None else ""
        return (f"#{self.sequence} {self.kind} {self.thread or ''}{at} "
                f"{self.detail}".rstrip())


#: event kinds emitted by the trace
TSTORE = "tstore"
SUPPRESSED = "suppressed"  # same-value filter
FIRED = "fired"
DUPLICATE = "duplicate"
CANCELED = "canceled"
DISPATCHED = "dispatched"
COMPLETED = "completed"
CONSUME_CLEAN = "consume-clean"
CONSUME_WAIT = "consume-wait"


class EngineTrace:
    """Wraps an engine's hooks and records the event timeline."""

    def __init__(self, engine: DttEngine, max_events: int = 100_000):
        self.engine = engine
        self.events: List[EngineEvent] = []
        self.max_events = max_events
        #: events discarded after the buffer filled (0 = complete trace)
        self.dropped = 0
        self._sequence = 0
        self._wrap(engine)

    @property
    def truncated(self) -> bool:
        """True when at least one event was dropped (buffer filled)."""
        return self.dropped > 0

    # -- recording -----------------------------------------------------------

    def _emit(self, kind: str, thread: Optional[str],
              address: Optional[int] = None, detail: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self._sequence += 1
        self.events.append(
            EngineEvent(self._sequence, kind, thread, address, detail)
        )

    def _wrap(self, engine: DttEngine) -> None:
        trace = self
        original_store = engine.on_triggering_store
        original_tcheck = engine.on_tcheck
        original_treturn = engine.on_treturn
        original_dispatch = engine.dispatch_pending
        original_cancel = engine._cancel

        def on_triggering_store(ctx, pc, address, old_value, new_value):
            before = {name: engine.status[name].as_dict()
                      for name in engine.status.rows()}
            original_store(ctx, pc, address, old_value, new_value)
            for name, old in before.items():
                row = engine.status[name]
                if row.triggering_stores > old["triggering_stores"]:
                    trace._emit(TSTORE, name, address,
                                f"{old_value!r}->{new_value!r}")
                if row.same_value_suppressed > old["same_value_suppressed"]:
                    trace._emit(SUPPRESSED, name, address)
                if row.triggers_fired > old["triggers_fired"]:
                    trace._emit(FIRED, name, address)
                if row.duplicates_suppressed > old["duplicates_suppressed"]:
                    trace._emit(DUPLICATE, name, address)

        def on_tcheck(ctx, tid):
            name = engine._thread_name(tid)
            old = engine.status[name].as_dict()
            original_tcheck(ctx, tid)
            row = engine.status[name]
            if row.clean_consumes > old["clean_consumes"]:
                trace._emit(CONSUME_CLEAN, name)
            elif row.wait_consumes > old["wait_consumes"]:
                trace._emit(CONSUME_WAIT, name)

        def on_treturn(ctx):
            frames = engine._inline.get(ctx.context_id)
            if frames:
                name = frames[-1].thread  # inline (call-style) execution
            else:
                name = ctx.thread_name
            original_treturn(ctx)
            trace._emit(COMPLETED, name)

        def dispatch_pending(on_dispatch=None):
            def wrapped(ctx):
                trace._emit(DISPATCHED, ctx.thread_name,
                            detail=f"context {ctx.context_id}")
                if on_dispatch is not None:
                    on_dispatch(ctx)

            return original_dispatch(on_dispatch=wrapped)

        def cancel(key, victim):
            trace._emit(CANCELED, victim.thread_name,
                        detail=f"context {victim.context_id}")
            original_cancel(key, victim)

        engine.on_triggering_store = on_triggering_store
        engine.on_tcheck = on_tcheck
        engine.on_treturn = on_treturn
        engine.dispatch_pending = dispatch_pending
        engine._cancel = cancel

    # -- queries --------------------------------------------------------------------

    def of_kind(self, kind: str) -> List[EngineEvent]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def timeline(self) -> str:
        """The whole trace, one event per line."""
        lines = [repr(event) for event in self.events]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        if self.dropped:
            return (f"EngineTrace({len(self.events)} events, "
                    f"{self.dropped} dropped)")
        return f"EngineTrace({len(self.events)} events)"
