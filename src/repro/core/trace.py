"""Engine event tracing: a causal timeline of what the DTT machinery did.

The status table answers "how many"; the trace answers "in what order"
and — since every activation carries a stable, monotonically-assigned
``activation_id`` minted by the engine — "because of what".  Attach an
:class:`EngineTrace` to an engine (any time before the run) and read the
recorded :class:`EngineEvent` timeline afterwards:

* ``activation_id`` ties the ``fired -> enqueued -> dispatched ->
  completed/canceled`` events of one activation together, so lineage is
  an id walk rather than a thread-LIFO guess;
* ``cause_id`` records cross-activation causality: the pending
  activation that absorbed a duplicate trigger, or the fresh trigger
  that canceled an executing activation;
* ``pc`` pins trigger-side events to the static store site, which is
  what joins the trace against the redundancy profiler's site stats;
* ``cycle`` carries the simulated cycle when the engine has a cycle
  source (deferred/timed runs), so latency breakdowns can be reported
  in cycles instead of event ticks.

Implementation note: the engine emits into at most one attached trace
sink (``DttEngine.attach_trace``); the unattached hot path costs a
single ``is not None`` test per hook, mirroring the metrics layer.  The
hardware analogue is a debug port, not an observer bus.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional


class EngineEvent:
    """One traced event."""

    __slots__ = ("sequence", "kind", "thread", "address", "detail",
                 "activation_id", "cause_id", "pc", "cycle")

    def __init__(self, sequence: int, kind: str, thread: Optional[str],
                 address: Optional[int] = None, detail: str = "",
                 activation_id: Optional[int] = None,
                 cause_id: Optional[int] = None,
                 pc: Optional[int] = None,
                 cycle: Optional[int] = None):
        self.sequence = sequence
        self.kind = kind
        self.thread = thread
        self.address = address
        self.detail = detail
        #: the activation this event belongs to (None for trigger-side
        #: events that never became an activation, and consume points)
        self.activation_id = activation_id
        #: the *other* activation causally linked to this event: the
        #: pending activation that absorbed a duplicate, or the fresh
        #: activation whose trigger canceled this one
        self.cause_id = cause_id
        #: static PC of the triggering store (trigger-side events only)
        self.pc = pc
        #: simulated cycle, when the engine had a cycle source
        self.cycle = cycle

    def __repr__(self) -> str:
        at = f" addr={self.address}" if self.address is not None else ""
        act = f" act={self.activation_id}" if self.activation_id else ""
        cause = f" cause={self.cause_id}" if self.cause_id else ""
        return (f"#{self.sequence} {self.kind} {self.thread or ''}{at}"
                f"{act}{cause} {self.detail}".rstrip())


#: event kinds emitted by the trace
TSTORE = "tstore"
SUPPRESSED = "suppressed"  # same-value filter
FIRED = "fired"
DUPLICATE = "duplicate"
ENQUEUED = "enqueued"
CANCELED = "canceled"
DISPATCHED = "dispatched"
COMPLETED = "completed"
CONSUME_CLEAN = "consume-clean"
CONSUME_WAIT = "consume-wait"


class EngineTrace:
    """Records the engine's event timeline (one sink per engine).

    Constructing the trace registers it on the engine via
    :meth:`~repro.core.engine.DttEngine.attach_trace`; the engine then
    calls :meth:`record` at every hook point.

    The in-memory buffer holds at most ``max_events`` events.  ``keep``
    picks which side survives a full buffer: ``"head"`` (default)
    discards new events once full — the historical behavior — while
    ``"tail"`` evicts the oldest so the buffer always holds the most
    recent window (the right policy when the interesting events are at
    the end of a long run).  Either way ``dropped`` counts the events
    missing from memory.

    ``spill`` routes *every* event, before any buffer policy applies,
    to a sink with an ``append(event)`` method — in practice a
    :class:`~repro.obs.ctrace.CTraceWriter` with an open stream — so
    the on-disk record stays complete even when the in-memory window
    drops events.  With a spill attached (or ``keep="tail"``), sequence
    numbers advance for every event including memory-dropped ones, so
    the spilled stream numbers its events continuously; the default
    configuration preserves the historical numbering exactly.
    """

    def __init__(self, engine, max_events: int = 100_000,
                 keep: str = "head", spill=None):
        if keep not in ("head", "tail"):
            raise ValueError(
                f"keep must be 'head' or 'tail', got {keep!r}")
        self.engine = engine
        self.keep = keep
        self.spill = spill
        if keep == "tail":
            self.events = deque(maxlen=max_events)
        else:
            self.events: List[EngineEvent] = []
        self.max_events = max_events
        #: events discarded from the in-memory buffer after it filled
        #: (0 = complete in-memory trace; a spill sink still saw them)
        self.dropped = 0
        #: fast-exit flag: the engine's hot hooks read this *before*
        #: formatting event details, so a disabled sink costs one attribute
        #: load per hook instead of string building + an EngineEvent
        self.enabled = True
        self._sequence = 0
        engine.attach_trace(self)

    @property
    def truncated(self) -> bool:
        """True when at least one event was dropped (buffer filled)."""
        return self.dropped > 0

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, thread: Optional[str],
               address: Optional[int] = None, detail: str = "",
               activation_id: Optional[int] = None,
               cause_id: Optional[int] = None,
               pc: Optional[int] = None,
               cycle: Optional[int] = None) -> None:
        """Append one event (engine-facing; buffer policy applies)."""
        if not self.enabled:
            return
        full = len(self.events) >= self.max_events
        if full and self.keep == "head" and self.spill is None:
            self.dropped += 1
            return
        self._sequence += 1
        event = EngineEvent(self._sequence, kind, thread, address, detail,
                            activation_id, cause_id, pc, cycle)
        if self.spill is not None:
            self.spill.append(event)
        if not full:
            self.events.append(event)
        else:
            self.dropped += 1
            if self.keep == "tail":
                self.events.append(event)  # deque evicts the oldest

    # retained for callers/tests that emitted events directly
    def _emit(self, kind: str, thread: Optional[str],
              address: Optional[int] = None, detail: str = "") -> None:
        self.record(kind, thread, address, detail)

    # -- queries --------------------------------------------------------------------

    def of_kind(self, kind: str) -> List[EngineEvent]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def of_activation(self, activation_id: int) -> List[EngineEvent]:
        """Every event stamped with (or caused by) ``activation_id``."""
        return [e for e in self.events
                if e.activation_id == activation_id
                or e.cause_id == activation_id]

    def timeline(self) -> str:
        """The whole trace, one event per line."""
        lines = [repr(event) for event in self.events]
        if self.dropped:
            marker = f"... ({self.dropped} events dropped)"
            # tail mode drops from the front, so mark the gap there
            if self.keep == "tail":
                lines.insert(0, marker)
            else:
                lines.append(marker)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        if self.dropped:
            return (f"EngineTrace({len(self.events)} events, "
                    f"{self.dropped} dropped)")
        return f"EngineTrace({len(self.events)} events)"
