"""The DTT engine: gives ``tst``/``tcheck``/``treturn`` their semantics.

The engine attaches to a :class:`~repro.machine.machine.Machine` and
implements the paper's execution model:

**Triggering store** (``on_triggering_store``).  The store's PC/address is
matched against the :class:`~repro.core.registry.ThreadRegistry`.  For each
matching spec: if the store did not change the value and the same-value
filter is on, nothing happens (*this is the redundancy elimination*).
Otherwise the trigger fires: a pending same-key activation suppresses it
as a duplicate; a same-key activation currently *executing* is canceled
and restarted (it may have read data that just changed); otherwise the
activation enters the thread queue — or, if the queue is full, runs
immediately as an ordinary call on the triggering context.

**Consume point** (``on_tcheck``).  If the thread is quiescent — nothing
pending, nothing executing — the main thread falls straight through: the
entire computation was skipped.  Otherwise the main thread waits.

**Two driving modes.**  In *synchronous* mode (``deferred=False``, used by
functional runs and profiling) pending activations execute to completion
at the consume point.  In *deferred* mode (``deferred=True``, used by the
timing simulator) triggered activations are dispatched onto idle hardware
contexts by :meth:`dispatch_pending` (called once per simulated cycle) and
``tcheck`` blocks the main context until quiescence — which is where the
concurrency benefit comes from.

**Serialized fallback.**  On a machine with a single context (experiment
E5c) there is no spare context; pending activations run *inline* on the
main context via a call-like PC redirection, with the register file saved
and restored around the body.  The skip benefit survives; the concurrency
benefit does not.

Support threads must be idempotent (cancel-and-restart re-runs them) and,
unless cascading is enabled, their triggering stores behave as plain
stores.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core import trace as T
from repro.core.config import DttConfig
from repro.core.queue import EnqueueResult, QueueEntry, ThreadQueue
from repro.core.registry import ThreadRegistry
from repro.core.status import ThreadStatusTable
from repro.errors import CascadeError, DttError, RegistryError
from repro.isa.registers import (
    TRIGGER_ADDR_REG,
    TRIGGER_OLD_VALUE_REG,
    TRIGGER_VALUE_REG,
)
from repro.machine.context import Context, ContextRole, ContextState


class _EngineInstruments:
    """The engine's registered metric instruments (one bundle per engine).

    Held behind one attribute so every hot-path metrics update costs a
    single ``is not None`` check when metrics are not attached.
    """

    __slots__ = (
        "tstores", "same_value", "fired", "duplicates", "cancels",
        "started", "completed", "overflow_runs", "clean_consumes",
        "wait_consumes", "unmatched", "queue_depth", "queue_high_water",
        "dispatch_latency",
    )

    def __init__(self, registry):
        counter = registry.counter
        self.tstores = counter(
            "engine.triggering_stores",
            "dynamic triggering stores that matched a registered spec")
        self.same_value = counter(
            "engine.same_value_suppressed",
            "triggering stores filtered because the value did not change")
        self.fired = counter(
            "engine.triggers_fired",
            "triggers that survived the same-value filter")
        self.duplicates = counter(
            "engine.duplicates_suppressed",
            "fired triggers suppressed by a pending same-key activation")
        self.cancels = counter(
            "engine.cancels", "executing activations canceled by a re-trigger")
        self.started = counter(
            "engine.executions_started", "support-thread executions started")
        self.completed = counter(
            "engine.executions_completed",
            "support-thread executions run to completion")
        self.overflow_runs = counter(
            "engine.overflow_inline_runs",
            "triggers run immediately as a call on queue overflow")
        self.clean_consumes = counter(
            "engine.clean_consumes",
            "consume points that skipped the computation entirely")
        self.wait_consumes = counter(
            "engine.wait_consumes",
            "consume points that waited for pending executions")
        self.unmatched = counter(
            "engine.unmatched_tstores",
            "dynamic triggering stores matching no registered spec")
        self.queue_depth = registry.gauge(
            "queue.depth", "thread-queue entries currently pending")
        self.queue_high_water = registry.gauge(
            "queue.depth_high_water", "peak thread-queue depth this run")
        self.dispatch_latency = registry.histogram(
            "engine.dispatch_latency_cycles",
            "cycles between trigger enqueue and dispatch onto a context",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096))


class _InlineFrame:
    """Bookkeeping for one inline (call-like) support-thread execution."""

    __slots__ = ("key", "thread", "resume_pc", "retcheck", "saved_regs",
                 "activation_id")

    def __init__(self, key, thread, resume_pc, retcheck, saved_regs,
                 activation_id=0):
        self.key = key
        self.thread = thread
        self.resume_pc = resume_pc
        self.retcheck = retcheck
        self.saved_regs = saved_regs
        self.activation_id = activation_id


class DttEngine:
    """One engine drives one machine for one run."""

    def __init__(
        self,
        registry: ThreadRegistry,
        config: Optional[DttConfig] = None,
        deferred: bool = False,
    ):
        self.registry = registry
        self.config = config or DttConfig()
        self.deferred = deferred
        self.machine = None
        self.queue = ThreadQueue(self.config.queue_capacity)
        self.status = ThreadStatusTable(registry.thread_names)
        #: dynamic triggering stores that matched no registered spec
        self.unmatched_tstores = 0
        self._entry_pcs: Dict[str, int] = {}
        self._tids: List[str] = []
        # key -> ("ctx" | "inline", Context) for in-flight activations
        self._executing: Dict[Hashable, Tuple[str, Context]] = {}
        # context_id -> key, for support-role executions
        self._ctx_exec: Dict[int, Hashable] = {}
        # context_id -> stack of inline frames
        self._inline: Dict[int, List[_InlineFrame]] = {}
        # contexts whose next tcheck is a re-entry after an inline run
        self._resumed_tcheck: set = set()
        self._sequence = 0
        #: monotone activation-id counter; ids are minted per *fired*
        #: trigger (post same-value filter), so duplicate-suppressed
        #: triggers have ids too — the lineage can name what they were
        #: absorbed into.  Ids start at 1; 0 means "never assigned".
        self._next_activation = 0
        # context_id -> activation id, for support-role executions
        self._ctx_activation: Dict[int, int] = {}
        #: attached metrics registry (None = unmetered; see attach_metrics)
        self.metrics = None
        self._m: Optional[_EngineInstruments] = None
        #: attached trace sink (None = untraced; see attach_trace)
        self._trace = None
        #: cached may-trigger index over the registry (rebuilt whenever the
        #: registry version or the configured granularity moves)
        self._prefilter = None
        #: callable returning the current simulated cycle; set by the
        #: timing simulator so dispatch latency can be metered in cycles
        self.cycle_source = None

    # -- wiring ------------------------------------------------------------------

    def bind(self, machine) -> None:
        """Attach to a machine; validates specs against the program."""
        if self.machine is not None:
            raise DttError("engine is already bound; use one engine per run")
        program = machine.program
        for spec in self.registry.specs:
            if spec.thread not in program.threads:
                raise RegistryError(
                    f"trigger spec names thread {spec.thread!r}, which the "
                    f"program does not declare (has: {list(program.threads)})"
                )
        self._tids = list(program.threads)
        self._entry_pcs = {
            name: program.thread_entry_pc(name) for name in program.threads
        }
        self.machine = machine

    def attach_metrics(self, registry) -> None:
        """Meter this engine on a :class:`~repro.obs.metrics.MetricsRegistry`.

        Idempotent for the same registry; attaching a second, different
        registry replaces the first.  Unattached engines skip every
        metrics update (one ``is None`` test per hook).
        """
        if registry is self.metrics:
            return
        self.metrics = registry
        self._m = _EngineInstruments(registry)

    def attach_trace(self, trace) -> None:
        """Attach an :class:`~repro.core.trace.EngineTrace` sink.

        One sink per engine (a second attach replaces the first);
        untraced engines skip every emission with one ``is None`` test.
        """
        self._trace = trace

    @property
    def activations_minted(self) -> int:
        """How many activation ids this engine has assigned so far."""
        return self._next_activation

    def _mint_activation(self) -> int:
        self._next_activation += 1
        return self._next_activation

    def _now(self) -> Optional[int]:
        """The current simulated cycle, when a cycle source is wired."""
        return self.cycle_source() if self.cycle_source is not None else None

    def _thread_name(self, tid: int) -> str:
        if not 0 <= tid < len(self._tids):
            raise DttError(
                f"tcheck references thread id {tid}; program declares "
                f"{len(self._tids)} thread(s)"
            )
        return self._tids[tid]

    def _dedupe_key(self, spec, address: int) -> Hashable:
        per_address = spec.per_address_dedupe
        if per_address is None:
            per_address = self.config.per_address_dedupe_default
        return (spec.thread, address) if per_address else spec.thread

    def is_quiescent(self, thread: str) -> bool:
        """True when a thread has nothing pending and nothing executing."""
        return self.status[thread].executing == 0 and not self.queue.has_pending(
            thread
        )

    # -- triggering stores -----------------------------------------------------------

    def on_triggering_store(self, ctx, pc, address, old_value, new_value) -> None:
        """Hook called by the machine for every executed ``tst``/``tstx``."""
        if self._is_support_execution(ctx):
            if not self.config.allow_cascading:
                if self.config.strict_cascading:
                    raise CascadeError(
                        f"support thread issued a triggering store at pc {pc} "
                        "with cascading disabled (strict mode)"
                    )
                return  # behaves as a plain store
        m = self._m
        t = self._trace
        if t is not None and not t.enabled:
            t = None  # disabled sink: skip building event details entirely
        # Prefilter: one set-membership test (plus range probes only when
        # address watches exist) decides the common can-never-match case
        # without walking the registry.  Staleness is two int compares.
        granularity = self.config.granularity
        prefilter = self._prefilter
        if (prefilter is None
                or prefilter.version != self.registry.version
                or prefilter.granularity != granularity):
            prefilter = self.registry.build_prefilter(granularity)
            self._prefilter = prefilter
        if pc not in prefilter.store_pcs:
            hit = False
            for lo, hi in prefilter.ranges:
                if lo <= address < hi:
                    hit = True
                    break
            if not hit:
                self.unmatched_tstores += 1
                if m is not None:
                    m.unmatched.inc()
                return
        specs = self.registry.matches(pc, address, granularity)
        if not specs:
            self.unmatched_tstores += 1
            if m is not None:
                m.unmatched.inc()
            return
        for spec in specs:
            row = self.status[spec.thread]
            row.triggering_stores += 1
            if m is not None:
                m.tstores.inc()
            if t is not None:
                t.record(T.TSTORE, spec.thread, address,
                         f"{old_value!r}->{new_value!r}", pc=pc,
                         cycle=self._now())
            if self.config.same_value_filter and old_value == new_value:
                row.same_value_suppressed += 1
                if m is not None:
                    m.same_value.inc()
                if t is not None:
                    t.record(T.SUPPRESSED, spec.thread, address, pc=pc,
                             cycle=self._now())
                continue
            row.triggers_fired += 1
            if m is not None:
                m.fired.inc()
            activation_id = self._mint_activation()
            if t is not None:
                t.record(T.FIRED, spec.thread, address,
                         f"{old_value!r}->{new_value!r}", pc=pc,
                         activation_id=activation_id, cycle=self._now())
            key = self._dedupe_key(spec, address)
            in_flight = self._executing.get(key)
            if in_flight is not None:
                kind, victim = in_flight
                if kind == "ctx":
                    self._cancel(key, victim, cause_id=activation_id)
                else:
                    # the activation is running inline on some context; it
                    # cannot be canceled mid-call — suppress as a duplicate
                    # (it reads current memory, which already holds new_value)
                    row.duplicates_suppressed += 1
                    if m is not None:
                        m.duplicates.inc()
                    if t is not None:
                        t.record(T.DUPLICATE, spec.thread, address,
                                 "absorbed by executing inline activation",
                                 pc=pc, activation_id=activation_id,
                                 cause_id=self._inline_activation(victim, key),
                                 cycle=self._now())
                    continue
            self._sequence += 1
            entry = QueueEntry(spec.thread, address, new_value, old_value,
                               self._sequence, activation_id)
            if self.cycle_source is not None:
                entry.enqueue_cycle = self.cycle_source()
            result = self.queue.try_enqueue(key, entry)
            if result is EnqueueResult.DUPLICATE:
                row.duplicates_suppressed += 1
                if m is not None:
                    m.duplicates.inc()
                if t is not None:
                    pending = self.queue.entry_for(key)
                    t.record(T.DUPLICATE, spec.thread, address,
                             "absorbed by pending activation", pc=pc,
                             activation_id=activation_id,
                             cause_id=pending.activation_id
                             if pending is not None else None,
                             cycle=self._now())
            elif result is EnqueueResult.OVERFLOW:
                row.overflow_inline_runs += 1
                if m is not None:
                    m.overflow_runs.inc()
                # ctx.pc already points at the instruction after the store
                self._start_inline(ctx, key, entry, resume_pc=ctx.pc,
                                   retcheck=False)
            else:
                if t is not None:
                    t.record(T.ENQUEUED, spec.thread, address,
                             f"pos={len(self.queue)}",
                             activation_id=activation_id,
                             cycle=self._now())
                if m is not None:
                    depth = len(self.queue)
                    m.queue_depth.set(depth)
                    m.queue_high_water.set_max(depth)

    def _inline_activation(self, ctx, key) -> Optional[int]:
        """The activation id of the inline frame executing ``key``."""
        for frame in self._inline.get(ctx.context_id, ()):
            if frame.key == key:
                return frame.activation_id
        return None

    def _cancel(self, key: Hashable, victim: Context,
                cause_id: Optional[int] = None) -> None:
        """Cancel-and-restart: abort an executing activation.

        ``cause_id`` names the fresh activation whose trigger forced the
        cancel; the trace records it so lineage can answer "what killed
        this execution".
        """
        row = self.status[victim.thread_name]
        row.cancels += 1
        row.executing -= 1
        if self._m is not None:
            self._m.cancels.inc()
        victim_activation = self._ctx_activation.pop(victim.context_id, None)
        if self._trace is not None:
            self._trace.record(T.CANCELED, victim.thread_name,
                               detail=f"context {victim.context_id}",
                               activation_id=victim_activation,
                               cause_id=cause_id, cycle=self._now())
        self._executing.pop(key, None)
        self._ctx_exec.pop(victim.context_id, None)
        victim.finish_support()

    def _is_support_execution(self, ctx) -> bool:
        if ctx.role is ContextRole.SUPPORT:
            return True
        frames = self._inline.get(ctx.context_id)
        return bool(frames)

    # -- consume points -------------------------------------------------------------------

    def on_tcheck(self, ctx, tid: int) -> None:
        """Hook called by the machine for every executed ``tcheck``."""
        name = self._thread_name(tid)
        row = self.status[name]
        resumed = ctx.context_id in self._resumed_tcheck
        self._resumed_tcheck.discard(ctx.context_id)
        if self.is_quiescent(name):
            if not resumed:
                row.consumes += 1
                row.clean_consumes += 1
                if self._m is not None:
                    self._m.clean_consumes.inc()
                if self._trace is not None:
                    self._trace.record(T.CONSUME_CLEAN, name,
                                       cycle=self._now())
            return
        if not resumed:
            row.consumes += 1
            row.wait_consumes += 1
            if self._m is not None:
                self._m.wait_consumes.inc()
            if self._trace is not None:
                self._trace.record(T.CONSUME_WAIT, name, cycle=self._now())
        if self.deferred:
            self._tcheck_deferred(ctx, tid, name)
        else:
            self._tcheck_synchronous(ctx, name)

    def _tcheck_deferred(self, ctx, tid: int, name: str) -> None:
        if len(self.machine.contexts) > 1:
            ctx.block_on(tid)
            return
        # serialized fallback: no spare context exists; run one pending
        # activation inline and re-execute the tcheck afterwards
        popped = self.queue.pop_for_thread(name)
        if popped is None:
            raise DttError(
                f"thread {name!r} reported executing on a single-context "
                "machine outside an inline frame (engine state corrupted)"
            )
        key, entry = popped
        self._start_inline(ctx, key, entry, resume_pc=ctx.pc - 1, retcheck=True)

    def _tcheck_synchronous(self, ctx, name: str) -> None:
        while True:
            popped = self.queue.pop_for_thread(name)
            if popped is None:
                break
            key, entry = popped
            idle = self.machine.idle_contexts()
            if idle:
                self._run_synchronous(idle[0], key, entry)
            else:
                # single-context machine: inline-call, tcheck re-executes
                self._start_inline(ctx, key, entry, resume_pc=ctx.pc - 1,
                                   retcheck=True)
                return
        if self.status[name].executing:
            raise DttError(
                f"thread {name!r} still executing after a synchronous "
                "consume point (engine state corrupted)"
            )

    # -- execution mechanics ------------------------------------------------------------

    def _run_synchronous(self, support_ctx: Context, key, entry: QueueEntry) -> None:
        """Run one activation to completion on an idle support context."""
        row = self.status[entry.thread]
        row.executions_started += 1
        row.executing += 1
        if self._m is not None:
            self._m.started.inc()
        self._executing[key] = ("ctx", support_ctx)
        self._ctx_exec[support_ctx.context_id] = key
        self._ctx_activation[support_ctx.context_id] = entry.activation_id
        if self._trace is not None:
            self._trace.record(T.DISPATCHED, entry.thread, entry.address,
                               f"context {support_ctx.context_id} (sync)",
                               activation_id=entry.activation_id,
                               cycle=self._now())
        support_ctx.start_support(
            self._entry_pcs[entry.thread],
            entry.thread,
            entry.address,
            entry.new_value,
            entry.old_value,
        )
        while support_ctx.state is ContextState.RUNNING:
            self.machine.step(support_ctx)

    def _start_inline(self, ctx, key, entry: QueueEntry, resume_pc: int,
                      retcheck: bool) -> None:
        """Redirect ``ctx`` into the thread body, call-style."""
        row = self.status[entry.thread]
        row.executions_started += 1
        row.executing += 1
        if self._m is not None:
            self._m.started.inc()
        self._executing[key] = ("inline", ctx)
        frame = _InlineFrame(key, entry.thread, resume_pc, retcheck,
                             list(ctx.regs), entry.activation_id)
        self._inline.setdefault(ctx.context_id, []).append(frame)
        if self._trace is not None:
            self._trace.record(T.DISPATCHED, entry.thread, entry.address,
                               f"inline on context {ctx.context_id}",
                               activation_id=entry.activation_id,
                               cycle=self._now())
        ctx.regs[TRIGGER_ADDR_REG] = entry.address
        ctx.regs[TRIGGER_VALUE_REG] = entry.new_value
        ctx.regs[TRIGGER_OLD_VALUE_REG] = entry.old_value
        ctx.pc = self._entry_pcs[entry.thread]

    def dispatch_pending(self, on_dispatch=None) -> int:
        """Deferred mode: start queued activations on idle contexts.

        Called by the timing driver once per cycle.  ``on_dispatch`` (if
        given) is invoked with each newly started context so the driver can
        charge spawn latency.  Returns the number of activations dispatched.
        """
        if not self.queue:
            return 0  # fast exit: skip the idle-context scan every cycle
        dispatched = 0
        m = self._m
        idle = self.machine.idle_contexts()
        while idle and self.queue:
            key, entry = self.queue.pop()
            support_ctx = idle.pop()
            row = self.status[entry.thread]
            row.executions_started += 1
            row.executing += 1
            if m is not None:
                m.started.inc()
                m.queue_depth.set(len(self.queue))
                if self.cycle_source is not None:
                    m.dispatch_latency.observe(
                        max(self.cycle_source() - entry.enqueue_cycle, 0))
            if self._trace is not None:
                self._trace.record(T.DISPATCHED, entry.thread, entry.address,
                                   f"context {support_ctx.context_id}",
                                   activation_id=entry.activation_id,
                                   cycle=self._now())
            self._executing[key] = ("ctx", support_ctx)
            self._ctx_exec[support_ctx.context_id] = key
            self._ctx_activation[support_ctx.context_id] = entry.activation_id
            support_ctx.start_support(
                self._entry_pcs[entry.thread],
                entry.thread,
                entry.address,
                entry.new_value,
                entry.old_value,
            )
            if on_dispatch is not None:
                on_dispatch(support_ctx)
            dispatched += 1
        return dispatched

    # -- thread completion ---------------------------------------------------------------

    def on_treturn(self, ctx) -> None:
        """Hook called by the machine for every executed ``treturn``."""
        frames = self._inline.get(ctx.context_id)
        if frames:
            frame = frames.pop()
            if not frames:
                del self._inline[ctx.context_id]
            row = self.status[frame.thread]
            row.executions_completed += 1
            row.executing -= 1
            if self._m is not None:
                self._m.completed.inc()
            if self._trace is not None:
                self._trace.record(T.COMPLETED, frame.thread,
                                   activation_id=frame.activation_id,
                                   cycle=self._now())
            self._executing.pop(frame.key, None)
            ctx.regs[:] = frame.saved_regs
            ctx.pc = frame.resume_pc
            if frame.retcheck:
                self._resumed_tcheck.add(ctx.context_id)
            return
        if ctx.role is not ContextRole.SUPPORT:
            raise DttError(
                f"treturn on context {ctx.context_id} with no support thread "
                "and no inline frame"
            )
        key = self._ctx_exec.pop(ctx.context_id)
        self._executing.pop(key, None)
        row = self.status[ctx.thread_name]
        row.executions_completed += 1
        row.executing -= 1
        if self._m is not None:
            self._m.completed.inc()
        activation_id = self._ctx_activation.pop(ctx.context_id, None)
        if self._trace is not None:
            self._trace.record(T.COMPLETED, ctx.thread_name,
                               activation_id=activation_id,
                               cycle=self._now())
        ctx.finish_support()
        self._unblock_waiters()

    def _unblock_waiters(self) -> None:
        for waiter in self.machine.contexts:
            if waiter.state is ContextState.BLOCKED:
                name = self._thread_name(waiter.waiting_on)
                if self.is_quiescent(name):
                    waiter.unblock()

    # -- reporting ------------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Suite-level counters plus queue stats."""
        summary = self.status.summary()
        summary["unmatched_tstores"] = self.unmatched_tstores
        summary["queue_enqueued"] = self.queue.enqueued
        summary["queue_duplicates"] = self.queue.duplicates_suppressed
        summary["queue_overflows"] = self.queue.overflows
        summary["queue_depth_high_water"] = self.queue.depth_high_water
        return summary

    def __repr__(self) -> str:
        mode = "deferred" if self.deferred else "synchronous"
        return (
            f"DttEngine({len(self.registry)} specs, {mode}, "
            f"{self.queue.pending_count()} pending)"
        )
