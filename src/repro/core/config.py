"""Configuration of the DTT engine — the paper's design knobs.

Every field corresponds to a design decision discussed in the paper (and
ablated by experiment E8):

* ``same_value_filter`` — the redundancy filter itself: a triggering store
  that writes the value already in memory fires nothing.  Turning this off
  (E8a) makes every triggering store fire, which collapses the benefit to
  (at best) the concurrency of running the computation early.
* ``granularity`` — the width, in words, of trigger address matching for
  address-watched triggers.  1 = exact word (the paper's default ISA
  semantics); 16 = cache-line granularity, which introduces *false
  triggers* from neighboring words (E8b).
* ``queue_capacity`` — thread-queue depth.  On overflow the new trigger is
  executed immediately as an ordinary function call on the triggering
  context (the paper's safe fallback), losing the skip/concurrency benefit
  for that instance (E8c).
* ``allow_cascading`` — whether a support thread's triggering stores can
  themselves fire triggers.  The paper's base design forbids cascading;
  a support thread's ``tst`` behaves as a plain store.
* ``per_address_dedupe_default`` — default duplicate-suppression key.  True
  keys queue entries by (thread, address): one pending instance per watched
  datum.  False keys by thread alone: any number of triggers collapse into
  one pending execution (right for threads that recompute everything).
  Individual :class:`~repro.core.registry.TriggerSpec`\\ s can override.
"""

from __future__ import annotations

from repro.errors import DttError


class DttConfig:
    """Engine configuration; immutable after construction by convention."""

    __slots__ = (
        "same_value_filter",
        "granularity",
        "queue_capacity",
        "allow_cascading",
        "strict_cascading",
        "per_address_dedupe_default",
    )

    def __init__(
        self,
        same_value_filter: bool = True,
        granularity: int = 1,
        queue_capacity: int = 16,
        allow_cascading: bool = False,
        strict_cascading: bool = False,
        per_address_dedupe_default: bool = True,
    ):
        if granularity < 1:
            raise DttError(f"granularity must be >= 1 word, got {granularity}")
        if queue_capacity < 1:
            raise DttError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if strict_cascading and allow_cascading:
            raise DttError(
                "strict_cascading (fault on support-thread tst) conflicts "
                "with allow_cascading"
            )
        self.same_value_filter = same_value_filter
        self.granularity = granularity
        self.queue_capacity = queue_capacity
        self.allow_cascading = allow_cascading
        self.strict_cascading = strict_cascading
        self.per_address_dedupe_default = per_address_dedupe_default

    def __repr__(self) -> str:
        return (
            f"DttConfig(same_value_filter={self.same_value_filter}, "
            f"granularity={self.granularity}, "
            f"queue_capacity={self.queue_capacity}, "
            f"allow_cascading={self.allow_cascading})"
        )
