"""Candidate discovery: which regions could become support threads?

A *conversion candidate* is a contiguous main-region pc interval
``[region_start, region_end)`` plus the set of *feeder* stores whose
data it consumes.  The shape mirrors every hand conversion in
:mod:`repro.workloads`: the baseline writes an input array (the feeder),
recomputes derived data from it (the region), then consumes the derived
data downstream.  The converter turns the feeders into triggering
stores, the region into a thread body, and the region's old location
into the consume barrier (``tcheck``).

Discovery is purely static (:func:`discover_candidates`); a candidate
must satisfy, over the main CFG and its dataflow:

* **single entry / single exit** — every successor of an interval pc
  stays inside ``[start, end]``, some pc falls through to ``end``
  (the thread's ``treturn`` point), and no pc outside the interval
  branches into its interior;
* **register-closed** — no instruction reads a register before the
  interval itself defines it (linear scan: builder-generated code
  defines loop carriers before loop tops), so the body runs correctly
  on a support context whose registers are stale;
* **register-dead at exit** — nothing the interval defines is live into
  its continuation or into program entry (a priming copy runs there),
  so deleting the region from main perturbs no downstream register;
* **productive** — contains at least one load and one store, writes a
  resolvable (non-⊤) address set, and some read outside the interval
  consumes what it writes;
* **fed** — at least one plain store before the region may write the
  region's read set, and *every* main store that may write it sits
  before the region (a writer after the barrier could go stale without
  re-triggering — exactly the unsoundness the paper warns about).

Candidates are *proposals*, not proofs: the gate re-runs the full
static analysis, functional output equality, and a timed comparison on
every synthesized program before accepting anything.

Scoring (:func:`rank_candidates`) runs the baseline under the
redundancy profiler and ranks by ``silent_fraction(feeders) ×
redundant_load_mass(region)`` — the paper's two necessary conditions
for a DTT win.  With a :class:`~repro.profiling.redundancy.\
SampledRedundantLoadProfiler` the ranking key drops to the product of
the CI *lower* bounds, so a hot-looking site whose estimate is mostly
uncertainty does not outrank a site the sample actually measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis import cfg as cfgmod
from repro.analysis.dataflow import (AddressSet, Liveness, ValueAnalysis,
                                     access_summary, const_value,
                                     union_addresses)
from repro.analysis.symbolic import ParamRecovery, prove_param_recovery
from repro.isa.instructions import (is_load, is_store, is_triggering_store,
                                    operand_roles)
from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS
from repro.machine.machine import Machine, run_to_completion
from repro.profiling.redundancy import (RedundantLoadProfiler,
                                        SampledRedundantLoadProfiler)

#: ops a convertible region may not contain: observable effects, control
#: that leaves the region's frame, and DTT ops (the baseline must be
#: plain).  ``jmp`` and conditional branches are fine when their targets
#: stay inside.
_FORBIDDEN_OPS = frozenset(
    ["call", "ret", "halt", "out", "tcheck", "treturn", "tst", "tstx"])

#: most registers a parameterized region may read before defining — the
#: synthesized prologue recovers each from r1, so this bounds its size
_MAX_PARAMS = 3


class ConversionCandidate:
    """One store-sites → consumer-region pair, with its profile score."""

    __slots__ = ("region_start", "region_end", "store_pcs", "reads",
                 "writes", "dynamic_stores", "silent_stores",
                 "region_loads", "redundant_loads", "score", "ci_low",
                 "ci_high", "params", "recovery")

    def __init__(self, region_start: int, region_end: int,
                 store_pcs: Tuple[int, ...], reads: AddressSet,
                 writes: AddressSet, params: Tuple[int, ...] = (),
                 recovery: Optional[ParamRecovery] = None):
        self.region_start = region_start
        self.region_end = region_end
        #: feeder store pcs (in the *original* program), ascending
        self.store_pcs = tuple(sorted(store_pcs))
        self.reads = reads
        self.writes = writes
        #: registers the region reads before defining (thread parameters);
        #: non-empty only with a proven :class:`ParamRecovery`
        self.params = tuple(sorted(params))
        self.recovery = recovery
        self.dynamic_stores = 0
        self.silent_stores = 0
        self.region_loads = 0
        self.redundant_loads = 0
        self.score = 0.0
        #: CI bounds on the score under sampled profiling; None when exact
        self.ci_low: Optional[float] = None
        self.ci_high: Optional[float] = None

    @property
    def silent_fraction(self) -> float:
        if not self.dynamic_stores:
            return 0.0
        return self.silent_stores / self.dynamic_stores

    def overlaps(self, other: "ConversionCandidate") -> bool:
        """Do the two regions share any pc?"""
        return (self.region_start < other.region_end
                and other.region_start < self.region_end)

    def contains(self, other: "ConversionCandidate") -> bool:
        """Is ``other``'s region inside this one's?"""
        return (self.region_start <= other.region_start
                and other.region_end <= self.region_end)

    def as_dict(self) -> Dict:
        """JSON-ready provenance row."""
        row = {
            "region_start": self.region_start,
            "region_end": self.region_end,
            "store_pcs": list(self.store_pcs),
            "dynamic_stores": self.dynamic_stores,
            "silent_stores": self.silent_stores,
            "region_loads": self.region_loads,
            "redundant_loads": self.redundant_loads,
            "score": round(self.score, 6),
        }
        if self.ci_low is not None:
            row["score_ci_low"] = round(self.ci_low, 6)
            row["score_ci_high"] = round(self.ci_high, 6)
        if self.params:
            row["params"] = [f"r{reg}" for reg in self.params]
            row["recovery"] = (self.recovery.as_dict()
                               if self.recovery is not None else None)
        return row

    def __repr__(self) -> str:
        return (f"ConversionCandidate(pc {self.region_start}.."
                f"{self.region_end - 1}, feeders={list(self.store_pcs)}, "
                f"score={self.score:.4f})")


def discover_candidates(program: Program,
                        min_region_size: int = 4,
                        allow_params: bool = True
                        ) -> List[ConversionCandidate]:
    """Statically enumerate convertible regions of a plain program.

    Returns one candidate per viable region start (the maximal valid
    interval from that start — the most work a thread there could
    skip), unscored and sorted by region start.  Raises nothing on
    DTT-converted input; a program that already declares threads simply
    yields no candidates (its regions contain DTT ops).

    With ``allow_params`` (the default), a start where the
    register-closed scan finds nothing is retried allowing up to
    ``_MAX_PARAMS`` reads of registers the region never defines —
    *parameters*, in the sense of the paper's vpr/twolf conversions.
    Such a candidate is kept only when
    :func:`~repro.analysis.symbolic.prove_param_recovery` shows every
    parameter is recoverable from the trigger address, so synthesis can
    prime it in the thread prologue.  Parameterized discovery is purely
    additive: any start the closed scan already covers keeps its
    original candidate, and a parameterized interval lying *inside* a
    register-closed one is dropped — it is a suffix of a region that
    converts without parameters at all (shaving the leading ``li`` off
    a closed region turns the constant into a "parameter"), so keeping
    it would only flood ranking with redundant sub-regions.
    """
    cfg = cfgmod.main_cfg(program)
    layout = program.layout
    liveness = Liveness(cfg)
    values = ValueAnalysis(
        cfg, {reg: const_value(0) for reg in range(NUM_REGISTERS)})
    summary = access_summary(values)
    reads_at = dict(summary.reads)
    writes_at = {pc: addresses for pc, addresses in summary.writes
                 if not is_triggering_store(cfg.instruction_at(pc).op)}
    live_entry = liveness.live_into(cfg.entry_pc)
    pcs = cfg.pcs

    def build(start: int, end: int,
              params: Tuple[int, ...]) -> Optional[ConversionCandidate]:
        region_reads = union_addresses(
            reads_at[pc] for pc in range(start, end) if pc in reads_at)
        region_writes = union_addresses(
            writes_at[pc] for pc in range(start, end) if pc in writes_at)
        if region_writes.is_empty() or region_writes.top:
            return None
        return _attach_feeders(program, cfg, layout, reads_at, writes_at,
                               start, end, region_reads, region_writes,
                               params)

    candidates: List[ConversionCandidate] = []
    plain_spans: List[Tuple[int, int]] = []
    open_starts: List[int] = []
    for start in sorted(pcs):
        interval = _maximal_interval(cfg, liveness, live_entry, pcs, start,
                                     min_region_size)
        if interval is None:
            open_starts.append(start)
            continue
        end, params = interval
        plain_spans.append((start, end))
        candidate = build(start, end, params)
        if candidate is not None:
            candidates.append(candidate)
    if allow_params:
        for start in open_starts:
            interval = _maximal_interval(cfg, liveness, live_entry, pcs,
                                         start, min_region_size,
                                         max_params=_MAX_PARAMS)
            if interval is None:
                continue
            end, params = interval
            if any(plo <= start and end <= phi for plo, phi in plain_spans):
                continue
            candidate = build(start, end, params)
            if candidate is not None:
                candidates.append(candidate)
        candidates.sort(key=lambda c: c.region_start)
    return candidates


def _maximal_interval(cfg, liveness, live_entry, pcs, start,
                      min_region_size, max_params: int = 0
                      ) -> Optional[Tuple[int, Tuple[int, ...]]]:
    """The largest valid ``(region end, parameter registers)`` for
    ``start``, or None.

    Grows the interval one pc at a time, tracking linear register
    definedness and the furthest forward successor; an interval is valid
    when control is contained, the exit is reachable, and the defined
    registers are dead at both the continuation and program entry.  With
    ``max_params`` > 0, up to that many reads of never-defined registers
    become parameters instead of ending the interval.
    """
    defined: set = set()
    defs: set = set()
    params: set = set()
    has_load = has_store = False
    exit_reachable: set = set()
    best: Optional[Tuple[int, Tuple[int, ...]]] = None
    pc = start
    while pc in pcs:
        instruction = cfg.instruction_at(pc)
        op = instruction.op
        if op in _FORBIDDEN_OPS:
            break
        _dest, sources = operand_roles(op)
        undefined = {getattr(instruction, slot) for slot in sources
                     if getattr(instruction, slot) not in defined}
        if undefined - params:
            if len(params | undefined) > max_params:
                break  # reads a register the region never defined
            params |= undefined
        if _dest is not None:
            reg = getattr(instruction, _dest)
            defined.add(reg)
            defs.add(reg)
        succs = cfg.succ_pcs[pc]
        if any(succ < start for succ in succs):
            break  # a backward edge escapes the region
        has_load = has_load or is_load(op)
        has_store = has_store or is_store(op)
        exit_reachable.update(succs)
        end = pc + 1
        if (end - start >= min_region_size
                and has_load and has_store
                and max(exit_reachable) <= end
                and end in exit_reachable
                and _single_entry(cfg, pcs, start, end)
                and not (defs & liveness.live_into(end))
                and not (defs & live_entry)):
            best = (end, tuple(sorted(params)))
        pc += 1
    return best


def _single_entry(cfg, pcs, start, end) -> bool:
    """No pc outside ``[start, end)`` branches into its interior."""
    interior = range(start + 1, end)
    for pc in pcs:
        if start <= pc < end:
            continue
        if any(succ in interior for succ in cfg.succ_pcs[pc]):
            return False
    return True


def _attach_feeders(program, cfg, layout, reads_at, writes_at, start, end,
                    region_reads, region_writes, params: Tuple[int, ...] = ()
                    ) -> Optional[ConversionCandidate]:
    """Pair a region with the plain stores that may write its inputs.

    A parameterized region additionally needs the symbolic closure
    proof: every parameter must be recoverable from each feeder's store
    address (:func:`~repro.analysis.symbolic.prove_param_recovery`), or
    the synthesized thread could not reconstruct the value the region
    reads and the candidate is dropped.
    """
    feeders: List[int] = []
    for pc, addresses in writes_at.items():
        if start <= pc < end:
            continue
        if not addresses.overlaps(region_reads, layout):
            continue
        if pc >= end:
            return None  # a writer after the barrier could go stale
        op = cfg.instruction_at(pc).op
        if op not in ("st", "stx"):
            return None
        feeders.append(pc)
    if not feeders:
        return None
    consumed = any(
        addresses.overlaps(region_writes, layout)
        for pc, addresses in reads_at.items()
        if not start <= pc < end)
    if not consumed:
        return None
    recovery = None
    if params:
        recovery = prove_param_recovery(program, cfg, start, params, feeders)
        if recovery is None:
            return None
    return ConversionCandidate(start, end, tuple(feeders), region_reads,
                               region_writes, params=params,
                               recovery=recovery)


def rank_candidates(
    program: Program,
    candidates: Optional[List[ConversionCandidate]] = None,
    min_dynamic_stores: int = 4,
    sample_rate: Optional[int] = None,
    sample_seed: int = 0,
    max_instructions: int = 20_000_000,
) -> List[ConversionCandidate]:
    """Profile the baseline and score/rank the candidates, best first.

    ``sample_rate`` switches the profile to a 1/K address sample with
    bounded memory; ranking then uses each score's CI lower bound (a
    candidate only ranks on redundancy the sample actually witnessed).
    Candidates whose feeders executed fewer than ``min_dynamic_stores``
    times are dropped (one-shot initialization stores), as are
    candidates strictly contained in an equal-or-better one.
    """
    if candidates is None:
        candidates = discover_candidates(program)
    if not candidates:
        return []
    if sample_rate is not None:
        profiler = SampledRedundantLoadProfiler(sample_rate,
                                                seed=sample_seed)
    else:
        profiler = RedundantLoadProfiler()
    machine = Machine(program, num_contexts=1,
                      max_instructions=max_instructions)
    machine.add_observer(profiler)
    run_to_completion(machine)
    store_sites = {site.pc: site for site in profiler.store_sites()}
    load_sites = {site.pc: site for site in profiler.load_sites()}
    total_loads = max(profiler.total_loads, 1)

    scored: List[ConversionCandidate] = []
    for candidate in candidates:
        feeders = [store_sites[pc] for pc in candidate.store_pcs
                   if pc in store_sites]
        candidate.dynamic_stores = sum(s.dynamic for s in feeders)
        candidate.silent_stores = sum(s.silent for s in feeders)
        if candidate.dynamic_stores < min_dynamic_stores:
            continue
        region_sites = [load_sites[pc] for pc in
                        range(candidate.region_start, candidate.region_end)
                        if pc in load_sites]
        candidate.region_loads = sum(s.dynamic for s in region_sites)
        candidate.redundant_loads = sum(s.redundant for s in region_sites)
        mass = candidate.redundant_loads / total_loads
        candidate.score = candidate.silent_fraction * mass
        silent_ci = _fraction_ci(feeders, "silent")
        mass_ci = _fraction_ci(region_sites, "redundant")
        if silent_ci is not None and mass_ci is not None:
            load_weight = candidate.region_loads / total_loads
            candidate.ci_low = silent_ci[0] * mass_ci[0] * load_weight
            candidate.ci_high = silent_ci[1] * mass_ci[1] * load_weight
        scored.append(candidate)

    def rank_key(candidate: ConversionCandidate) -> float:
        if candidate.ci_low is not None:
            return candidate.ci_low
        return candidate.score

    scored.sort(key=lambda c: (-rank_key(c), c.region_start))
    kept: List[ConversionCandidate] = []
    for candidate in scored:
        if any(other.contains(candidate) for other in kept):
            continue  # a superset region already ranked at least as high
        kept.append(candidate)
    return kept


def _fraction_ci(sites, _kind: str) -> Optional[Tuple[float, float]]:
    """Dynamic-weighted CI over sampled site estimates, or None if any
    site lacks one (exact profile)."""
    total = sum(site.dynamic for site in sites)
    if not total:
        return None
    low = high = 0.0
    for site in sites:
        estimate = getattr(site, "estimate", None)
        if estimate is None:
            return None
        low += estimate.ci_low * site.dynamic
        high += estimate.ci_high * site.dynamic
    return low / total, high / total
