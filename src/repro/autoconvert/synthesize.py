"""Synthesis: rewrite a plain program into its DTT variant.

Given a finalized non-DTT program and a set of non-overlapping
:class:`~repro.autoconvert.candidates.ConversionCandidate` regions, emit
a new program in which, for each candidate ``k``:

* the region body becomes support thread ``auto{k}`` (copied
  instructions, internal branch targets relabeled, ``treturn`` at the
  region's fall-through exit);
* each feeder store is replaced in place by its triggering form
  (``st`` → ``tst``, ``stx`` → ``tstx``, operands unchanged);
* the region's old location in main collapses to a single
  ``tcheck`` — the consume barrier where the baseline recomputed;
* a *priming* copy of the region runs once at program entry, mirroring
  the hand conversions: the derived data must exist before the first
  consume even if no feeder has yet stored a changed value.

Parameterized candidates (``candidate.params`` non-empty) additionally
get a *recovery prologue* at the top of the thread body: each parameter
register is recomputed from the trigger-argument registers using the
:class:`~repro.analysis.symbolic.ParamRecovery` proof attached at
discovery time (``li`` for constants, ``subi param, r1, delta`` for a
single feeder region, a descending ``sge`` case chain when feeders
store into several disjoint regions).  Their trigger specs mirror the
hand conversions' dedupe idiom: a single feeder site gets per-*address*
dedupe (each trigger address names a distinct parameter instantiation,
like vpr's per-channel recompute), while several feeder sites keep
per-thread dedupe (they feed one instantiation in a burst, like
twolf's x/y pair — the engine's cancel-and-restart then coalesces the
burst into one recompute against final memory).  No priming copy is
emitted for them:
the parameters only exist once a trigger fires, and the baseline's own
initialization code (still in main, outside the region) covers the
pre-trigger state; the gate's output-equality check backstops this.

Data items are copied in the original order, so the loader layout is
identical and resolved ``la`` immediates survive verbatim — no symbol
re-patching.  Register safety is the candidate contract (the region
defines every register it reads and its definitions are dead at both
the region exit and program entry), which the discovery pass enforced
and the gate's static checks re-prove on the synthesized output.

Thread bodies are emitted before main, so ``tcheck`` thread ids (by
declaration order) resolve; the trigger specs use the *new* feeder pcs
with per-thread dedupe (one pending execution recomputes the whole
region, so per-address queue entries would be pure overhead).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.autoconvert.candidates import ConversionCandidate
from repro.errors import ProgramValidationError, SynthesisError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import operand_roles
from repro.isa.program import Program
from repro.isa.registers import (NUM_REGISTERS, TRIGGER_ADDR_REG,
                                 TRIGGER_OLD_VALUE_REG, TRIGGER_VALUE_REG)
from repro.workloads.base import DttBuild
from repro.core.registry import TriggerSpec

#: old store op -> its triggering form
_TRIGGERING_FORM = {"st": "tst", "stx": "tstx"}


class SynthesisResult:
    """A synthesized DTT build plus per-candidate provenance."""

    __slots__ = ("build", "conversions")

    def __init__(self, build: DttBuild, conversions: List[Dict]):
        self.build = build
        self.conversions = conversions

    @property
    def program(self) -> Program:
        return self.build.program

    def __repr__(self) -> str:
        return (f"SynthesisResult({len(self.conversions)} threads, "
                f"{len(self.build.program)} instructions)")


def synthesize(program: Program,
               candidates: Sequence[ConversionCandidate]) -> SynthesisResult:
    """Rewrite ``program`` with one support thread per candidate.

    Candidates may be given in any order; they are synthesized in
    region order.  Raises :class:`SynthesisError` on malformed input
    (unfinalized program, program already using DTT, overlapping
    regions, a feeder that is not a plain store) — conditions the gate
    counts as ``synthesis-failed``.
    """
    if not program.finalized:
        raise SynthesisError("program must be finalized before conversion")
    if program.threads:
        raise SynthesisError(
            f"program already declares threads {list(program.threads)}; "
            "automatic conversion starts from a plain program")
    ordered = sorted(candidates, key=lambda c: c.region_start)
    if not ordered:
        raise SynthesisError("no candidates to synthesize")
    for first, second in zip(ordered, ordered[1:]):
        if first.overlaps(second):
            raise SynthesisError(
                f"candidate regions overlap: pc {first.region_start}.."
                f"{first.region_end - 1} vs pc {second.region_start}.."
                f"{second.region_end - 1}")
    size = len(program)
    for candidate in ordered:
        if not 0 <= candidate.region_start < candidate.region_end <= size:
            raise SynthesisError(
                f"candidate region pc {candidate.region_start}.."
                f"{candidate.region_end - 1} outside program")
        for pc in candidate.store_pcs:
            op = program.instructions[pc].op
            if op not in _TRIGGERING_FORM:
                raise SynthesisError(
                    f"feeder at pc {pc} is {op!r}, not a plain store")
        if candidate.params and candidate.recovery is None:
            raise SynthesisError(
                f"candidate pc {candidate.region_start}.."
                f"{candidate.region_end - 1} is parameterized over "
                f"{sorted(candidate.params)} but carries no recovery proof")

    interior: Set[int] = set()
    start_of: Dict[int, ConversionCandidate] = {}
    feeder_of: Dict[int, List[int]] = {}
    for index, candidate in enumerate(ordered):
        start_of[candidate.region_start] = candidate
        interior.update(range(candidate.region_start + 1,
                              candidate.region_end))
        for pc in candidate.store_pcs:
            feeder_of.setdefault(pc, []).append(index)
    for candidate in ordered:
        for pc in candidate.store_pcs:
            if pc in interior or pc in start_of:
                raise SynthesisError(
                    f"feeder at pc {pc} lies inside another candidate's "
                    "region; it would become thread code and never trigger")

    b = ProgramBuilder()
    for item in program.data_items:
        b.data(item.name, item.values)

    # thread bodies first: tcheck ids are declaration-order indices
    for index, candidate in enumerate(ordered):
        with b.thread(_thread_name(index)):
            _emit_param_prologue(b, program, candidate, f"__ac{index}")
            _copy_region(b, program, candidate, f"__ac{index}")
            b.treturn()

    new_feeder_pcs: List[List[int]] = [[] for _ in ordered]
    tcheck_pcs: List[int] = [-1] * len(ordered)
    newpos: Dict[int, int] = {}
    for pc in range(size):
        newpos[pc] = len(b.program.instructions)
        if pc not in interior:
            for name in program.labels_at(pc):
                b.label(name)
        if pc == program.entry_pc:
            for index, candidate in enumerate(ordered):
                if not candidate.params:
                    _copy_region(b, program, candidate, f"__ac_prime{index}")
        candidate = start_of.get(pc)
        if candidate is not None:
            index = ordered.index(candidate)
            tcheck_pcs[index] = b.tcheck_thread(_thread_name(index))
            continue
        if pc in interior:
            continue
        instruction = program.instructions[pc]
        if pc in feeder_of:
            new_pc = b.emit(_TRIGGERING_FORM[instruction.op],
                            instruction.a, instruction.b, instruction.c)
            for index in feeder_of[pc]:
                new_feeder_pcs[index].append(new_pc)
            continue
        b.emit(instruction.op, instruction.a, instruction.b,
               instruction.c, label=instruction.label)
    newpos[size] = len(b.program.instructions)
    for name in program.labels_at(size):
        b.label(name)

    for function in program.functions:
        b.program.add_function(function.name, newpos[function.start],
                               newpos[function.end])

    try:
        new_program = b.build(entry=program.entry_label)
    except ProgramValidationError as exc:
        raise SynthesisError(f"synthesized program invalid: {exc}") from exc

    specs = [
        TriggerSpec(_thread_name(index), store_pcs=new_feeder_pcs[index],
                    per_address_dedupe=(bool(candidate.params)
                                        and len(candidate.store_pcs) == 1))
        for index, candidate in enumerate(ordered)
    ]
    conversions = []
    for index, candidate in enumerate(ordered):
        row = {
            "thread": _thread_name(index),
            "region_start": candidate.region_start,
            "region_end": candidate.region_end,
            "feeder_pcs": list(candidate.store_pcs),
            "new_feeder_pcs": list(new_feeder_pcs[index]),
            "tcheck_pc": tcheck_pcs[index],
            "thread_entry_pc": new_program.thread_entry_pc(
                _thread_name(index)),
        }
        if candidate.params:
            row["params"] = [f"r{reg}" for reg in candidate.params]
            row["recovery"] = candidate.recovery.as_dict()
        conversions.append(row)
    return SynthesisResult(DttBuild(new_program, specs), conversions)


def _thread_name(index: int) -> str:
    return f"auto{index}"


def _scratch_register(program: Program,
                      candidate: ConversionCandidate) -> int:
    """A register the recovery prologue may clobber freely.

    Anything the region itself touches, the parameters, and the
    trigger-argument registers are off limits; the highest-numbered
    remaining register wins (the suite leaves the top of the file
    untouched, so this never collides in practice).
    """
    reserved = {0, TRIGGER_ADDR_REG, TRIGGER_VALUE_REG,
                TRIGGER_OLD_VALUE_REG, *candidate.params}
    for pc in range(candidate.region_start, candidate.region_end):
        instruction = program.instructions[pc]
        dest, sources = operand_roles(instruction.op)
        for slot in sources if dest is None else (dest,) + sources:
            reserved.add(getattr(instruction, slot))
    for reg in range(NUM_REGISTERS - 1, 0, -1):
        if reg not in reserved:
            return reg
    raise SynthesisError(
        f"no scratch register free for recovery prologue of region "
        f"pc {candidate.region_start}..{candidate.region_end - 1}")


def _emit_param_prologue(b: ProgramBuilder, program: Program,
                         candidate: ConversionCandidate,
                         prefix: str) -> None:
    """Recompute each parameter register from the trigger arguments.

    Follows the candidate's :class:`ParamRecovery` proof: constants are
    materialized with ``li``; a single-feeder-region parameter is
    ``param = r1 - delta``; several feeder regions become a descending
    ``sge`` case chain on the trigger address (the same shape the hand
    twolf conversion uses to tell its x- and y-array triggers apart).
    Parameters equal to ``r1`` are recovered last so earlier cases can
    still read the trigger address.
    """
    if not candidate.params:
        return
    plans = candidate.recovery.plans
    for reg in sorted(candidate.params,
                      key=lambda r: (r == TRIGGER_ADDR_REG, r)):
        plan = plans.get(reg)
        if plan is None:
            raise SynthesisError(
                f"no recovery plan for parameter r{reg} of region "
                f"pc {candidate.region_start}..{candidate.region_end - 1}")
        if plan[0] == "const":
            b.li(reg, plan[1])
            continue
        cases = plan[1]  # [(region_lo, region_hi, delta)], descending lo
        if len(cases) == 1:
            b.subi(reg, TRIGGER_ADDR_REG, cases[0][2])
            continue
        scratch = _scratch_register(program, candidate)
        done = f"{prefix}_p{reg}_done"
        for case_index, (lo, _hi, delta) in enumerate(cases[:-1]):
            skip = f"{prefix}_p{reg}_c{case_index}"
            b.li(scratch, lo)
            b.sge(scratch, TRIGGER_ADDR_REG, scratch)
            b.beqz(scratch, skip)
            b.subi(reg, TRIGGER_ADDR_REG, delta)
            b.jmp(done)
            b.label(skip)
        b.subi(reg, TRIGGER_ADDR_REG, cases[-1][2])
        b.label(done)


def _copy_region(b: ProgramBuilder, program: Program,
                 candidate: ConversionCandidate, prefix: str) -> None:
    """Emit a relabeled copy of the candidate's region instructions.

    Internal branch targets ``t`` become ``{prefix}_pc{t}``; branches to
    the region's fall-through exit become ``{prefix}_end``, bound just
    after the last copied instruction (the ``treturn`` in a thread body,
    the continuation in a priming copy).
    """
    start, end = candidate.region_start, candidate.region_end
    targets: Set[int] = set()
    for pc in range(start, end):
        instruction = program.instructions[pc]
        target = getattr(instruction, "target", None)
        if instruction.label is None or target is None:
            continue
        if not start <= target <= end:
            raise SynthesisError(
                f"branch at pc {pc} leaves region pc {start}..{end - 1} "
                f"(target {target})")
        targets.add(target)
    for pc in range(start, end):
        if pc in targets:
            b.label(f"{prefix}_pc{pc}")
        instruction = program.instructions[pc]
        if instruction.label is not None:
            target = instruction.target
            name = (f"{prefix}_end" if target == end
                    else f"{prefix}_pc{target}")
            b.emit(instruction.op, instruction.a, instruction.b,
                   instruction.c, label=name)
        else:
            b.emit(instruction.op, instruction.a, instruction.b,
                   instruction.c)
    b.label(f"{prefix}_end")
