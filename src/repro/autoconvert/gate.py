"""Acceptance gate: prove and measure before accepting a conversion.

The converter never trusts a candidate.  Each one must survive, in
order:

1. **synthesis** — the rewrite itself must succeed (structural
   contract: non-overlapping regions, plain-store feeders);
2. **static proof** — the seven safety checks of
   :mod:`repro.analysis.checks` report **zero errors** on the
   synthesized program under the same DTT config the engine will run
   (shared granularity widening and all);
3. **functional proof** — a full DTT run's output is bit-identical to
   the baseline's;
4. **measurement** — the timing simulator shows a cycle win at least
   ``min_speedup`` over the unconverted baseline, and a strict
   improvement over the best build accepted so far.

The search is greedy over the profile-ranked candidates: each new
candidate is re-proven *jointly* with everything already accepted, so
an accepted set is always a proven, measured build.  Every considered
candidate gets a counted outcome (:data:`REJECTION_REASONS`), recorded
in the run manifest for provenance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.checks import analyze_program, analysis_summary
from repro.autoconvert.candidates import (ConversionCandidate,
                                          rank_candidates)
from repro.autoconvert.synthesize import SynthesisResult, synthesize
from repro.errors import SynthesisError
from repro.machine.machine import Machine, run_to_completion
from repro.isa.program import Program
from repro.profiling.redundancy import RedundantLoadProfiler
from repro.timing.params import named_config
from repro.timing.system import TimingSimulator

#: every way the gate can reject a candidate, with what each means;
#: documented one-for-one in docs/architecture.md
REJECTION_REASONS = {
    "overlaps-accepted":
        "region shares instructions with an already-accepted candidate",
    "synthesis-failed":
        "the instruction-stream rewrite raised SynthesisError",
    "analysis-errors":
        "the static safety checks found at least one error",
    "output-mismatch":
        "the converted program's output diverged from the baseline",
    "no-cycle-win":
        "the timing simulator showed no improvement at min_speedup",
}


class ConversionResult:
    """Outcome of :func:`convert_program`: the accepted build + audit."""

    __slots__ = ("accepted", "synthesis", "outcomes", "rejected",
                 "considered", "baseline_cycles", "cycles",
                 "baseline_redundant", "dtt_redundant")

    def __init__(self, baseline_cycles: int, baseline_redundant: int):
        self.accepted: List[ConversionCandidate] = []
        #: synthesis of the accepted set; None when nothing was accepted
        self.synthesis: Optional[SynthesisResult] = None
        #: per-considered-candidate audit rows, in ranked order
        self.outcomes: List[Dict] = []
        self.rejected: Dict[str, int] = {}
        self.considered = 0
        self.baseline_cycles = baseline_cycles
        self.cycles = baseline_cycles
        self.baseline_redundant = baseline_redundant
        self.dtt_redundant = baseline_redundant

    @property
    def build(self):
        """The accepted :class:`~repro.workloads.base.DttBuild`, or None."""
        return self.synthesis.build if self.synthesis else None

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.cycles if self.cycles else 0.0

    @property
    def elimination(self) -> float:
        """Fraction of the baseline's redundant loads the conversion
        removed (the paper's redundant-computation elimination, E1)."""
        if not self.baseline_redundant:
            return 0.0
        return 1.0 - self.dtt_redundant / self.baseline_redundant

    def _note(self, candidate: ConversionCandidate, outcome: str,
              reason: Optional[str] = None) -> None:
        row = dict(candidate.as_dict(), outcome=outcome)
        if reason is not None:
            row["reason"] = reason
            self.rejected[reason] = self.rejected.get(reason, 0) + 1
        self.outcomes.append(row)

    def provenance(self) -> Dict:
        """JSON-ready record for the run manifest (schema v6)."""
        return {
            "considered": self.considered,
            "accepted": [c.as_dict() for c in self.accepted],
            "rejected": dict(sorted(self.rejected.items())),
            "outcomes": self.outcomes,
            "baseline_cycles": self.baseline_cycles,
            "cycles": self.cycles,
            "speedup": round(self.speedup, 6),
            "elimination": round(self.elimination, 6),
            "conversions": (self.synthesis.conversions
                            if self.synthesis else []),
        }

    def __repr__(self) -> str:
        return (f"ConversionResult({len(self.accepted)}/{self.considered} "
                f"accepted, speedup={self.speedup:.3f}, "
                f"elimination={self.elimination:.1%})")


def convert_program(
    program: Program,
    top_k: int = 8,
    min_speedup: float = 1.0,
    config_name: str = "smt2",
    dtt_config=None,
    sample_rate: Optional[int] = None,
    sample_seed: int = 0,
    min_dynamic_stores: int = 4,
    max_instructions: int = 20_000_000,
) -> ConversionResult:
    """Automatically convert ``program`` to DTT form, proving each step.

    Ranks candidates (optionally from a sampled profile), then greedily
    accepts each one that — jointly with the already-accepted set —
    passes static analysis with zero errors, reproduces the baseline
    output exactly, and improves simulated cycles by at least
    ``min_speedup`` (and strictly over the best accepted build).
    """
    ranked = rank_candidates(program,
                             min_dynamic_stores=min_dynamic_stores,
                             sample_rate=sample_rate,
                             sample_seed=sample_seed,
                             max_instructions=max_instructions)[:top_k]
    system = named_config(config_name)
    baseline_output, baseline_redundant = _functional(
        program, None, None, max_instructions)
    baseline_cycles = TimingSimulator(
        program, system, max_instructions=max_instructions).run().cycles

    result = ConversionResult(baseline_cycles, baseline_redundant)
    result.considered = len(ranked)
    for candidate in ranked:
        if any(candidate.overlaps(other) for other in result.accepted):
            result._note(candidate, "rejected", "overlaps-accepted")
            continue
        try:
            synthesis = synthesize(program, result.accepted + [candidate])
        except SynthesisError:
            result._note(candidate, "rejected", "synthesis-failed")
            continue
        findings = analyze_program(synthesis.program, synthesis.build.specs,
                                   config=dtt_config)
        if analysis_summary(findings)["errors"]:
            result._note(candidate, "rejected", "analysis-errors")
            continue
        output, dtt_redundant = _functional(
            synthesis.program, synthesis.build, dtt_config, max_instructions)
        if output != baseline_output:
            result._note(candidate, "rejected", "output-mismatch")
            continue
        engine = synthesis.build.engine(config=dtt_config, deferred=True)
        cycles = TimingSimulator(
            synthesis.program, system, engine=engine,
            max_instructions=max_instructions).run().cycles
        wins = (cycles and baseline_cycles / cycles >= min_speedup
                and cycles < result.cycles)
        if not wins:
            result._note(candidate, "rejected", "no-cycle-win")
            continue
        result.accepted.append(candidate)
        result.synthesis = synthesis
        result.cycles = cycles
        result.dtt_redundant = dtt_redundant
        result._note(candidate, "accepted")
    return result


def _functional(program: Program, build, dtt_config, max_instructions):
    """One profiled functional run; returns (output, redundant loads)."""
    machine = Machine(program, num_contexts=2,
                      max_instructions=max_instructions)
    if build is not None:
        machine.attach_engine(build.engine(config=dtt_config))
    profiler = RedundantLoadProfiler()
    machine.add_observer(profiler)
    output = run_to_completion(machine)
    return output, profiler.redundant_loads
