"""Automatic DTT conversion: profile → synthesize → prove → accept.

The paper's conversions (and the 17 hand builds in
:mod:`repro.workloads`) were produced by a human reading profiles.  This
package closes that loop for *builder-shaped* programs:

* :mod:`repro.autoconvert.candidates` — finds store-site → consumer-region
  pairs in a finalized non-DTT program (static single-entry/single-exit
  region discovery over the CFG, then redundancy-profiler scoring:
  silent-store fraction of the feeding stores × downstream
  redundant-load mass of the region, CI-lower-bound ranked when the
  profile is sampled);
* :mod:`repro.autoconvert.synthesize` — rewrites the instruction stream:
  region body → support thread with ``treturn``, feeding stores →
  triggering stores, a ``tcheck`` where the region used to run, plus a
  priming copy at entry, with branch targets re-resolved and register
  safety guaranteed by the candidate contract;
* :mod:`repro.autoconvert.gate` — accepts a candidate only when the
  seven static safety checks report zero errors, the functional output
  is bit-identical to the baseline, *and* the timing simulator shows a
  cycle win; greedy search over the ranked candidate set with counted
  rejection reasons.

Surface: ``dtt-harness convert --workload <w>`` and
:func:`repro.autoconvert.gate.convert_program`.
"""

from repro.autoconvert.candidates import (ConversionCandidate,
                                          discover_candidates,
                                          rank_candidates)
from repro.autoconvert.gate import (REJECTION_REASONS, ConversionResult,
                                    convert_program)
from repro.autoconvert.synthesize import SynthesisResult, synthesize

__all__ = [
    "ConversionCandidate",
    "ConversionResult",
    "REJECTION_REASONS",
    "SynthesisResult",
    "convert_program",
    "discover_candidates",
    "rank_candidates",
    "synthesize",
]
