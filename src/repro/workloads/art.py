"""``art`` — adaptive-resonance neural network scan.

179.art trains an ART neural network: the match/scan phase repeatedly
combines the F1→F2 weight matrix with the current input pattern, and the
per-neuron weight norms it uses are recomputed from weights that training
only occasionally nudges (most weight writes are clipped back to the same
value).  The paper's conversion attaches the norm computation to the
weight stores.

Our kernel: a weight matrix W (f1 × f2, flattened row-major), derived
per-output-neuron norms ``norm[j] = Σ_i W[i·f2+j]``, and a main loop that,
per step: applies one training write to a weight (usually silent), then
runs the match scan — ``act[j] = Σ_i W[i·f2+j]·p[i]`` against the current
pattern, scores ``act[j] − norm[j]·0.125``, and emits the winning neuron
index and a running score checksum.  The pattern decays and is re-driven
every step, so the scan itself is not convertible.

The DTT build's support thread recomputes exactly one column norm (the
column of the written weight), keyed per address.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import rng_for, update_schedule

#: vigilance-like bias applied to the norm in the score
NORM_BIAS = 0.125


class ArtWorkload(Workload):
    """179.art analog: neural-net match scan; see the module docstring."""

    name = "art"
    description = "neural-network match scan with slowly-trained weights"
    converted_region = "per-neuron weight-norm recomputation"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.16

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        f1 = 12 * scale
        f2 = 10
        steps = 70 * scale
        rng = rng_for(seed, "art-weights")
        weights_int = [rng.randint(1, 8) for _ in range(f1 * f2)]
        weights = [float(v) for v in weights_int]
        upd_idx, upd_val_int = update_schedule(
            seed, steps, weights_int, self.change_rate, (1, 8),
            stream="art-updates",
        )
        upd_val = [float(v) for v in upd_val_int]
        pattern0 = [round(rng.uniform(0.0, 1.0), 3) for _ in range(f1)]
        drive = [round(rng.uniform(0.0, 0.5), 3) for _ in range(steps)]
        return WorkloadInput(
            seed, scale, f1=f1, f2=f2, steps=steps,
            weights=weights, upd_idx=upd_idx, upd_val=upd_val,
            pattern0=pattern0, drive=drive,
        )

    # -- reference ------------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[float]:
        weights = list(inp.weights)
        pattern = list(inp.pattern0)
        f1, f2 = inp.f1, inp.f2
        norm = [0.0] * f2
        output: List[float] = []
        checksum = 0.0
        for step in range(inp.steps):
            weights[inp.upd_idx[step]] = inp.upd_val[step]
            for j in range(f2):
                s = 0.0
                for i in range(f1):
                    s = s + weights[i * f2 + j]
                norm[j] = s
            best = 0
            best_score = None
            for j in range(f2):
                act = 0.0
                for i in range(f1):
                    act = act + weights[i * f2 + j] * pattern[i]
                score = act - norm[j] * NORM_BIAS
                if best_score is None or score > best_score:
                    best_score = score
                    best = j
            checksum = checksum + best_score + float(best)
            output.append(checksum)
            for i in range(f1):
                pattern[i] = pattern[i] * 0.75 + inp.drive[step]
        return output

    # -- codegen -----------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("weights", inp.weights)
        b.zeros("norm", inp.f2)
        b.data("pattern", inp.pattern0)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("drive", inp.drive)

    def _emit_norm_one(self, b: ProgramBuilder, inp: WorkloadInput, j) -> None:
        """norm[j] = Σ_i weights[i*f2 + j]."""
        with b.scratch(4, "nm") as (wbase, s, i, v):
            b.la(wbase, "weights")
            b.li(s, 0.0)
            with b.for_range(i, 0, inp.f1):
                with b.scratch(1, "sl") as (slot,):
                    b.muli(slot, i, inp.f2)
                    b.add(slot, slot, j)
                    b.ldx(v, wbase, slot)
                    b.fadd(s, s, v)
            with b.scratch(1, "nb") as (nbase,):
                b.la(nbase, "norm")
                b.stx(s, nbase, j)

    def _emit_all_norms(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        with b.scratch(1, "j") as (j,):
            with b.for_range(j, 0, inp.f2):
                self._emit_norm_one(b, inp, j)

    def _emit_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "wb") as (wbase,):
                b.la(wbase, "weights")
                if triggering:
                    return b.tstx(val, wbase, idx)
                return b.stx(val, wbase, idx)

    def _emit_match(self, b: ProgramBuilder, inp: WorkloadInput, t, checksum):
        """Scan all neurons, score, track the winner, emit the checksum."""
        with b.scratch(6, "mt") as (wbase, pbase, nbase, best, best_score, j):
            b.la(wbase, "weights")
            b.la(pbase, "pattern")
            b.la(nbase, "norm")
            b.li(best, 0)
            b.li(best_score, -1.0e30)
            with b.for_range(j, 0, inp.f2):
                with b.scratch(3, "m2") as (act, i, v):
                    b.li(act, 0.0)
                    with b.for_range(i, 0, inp.f1):
                        with b.scratch(2, "m3") as (slot, pv):
                            b.muli(slot, i, inp.f2)
                            b.add(slot, slot, j)
                            b.ldx(v, wbase, slot)
                            b.ldx(pv, pbase, i)
                            b.fmul(v, v, pv)
                            b.fadd(act, act, v)
                    with b.scratch(2, "sc") as (nj, bias):
                        b.ldx(nj, nbase, j)
                        b.li(bias, NORM_BIAS)
                        b.fmul(nj, nj, bias)
                        b.fsub(act, act, nj)
                    with b.scratch(1, "cmp") as (better,):
                        b.sgt(better, act, best_score)
                        with b.if_(better):
                            b.mov(best_score, act)
                            b.mov(best, j)
            with b.scratch(1, "bf") as (bf,):
                b.itof(bf, best)
                b.fadd(checksum, checksum, best_score)
                b.fadd(checksum, checksum, bf)
        b.out(checksum)
        # decay and re-drive the pattern
        with b.scratch(4, "dc") as (pbase, dbase, dv, i):
            b.la(pbase, "pattern")
            b.la(dbase, "drive")
            b.ldx(dv, dbase, t)
            with b.for_range(i, 0, inp.f1):
                with b.scratch(2, "d2") as (pv, k):
                    b.ldx(pv, pbase, i)
                    b.li(k, 0.75)
                    b.fmul(pv, pv, k)
                    b.fadd(pv, pv, dv)
                    b.stx(pv, pbase, i)

    # -- builds --------------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0.0)
            with b.for_range(t, 0, inp.steps):
                self._emit_update(b, t, triggering=False)
                self._emit_all_norms(b, inp)
                self._emit_match(b, inp, t, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("normthr"):
            # r1 = changed weight's address; its column is slot mod f2
            with b.scratch(3, "th") as (wbase, slot, j):
                b.la(wbase, "weights")
                b.sub(slot, b.trigger_addr, wbase)
                with b.scratch(1, "f2") as (f2r,):
                    b.li(f2r, inp.f2)
                    b.imod(j, slot, f2r)
                self._emit_norm_one(b, inp, j)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0.0)
            self._emit_all_norms(b, inp)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_update(b, t, triggering=True))
                b.tcheck_thread("normthr")
                self._emit_match(b, inp, t, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("normthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=True)
        return DttBuild(program, [spec])
