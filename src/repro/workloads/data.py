"""Seeded input generators shared by the workload suite.

Everything here is deterministic in its arguments (explicit
``random.Random`` seeds), so every experiment is exactly reproducible.

The central generator is :func:`update_schedule`: the sequence of writes a
kernel's main loop performs against its watched data.  Its
``change_rate`` — the probability that a write actually changes the value
— is the workload-level knob that calibrates redundancy: the paper found
most writes in the C SPEC codes to be value-redundant (78 % of loads fetch
redundant data), and each workload's default change rate is chosen to land
its profile in the corresponding band (see DESIGN.md).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def rng_for(seed: int, stream: str) -> random.Random:
    """Independent deterministic stream derived from (seed, stream name)."""
    return random.Random(f"{seed}:{stream}")


def update_schedule(
    seed: int,
    steps: int,
    current: Sequence[int],
    change_rate: float,
    value_range: Tuple[int, int] = (1, 64),
    stream: str = "updates",
) -> Tuple[List[int], List[int]]:
    """Generate ``steps`` writes against an array with contents ``current``.

    Returns ``(indices, values)``.  With probability ``change_rate`` the
    write stores a fresh value different from the current one; otherwise it
    rewrites the value already there (a silent store).  ``current`` is
    tracked internally so later writes see earlier ones.
    """
    if not 0.0 <= change_rate <= 1.0:
        raise ValueError(f"change_rate must be in [0, 1], got {change_rate}")
    rng = rng_for(seed, stream)
    shadow = list(current)
    lo, hi = value_range
    indices: List[int] = []
    values: List[int] = []
    for _ in range(steps):
        index = rng.randrange(len(shadow))
        if rng.random() < change_rate:
            value = rng.randint(lo, hi)
            while value == shadow[index]:
                value = rng.randint(lo, hi)
        else:
            value = shadow[index]
        shadow[index] = value
        indices.append(index)
        values.append(value)
    return indices, values


def int_array(seed: int, size: int, value_range: Tuple[int, int] = (1, 64),
              stream: str = "array") -> List[int]:
    """Random integer array."""
    rng = rng_for(seed, stream)
    lo, hi = value_range
    return [rng.randint(lo, hi) for _ in range(size)]


def index_array(seed: int, size: int, limit: int,
                stream: str = "indices") -> List[int]:
    """Random indices in [0, limit)."""
    rng = rng_for(seed, stream)
    return [rng.randrange(limit) for _ in range(size)]


def random_tree_parents(seed: int, num_nodes: int,
                        stream: str = "tree") -> List[int]:
    """A random rooted tree in preorder: ``parent[i] < i``, root = 0.

    Preorder means a single ascending scan visits parents before children
    — exactly what mcf's ``refresh_potential`` relies on.
    """
    rng = rng_for(seed, stream)
    parents = [0] * num_nodes
    for node in range(1, num_nodes):
        # bias toward recent nodes for realistic (deep-ish) tree shapes
        lo = max(0, node - 16)
        parents[node] = rng.randrange(lo, node)
    return parents


def sparse_matrix_csr(
    seed: int,
    num_rows: int,
    nnz_per_row: int,
    value_range: Tuple[int, int] = (1, 9),
    stream: str = "csr",
) -> Tuple[List[int], List[int], List[int]]:
    """Random CSR matrix: (row_ptr, col_idx, values), sorted columns."""
    rng = rng_for(seed, stream)
    row_ptr = [0]
    col_idx: List[int] = []
    values: List[int] = []
    lo, hi = value_range
    for _ in range(num_rows):
        cols = sorted(rng.sample(range(num_rows), min(nnz_per_row, num_rows)))
        col_idx.extend(cols)
        values.extend(rng.randint(lo, hi) for _ in cols)
        row_ptr.append(len(col_idx))
    return row_ptr, col_idx, values


def grid_positions(seed: int, num_cells: int, grid: int,
                   stream: str = "grid") -> Tuple[List[int], List[int]]:
    """Random (x, y) placement of cells on a grid x grid board."""
    rng = rng_for(seed, stream)
    xs = [rng.randrange(grid) for _ in range(num_cells)]
    ys = [rng.randrange(grid) for _ in range(num_cells)]
    return xs, ys


def nets(seed: int, num_nets: int, num_cells: int, pins_per_net: int,
         stream: str = "nets") -> List[List[int]]:
    """Random nets: each a list of distinct cell ids."""
    rng = rng_for(seed, stream)
    result = []
    for _ in range(num_nets):
        result.append(rng.sample(range(num_cells), min(pins_per_net, num_cells)))
    return result


def symbol_blocks(seed: int, num_blocks: int, block_size: int,
                  alphabet: int = 16, repeat_rate: float = 0.8,
                  stream: str = "blocks") -> List[List[int]]:
    """Blocks of symbols with heavy inter-block repetition.

    Compression inputs repeat *locally*: with probability ``repeat_rate``
    a block is identical to its predecessor (so re-writing it into the
    working buffer is entirely silent); otherwise it is drawn from a small
    pool of distinct blocks.
    """
    rng = rng_for(seed, stream)
    pool = [
        [rng.randrange(alphabet) for _ in range(block_size)]
        for _ in range(max(2, num_blocks // 6))
    ]
    blocks: List[List[int]] = []
    for i in range(num_blocks):
        if blocks and rng.random() < repeat_rate:
            blocks.append(list(blocks[-1]))
        else:
            blocks.append(list(rng.choice(pool)))
    return blocks
