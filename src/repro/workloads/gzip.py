"""``gzip`` — deflate-style cost tables over a stationary symbol stream.

164.gzip rebuilds Huffman cost tables block after block even though the
input's symbol statistics barely move: the frequency *classes* that decide
code lengths almost never change between blocks.  The paper's conversion
fires the table rebuild from the stores that would change a class.

Our kernel: an input stream processed in chunks.  Per chunk:

* a histogram of the chunk is taken (fresh input — non-redundant loads);
* each symbol's frequency *class* (hot/cold against a threshold) is
  stored with a triggering store — across chunks these classes are almost
  always unchanged, so the stores are silent;
* the derived code-length table (a per-symbol loop "descending the code
  tree") is rebuilt — by the baseline every chunk, by the DTT build only
  when some class actually flipped;
* the chunk is costed: ``cost += codelen[sym]`` for every input symbol,
  and the running cost is emitted.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import rng_for

ALPHABET = 16
#: code-tree depth walked per symbol when rebuilding the table
TREE_DEPTH = 6
#: a symbol is "hot" when its chunk count is >= chunk_len / HOT_DIVISOR
HOT_DIVISOR = 8


class GzipWorkload(Workload):
    """164.gzip analog: deflate cost tables; see the module docstring."""

    name = "gzip"
    description = "deflate cost-table rebuild over a stationary stream"
    converted_region = "code-length table rebuild from frequency classes"
    default_scale = 1
    default_seed = 1234

    chunk_len = 48

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        steps = 70 * scale
        rng = rng_for(seed, "gzip-stream")
        # a stationary skewed source: low symbols dominate, with occasional
        # bursts that flip a class for a while
        stream: List[int] = []
        burst_until = 0
        burst_symbol = 0
        for chunk in range(steps):
            if chunk >= burst_until and rng.random() < 0.08:
                burst_until = chunk + rng.randint(2, 5)
                burst_symbol = rng.randrange(ALPHABET // 2, ALPHABET)
            for _ in range(self.chunk_len):
                if chunk < burst_until and rng.random() < 0.5:
                    stream.append(burst_symbol)
                elif rng.random() < 0.75:
                    stream.append(rng.randrange(ALPHABET // 4))
                else:
                    stream.append(rng.randrange(ALPHABET))
        return WorkloadInput(
            seed, scale, steps=steps, chunk_len=self.chunk_len, stream=stream,
        )

    # -- reference -------------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        cls = [0] * ALPHABET
        codelen = [0] * ALPHABET
        threshold = inp.chunk_len // HOT_DIVISOR
        cost = 0
        output: List[int] = []
        for chunk in range(inp.steps):
            base = chunk * inp.chunk_len
            hist = [0] * ALPHABET
            for i in range(inp.chunk_len):
                hist[inp.stream[base + i]] += 1
            for s in range(ALPHABET):
                cls[s] = 1 if hist[s] >= threshold else 0
            for s in range(ALPHABET):
                length = 1
                for _ in range(TREE_DEPTH):
                    if cls[s] == 0:
                        length += 2
                    else:
                        length += 1
                codelen[s] = length
            for i in range(inp.chunk_len):
                cost += codelen[inp.stream[base + i]]
            output.append(cost)
        return output

    # -- codegen -----------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("stream", inp.stream)
        b.zeros("hist", ALPHABET)
        b.zeros("cls", ALPHABET)
        b.zeros("codelen", ALPHABET)

    def _emit_histogram_and_classes(self, b: ProgramBuilder,
                                    inp: WorkloadInput, t,
                                    triggering: bool) -> Optional[int]:
        """Histogram the chunk, then (t)store each symbol's class."""
        store_pc = None
        with b.scratch(5, "hg") as (sbase, hbase, base, i, s):
            b.la(sbase, "stream")
            b.la(hbase, "hist")
            b.muli(base, t, inp.chunk_len)
            with b.scratch(1, "z") as (zero,):
                b.li(zero, 0)
                with b.for_range(i, 0, ALPHABET):
                    b.stx(zero, hbase, i)
            with b.for_range(i, 0, inp.chunk_len):
                with b.scratch(2, "h2") as (slot, count):
                    b.add(slot, base, i)
                    b.ldx(s, sbase, slot)
                    b.ldx(count, hbase, s)
                    b.addi(count, count, 1)
                    b.stx(count, hbase, s)
            with b.scratch(2, "cl") as (cbase, threshold):
                b.la(cbase, "cls")
                b.li(threshold, inp.chunk_len // HOT_DIVISOR)
                with b.for_range(s, 0, ALPHABET):
                    with b.scratch(2, "c2") as (count, hot):
                        b.ldx(count, hbase, s)
                        b.sge(hot, count, threshold)
                        if triggering:
                            pc = b.tstx(hot, cbase, s)
                        else:
                            pc = b.stx(hot, cbase, s)
                        if store_pc is None:
                            store_pc = pc
        return store_pc

    def _emit_rebuild_table(self, b: ProgramBuilder) -> None:
        """codelen[s] from cls[s]: walk TREE_DEPTH levels per symbol."""
        with b.scratch(4, "tb") as (cbase, lbase, s, length):
            b.la(cbase, "cls")
            b.la(lbase, "codelen")
            with b.for_range(s, 0, ALPHABET):
                with b.scratch(2, "t2") as (c, k):
                    b.ldx(c, cbase, s)
                    b.li(length, 1)
                    with b.for_range(k, 0, TREE_DEPTH):
                        with b.if_zero(c) as branch:
                            b.addi(length, length, 2)
                            branch.else_()
                            b.addi(length, length, 1)
                    b.stx(length, lbase, s)

    def _emit_cost_chunk(self, b: ProgramBuilder, inp: WorkloadInput, t,
                         cost) -> None:
        with b.scratch(5, "ck") as (sbase, lbase, base, i, s):
            b.la(sbase, "stream")
            b.la(lbase, "codelen")
            b.muli(base, t, inp.chunk_len)
            with b.for_range(i, 0, inp.chunk_len):
                with b.scratch(2, "c2") as (slot, length):
                    b.add(slot, base, i)
                    b.ldx(s, sbase, slot)
                    b.ldx(length, lbase, s)
                    b.add(cost, cost, length)
        b.out(cost)

    # -- builds ------------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            cost = b.global_reg("cost")
            b.li(cost, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_histogram_and_classes(b, inp, t, triggering=False)
                self._emit_rebuild_table(b)
                self._emit_cost_chunk(b, inp, t, cost)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("tablethr"):
            self._emit_rebuild_table(b)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            cost = b.global_reg("cost")
            b.li(cost, 0)
            # build the table once up front so symbols whose class never
            # changes still have valid code lengths
            self._emit_rebuild_table(b)
            with b.for_range(t, 0, inp.steps):
                pc = self._emit_histogram_and_classes(b, inp, t, triggering=True)
                if not pc_box:
                    pc_box.append(pc)
                b.tcheck_thread("tablethr")
                self._emit_cost_chunk(b, inp, t, cost)
            b.halt()
        program = b.build()
        spec = TriggerSpec("tablethr", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
