"""``ammp`` — molecular dynamics with slowly-changing charge products.

188.ammp computes molecular mechanics: the nonbonded force loop combines
per-pair constants (derived from atom charges and types) with geometry.
Charges change only when the simulation reassigns them — rarely — while
positions change every step, so the per-pair constant table is recomputed
from unchanged inputs nearly every time.  The paper's conversion triggers
that recomputation on charge stores.

Our kernel: N atoms with 1-D positions and charges, a fixed neighbor pair
list, derived per-pair Coulomb constants ``cpair[p] = q[i(p)] · q[j(p)]``.
Per step: one charge write (usually silent), then the force accumulation
``F += cpair[p] · (pos[i] − pos[j])`` over all pairs, then a position
advance — geometry work that is not convertible.

The DTT support thread recomputes the pairs adjacent to the changed atom,
using a per-atom CSR over the pair list (``apair_ptr`` / ``apair_idx``),
keyed per charge address.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import rng_for, update_schedule


class AmmpWorkload(Workload):
    """188.ammp analog: MD nonbond constants; see the module docstring."""

    name = "ammp"
    description = "MD nonbond loop with rarely-reassigned charges"
    converted_region = "per-pair charge-product (cpair) table"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.15
    pairs_per_atom = 3

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_atoms = 40 * scale
        steps = 80 * scale
        rng = rng_for(seed, "ammp-geometry")
        # neighbor pairs: each atom paired with pairs_per_atom later atoms
        pair_i: List[int] = []
        pair_j: List[int] = []
        for atom in range(num_atoms):
            for _ in range(self.pairs_per_atom):
                other = rng.randrange(num_atoms - 1)
                if other >= atom:
                    other += 1
                pair_i.append(atom)
                pair_j.append(other)
        num_pairs = len(pair_i)
        # per-atom CSR over pairs (pairs where the atom appears on either side)
        adjacency: List[List[int]] = [[] for _ in range(num_atoms)]
        for p in range(num_pairs):
            adjacency[pair_i[p]].append(p)
            adjacency[pair_j[p]].append(p)
        apair_ptr = [0]
        apair_idx: List[int] = []
        for atom in range(num_atoms):
            apair_idx.extend(adjacency[atom])
            apair_ptr.append(len(apair_idx))
        charges_int = [rng.randint(1, 5) for _ in range(num_atoms)]
        charges = [float(c) for c in charges_int]
        upd_idx, upd_val_int = update_schedule(
            seed, steps, charges_int, self.change_rate, (1, 5),
            stream="ammp-updates",
        )
        upd_val = [float(v) for v in upd_val_int]
        pos0 = [round(rng.uniform(0.0, 10.0), 3) for _ in range(num_atoms)]
        drive = [round(rng.uniform(-0.2, 0.2), 3) for _ in range(steps)]
        return WorkloadInput(
            seed, scale, num_atoms=num_atoms, num_pairs=num_pairs,
            steps=steps, pair_i=pair_i, pair_j=pair_j,
            apair_ptr=apair_ptr, apair_idx=apair_idx,
            charges=charges, upd_idx=upd_idx, upd_val=upd_val,
            pos0=pos0, drive=drive,
        )

    # -- reference -----------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[float]:
        charges = list(inp.charges)
        pos = list(inp.pos0)
        cpair = [0.0] * inp.num_pairs
        force_sum = 0.0
        output: List[float] = []
        for step in range(inp.steps):
            charges[inp.upd_idx[step]] = inp.upd_val[step]
            for p in range(inp.num_pairs):
                cpair[p] = charges[inp.pair_i[p]] * charges[inp.pair_j[p]]
            for p in range(inp.num_pairs):
                force_sum = force_sum + cpair[p] * (
                    pos[inp.pair_i[p]] - pos[inp.pair_j[p]]
                )
            output.append(force_sum)
            for atom in range(inp.num_atoms):
                pos[atom] = pos[atom] * 0.875 + inp.drive[step]
        return output

    # -- codegen ---------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("pair_i", inp.pair_i)
        b.data("pair_j", inp.pair_j)
        b.data("apair_ptr", inp.apair_ptr)
        b.data("apair_idx", inp.apair_idx)
        b.data("charges", inp.charges)
        b.zeros("cpair", inp.num_pairs)
        b.data("pos", inp.pos0)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("drive", inp.drive)

    def _emit_cpair_one(self, b: ProgramBuilder, p) -> None:
        """cpair[p] = charges[pair_i[p]] * charges[pair_j[p]]."""
        with b.scratch(5, "cp") as (pib, pjb, qb, qi, qj):
            b.la(pib, "pair_i")
            b.la(pjb, "pair_j")
            b.la(qb, "charges")
            b.ldx(qi, pib, p)
            b.ldx(qi, qb, qi)
            b.ldx(qj, pjb, p)
            b.ldx(qj, qb, qj)
            b.fmul(qi, qi, qj)
            with b.scratch(1, "cb") as (cb,):
                b.la(cb, "cpair")
                b.stx(qi, cb, p)

    def _emit_all_cpairs(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        with b.scratch(1, "p") as (p,):
            with b.for_range(p, 0, inp.num_pairs):
                self._emit_cpair_one(b, p)

    def _emit_charge_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "qb") as (qb,):
                b.la(qb, "charges")
                if triggering:
                    return b.tstx(val, qb, idx)
                return b.stx(val, qb, idx)

    def _emit_force_and_advance(self, b: ProgramBuilder, inp: WorkloadInput,
                                t, force_sum) -> None:
        with b.scratch(6, "fo") as (pib, pjb, cb, posb, p, term):
            b.la(pib, "pair_i")
            b.la(pjb, "pair_j")
            b.la(cb, "cpair")
            b.la(posb, "pos")
            with b.for_range(p, 0, inp.num_pairs):
                with b.scratch(3, "f2") as (xi, xj, c):
                    b.ldx(xi, pib, p)
                    b.ldx(xi, posb, xi)
                    b.ldx(xj, pjb, p)
                    b.ldx(xj, posb, xj)
                    b.fsub(xi, xi, xj)
                    b.ldx(c, cb, p)
                    b.fmul(c, c, xi)
                    b.fadd(force_sum, force_sum, c)
            b.out(force_sum)
            # advance positions: pos[a] = pos[a]*0.875 + drive[t]
            with b.scratch(3, "ad") as (dbase, dv, atom):
                b.la(dbase, "drive")
                b.ldx(dv, dbase, t)
                with b.for_range(atom, 0, inp.num_atoms):
                    with b.scratch(2, "a2") as (xv, k):
                        b.ldx(xv, posb, atom)
                        b.li(k, 0.875)
                        b.fmul(xv, xv, k)
                        b.fadd(xv, xv, dv)
                        b.stx(xv, posb, atom)

    # -- builds --------------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            force_sum = b.global_reg("force")
            b.li(force_sum, 0.0)
            with b.for_range(t, 0, inp.steps):
                self._emit_charge_update(b, t, triggering=False)
                self._emit_all_cpairs(b, inp)
                self._emit_force_and_advance(b, inp, t, force_sum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("cpairthr"):
            # r1 = changed charge's address -> atom id -> its pair range
            with b.scratch(5, "th") as (qb, atom, ptr, k, kend):
                b.la(qb, "charges")
                b.sub(atom, b.trigger_addr, qb)
                b.la(ptr, "apair_ptr")
                b.ldx(k, ptr, atom)
                with b.scratch(1, "a1") as (a1,):
                    b.addi(a1, atom, 1)
                    b.ldx(kend, ptr, a1)
                with b.scratch(1, "ib") as (ib,):
                    b.la(ib, "apair_idx")
                    with b.loop() as loop:
                        with b.scratch(1, "c") as (cond,):
                            b.slt(cond, k, kend)
                            loop.break_if_zero(cond)
                        with b.scratch(1, "pr") as (pr,):
                            b.ldx(pr, ib, k)
                            self._emit_cpair_one(b, pr)
                        b.addi(k, k, 1)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            force_sum = b.global_reg("force")
            b.li(force_sum, 0.0)
            self._emit_all_cpairs(b, inp)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_charge_update(b, t, triggering=True))
                b.tcheck_thread("cpairthr")
                self._emit_force_and_advance(b, inp, t, force_sum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("cpairthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=True)
        return DttBuild(program, [spec])
