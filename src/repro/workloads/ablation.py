"""Ablation-only workloads: ``linefalse`` and ``bursty-equake``.

``linefalse`` is a micro-workload for the trigger-granularity ablation.

Experiment E8b asks what happens when trigger-detection hardware watches
whole cache lines instead of exact words: stores to *neighboring* words in
a watched line fire the support thread even though the watched datum did
not change (false triggers).

The suite workloads can't exhibit this — their triggers are PC-matched or
watch whole arrays — so this micro-workload constructs the adversarial
layout deliberately: one array of ``lines × line_words`` words in which
the first word of every line is *watched* (a rarely-changing parameter)
and the remaining words are *scratch* state rewritten with fresh values
every step.  All stores are triggering stores, modeling hardware that
observes every store to a watched line.

* word granularity: scratch stores match nothing; the thread fires only
  when a watched parameter actually changes (rare) — full DTT benefit;
* line granularity: every scratch store falls inside some watched line's
  granule and fires the thread — the derived data is recomputed nearly
  every step and the benefit collapses.

Correctness is unaffected either way (the support thread recomputes the
same derived values), which is itself part of the point: granularity is a
performance knob, not a correctness knob.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import rng_for, update_schedule
from repro.workloads.equake import EquakeWorkload

LINE_WORDS = 16
NUM_LINES = 8
#: scratch words rewritten per step
SCRATCH_WRITES = 4


class BurstyEquakeWorkload(EquakeWorkload):
    """A deliberately bursty equake variant for the queue-depth ablation
    (E8c): many matrix entries change per timestep, so several per-row
    activations are pending at once and a shallow thread queue overflows
    (the default, gentle workload dispatches entries to the spare context
    as they arrive and never stresses the queue).

    The distinct ``name`` keeps its runs from aliasing plain equake in
    memoization keys and store addresses.
    """

    name = "bursty-equake"
    description = "queue-depth ablation variant of equake (not in the suite)"
    change_rate = 0.6
    burst = 8


class LineFalseWorkload(Workload):
    """Granularity-ablation micro-workload (E8b); see the module docstring."""

    name = "linefalse"
    description = "granularity-ablation micro-workload (not in the suite)"
    converted_region = "derived sum over per-line watched parameters"
    default_scale = 1
    default_seed = 1234

    #: probability a watched-parameter write changes the value
    change_rate = 0.05

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        steps = 120 * scale
        size = NUM_LINES * LINE_WORDS
        rng = rng_for(seed, "linefalse-init")
        mixed = [rng.randint(1, 9) for _ in range(size)]
        watched_slots = [line * LINE_WORDS for line in range(NUM_LINES)]
        watched_now = [mixed[s] for s in watched_slots]
        wsel, wval = update_schedule(
            seed, steps, watched_now, self.change_rate, (1, 9),
            stream="linefalse-watched",
        )
        # scratch writes: always to non-watched slots, always fresh values
        scr_idx: List[int] = []
        scr_val: List[int] = []
        counter = 100
        for _ in range(steps * SCRATCH_WRITES):
            slot = rng.randrange(size)
            while slot % LINE_WORDS == 0:
                slot = rng.randrange(size)
            counter += 1
            scr_idx.append(slot)
            scr_val.append(counter)
        return WorkloadInput(
            seed, scale, steps=steps, size=size,
            mixed=mixed, watched_slots=watched_slots,
            wsel=wsel, wval=wval, scr_idx=scr_idx, scr_val=scr_val,
        )

    # -- reference --------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        mixed = list(inp.mixed)
        checksum = 0
        output: List[int] = []
        for step in range(inp.steps):
            for j in range(SCRATCH_WRITES):
                k = step * SCRATCH_WRITES + j
                mixed[inp.scr_idx[k]] = inp.scr_val[k]
            slot = inp.watched_slots[inp.wsel[step]]
            mixed[slot] = inp.wval[step]
            derived = 0
            for line in range(NUM_LINES):
                v = mixed[line * LINE_WORDS]
                derived += v * v * (line + 1)
            checksum += derived
            output.append(checksum)
        return output

    # -- codegen ------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("mixed", inp.mixed)
        b.zeros("derived", 1)
        b.data("watched_slots", inp.watched_slots)
        b.data("wsel", inp.wsel)
        b.data("wval", inp.wval)
        b.data("scr_idx", inp.scr_idx)
        b.data("scr_val", inp.scr_val)

    def _emit_derive(self, b: ProgramBuilder) -> None:
        """derived = Σ_line mixed[line*L]^2 * (line+1), with extra latency
        (a deliberately heavy recomputation so false triggers hurt)."""
        with b.scratch(4, "dv") as (mbase, acc, line, v):
            b.la(mbase, "mixed")
            b.li(acc, 0)
            with b.for_range(line, 0, NUM_LINES):
                with b.scratch(2, "d2") as (slot, w):
                    b.muli(slot, line, LINE_WORDS)
                    b.ldx(v, mbase, slot)
                    b.mul(w, v, v)
                    b.addi(slot, line, 1)
                    b.mul(w, w, slot)
                    # pad the recomputation (models a heavier derivation)
                    for _ in range(6):
                        b.add(acc, acc, w)
                        b.sub(acc, acc, w)
                    b.add(acc, acc, w)
            with b.scratch(1, "db") as (dbase,):
                b.la(dbase, "derived")
                b.st(acc, dbase, 0)

    def _emit_writes(self, b: ProgramBuilder, inp: WorkloadInput, t) -> None:
        """Per-step stores: SCRATCH_WRITES fresh scratch words + one
        (usually silent) watched parameter — all triggering stores."""
        with b.scratch(5, "wr") as (mbase, ib, vb, idx, val):
            b.la(mbase, "mixed")
            b.la(ib, "scr_idx")
            b.la(vb, "scr_val")
            with b.scratch(1, "off") as (off,):
                b.muli(off, t, SCRATCH_WRITES)
                for j in range(SCRATCH_WRITES):
                    with b.scratch(1, "sl") as (slot,):
                        b.addi(slot, off, j)
                        b.ldx(idx, ib, slot)
                        b.ldx(val, vb, slot)
                        b.tstx(val, mbase, idx)
            with b.scratch(3, "w2") as (sb, sel, slot):
                b.la(sb, "wsel")
                b.ldx(sel, sb, t)
                with b.scratch(1, "ws") as (wsb,):
                    b.la(wsb, "watched_slots")
                    b.ldx(slot, wsb, sel)
                with b.scratch(1, "wv") as (wvb,):
                    b.la(wvb, "wval")
                    b.ldx(val, wvb, t)
                b.tstx(val, mbase, slot)

    def _emit_consume(self, b: ProgramBuilder, checksum) -> None:
        with b.scratch(2, "co") as (dbase, v):
            b.la(dbase, "derived")
            b.ld(v, dbase, 0)
            b.add(checksum, checksum, v)
        b.out(checksum)

    # -- builds --------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_plain_writes(b, inp, t)
                self._emit_derive(b)
                self._emit_consume(b, checksum)
            b.halt()
        return b.build()

    def _emit_plain_writes(self, b: ProgramBuilder, inp: WorkloadInput, t):
        """Baseline variant of the per-step stores (ordinary stores)."""
        with b.scratch(5, "wr") as (mbase, ib, vb, idx, val):
            b.la(mbase, "mixed")
            b.la(ib, "scr_idx")
            b.la(vb, "scr_val")
            with b.scratch(1, "off") as (off,):
                b.muli(off, t, SCRATCH_WRITES)
                for j in range(SCRATCH_WRITES):
                    with b.scratch(1, "sl") as (slot,):
                        b.addi(slot, off, j)
                        b.ldx(idx, ib, slot)
                        b.ldx(val, vb, slot)
                        b.stx(val, mbase, idx)
            with b.scratch(3, "w2") as (sb, sel, slot):
                b.la(sb, "wsel")
                b.ldx(sel, sb, t)
                with b.scratch(1, "ws") as (wsb,):
                    b.la(wsb, "watched_slots")
                    b.ldx(slot, wsb, sel)
                with b.scratch(1, "wv") as (wvb,):
                    b.la(wvb, "wval")
                    b.ldx(val, wvb, t)
                b.stx(val, mbase, slot)

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        """Word-granularity build: watch exactly the per-line first words."""
        program = self._build_dtt_program(inp)
        watch = self._watch_ranges(program)
        spec = TriggerSpec("derivethr", watch=watch, per_address_dedupe=False)
        return DttBuild(program, [spec])

    build_dtt_watch = build_dtt  # the watch build IS the normal build here

    def _watch_ranges(self, program) -> List[Tuple[int, int]]:
        base = program.address_of("mixed")
        return [(base + line * LINE_WORDS, base + line * LINE_WORDS + 1)
                for line in range(NUM_LINES)]

    def _build_dtt_program(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("derivethr"):
            self._emit_derive(b)
            b.treturn()
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_derive(b)
            with b.for_range(t, 0, inp.steps):
                self._emit_writes(b, inp, t)
                b.tcheck_thread("derivethr")
                self._emit_consume(b, checksum)
            b.halt()
        return b.build()
