"""``mcf`` — the paper's headline conversion: ``refresh_potential``.

181.mcf (network simplex) maintains a spanning tree of the flow network;
``refresh_potential`` walks the whole tree recomputing every node's
potential from its parent's potential plus the connecting arc's cost.  The
paper observed that arc costs change rarely between walks, so nearly every
walk recomputes exactly what it computed last time — and converted the
walk into a data-triggered thread fired by stores to arc costs, yielding
the suite's best speedup (5.9×).

Our kernel keeps that structure exactly:

* a random preorder tree (``parent[i] < i``) over N nodes, arc cost per
  node, derived ``potential[i] = potential[parent[i]] + cost[i]``;
* a main loop of T simplex-like iterations, each writing one arc cost
  (usually the value already there — a silent store), then *pricing*:
  reading K node potentials and emitting a running checksum.

The baseline re-runs the full refresh walk every iteration before pricing;
the DTT build moves the walk into a support thread triggered by actual
cost changes and prices straight away otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import (
    index_array,
    int_array,
    random_tree_parents,
    rng_for,
    update_schedule,
)

#: potential assigned to the tree root (mcf seeds the root potential with
#: a large constant; any fixed value works)
ROOT_POTENTIAL = 1000


class McfWorkload(Workload):
    """181.mcf analog: refresh_potential (the headline); see the module docstring."""

    name = "mcf"
    description = "network-simplex potential refresh over a spanning tree"
    converted_region = "refresh_potential tree walk"
    default_scale = 1
    default_seed = 1234

    #: probability an arc-cost write actually changes the cost
    change_rate = 0.09

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_nodes = 640 * scale
        steps = 100 * scale
        probes_per_step = 6
        parents = random_tree_parents(seed, num_nodes)
        costs = int_array(seed, num_nodes, (1, 64))
        costs[0] = 0  # the root has no incoming arc
        # arc orientation: up-arcs add the cost, down-arcs subtract it;
        # spanning trees are dominated by up-arcs, so bias heavily (which
        # also keeps the walk's branch predictable, as in the real code)
        orient_rng = rng_for(seed, "mcf-orient")
        orient = [1 if orient_rng.random() < 0.9 else 0
                  for _ in range(num_nodes)]
        # slot 0 (the root's dummy arc) is never updated
        upd_idx, upd_val = _schedule_excluding_root(
            seed, steps, costs, self.change_rate
        )
        probes = index_array(seed, steps * probes_per_step, num_nodes)
        return WorkloadInput(
            seed,
            scale,
            num_nodes=num_nodes,
            steps=steps,
            probes_per_step=probes_per_step,
            parents=parents,
            costs=costs,
            orient=orient,
            upd_idx=upd_idx,
            upd_val=upd_val,
            probes=probes,
        )

    # -- reference --------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        costs = list(inp.costs)
        parents = inp.parents
        num_nodes = inp.num_nodes
        potential = [0] * num_nodes
        checksum = 0
        output: List[int] = []
        kk = inp.probes_per_step
        for step in range(inp.steps):
            costs[inp.upd_idx[step]] = inp.upd_val[step]
            potential[0] = ROOT_POTENTIAL
            for node in range(1, num_nodes):
                if inp.orient[node]:
                    potential[node] = potential[parents[node]] + costs[node]
                else:
                    potential[node] = potential[parents[node]] - costs[node]
            for k in range(kk):
                checksum += potential[inp.probes[step * kk + k]]
            output.append(checksum)
        return output

    # -- shared codegen -----------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("parent", inp.parents)
        b.data("cost", inp.costs)
        b.data("orient", inp.orient)
        b.zeros("potential", inp.num_nodes)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("probe", inp.probes)

    def _emit_refresh_walk(self, b: ProgramBuilder, num_nodes: int) -> None:
        """potential[0] = R; for i in 1..N: pot[i] = pot[parent[i]] + cost[i]."""
        with b.scratch(5, "rf") as (pot, par, cst, orb, i):
            b.la(pot, "potential")
            b.la(par, "parent")
            b.la(cst, "cost")
            b.la(orb, "orient")
            with b.scratch(1, "root") as (r,):
                b.li(r, ROOT_POTENTIAL)
                b.st(r, pot, 0)
            with b.for_range(i, 1, num_nodes):
                with b.scratch(4, "w") as (p, base_pot, v, up):
                    b.ldx(p, par, i)  # parent id
                    b.ldx(base_pot, pot, p)  # parent potential
                    b.ldx(v, cst, i)  # arc cost
                    b.ldx(up, orb, i)  # arc orientation
                    with b.if_(up) as branch:
                        b.add(v, base_pot, v)
                        branch.else_()
                        b.sub(v, base_pot, v)
                    b.stx(v, pot, i)

    def _emit_pricing(self, b: ProgramBuilder, inp: WorkloadInput, t, checksum):
        """Read K probed potentials, accumulate checksum, emit it."""
        with b.scratch(3, "pr") as (probe_base, pot, k):
            b.la(probe_base, "probe")
            b.la(pot, "potential")
            kk = inp.probes_per_step
            with b.scratch(2, "pk") as (off, v):
                b.muli(off, t, kk)
                with b.for_range(k, 0, kk):
                    with b.scratch(2, "pv") as (idx, p):
                        b.add(idx, off, k)
                        b.ldx(idx, probe_base, idx)
                        b.ldx(p, pot, idx)
                        b.add(checksum, checksum, p)
        b.out(checksum)

    # -- builds --------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_cost_update(b, t, triggering=False)
                self._emit_refresh_walk(b, inp.num_nodes)
                self._emit_pricing(b, inp, t, checksum)
            b.halt()
        return b.build()

    def _emit_cost_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        """cost[upd_idx[t]] = upd_val[t]; returns the store's PC."""
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "cb") as (cst,):
                b.la(cst, "cost")
                if triggering:
                    return b.tstx(val, cst, idx)
                return b.stx(val, cst, idx)

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        program, store_pc = self._build_dtt_program(inp)
        spec = TriggerSpec("refresh", store_pcs=[store_pc],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])

    def build_dtt_watch(self, inp: WorkloadInput) -> DttBuild:
        program, _store_pc = self._build_dtt_program(inp)
        lo = program.address_of("cost")
        spec = TriggerSpec("refresh", watch=[(lo, lo + inp.num_nodes)],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])

    def _build_dtt_program(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("refresh"):
            self._emit_refresh_walk(b, inp.num_nodes)
            b.treturn()
        store_pc_box = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            # derived data must be valid before the first consume even if
            # no trigger ever fires: run the walk once up front (mcf does
            # the same — the first refresh is unconditional)
            self._emit_refresh_walk(b, inp.num_nodes)
            with b.for_range(t, 0, inp.steps):
                store_pc_box.append(self._emit_cost_update(b, t, triggering=True))
                b.tcheck_thread("refresh")
                self._emit_pricing(b, inp, t, checksum)
            b.halt()
        return b.build(), store_pc_box[0]


def _schedule_excluding_root(seed: int, steps: int, costs, change_rate: float):
    """Update schedule over cost[1:] (slot 0 is the root's dummy arc)."""
    idx_rel, values = update_schedule(
        seed, steps, costs[1:], change_rate, (1, 64), stream="mcf-updates"
    )
    return [i + 1 for i in idx_rel], values
