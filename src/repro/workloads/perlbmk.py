"""``perlbmk`` — interpreter hash-table statistics across re-inserts.

253.perlbmk spends much of its time in hash tables; scripts repeatedly
store values under existing keys, often storing what is already there,
and interpreter-side derived statistics (chain lengths, load factors) are
refreshed regardless.  The paper's conversion fires the statistics
refresh from the hash-slot stores.

Our kernel: an open hash table (slot per bucket chain head count), a
derived per-bucket cost table ``chain_cost[k] = slot[k] * slot[k] + k``
plus a table-wide load factor folded into the cost, and a main loop of
interpreter "ops": one hash store per step (usually a same-value
re-insert), then a fresh op stream whose lookup ops probe the cost table.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import int_array, update_schedule

SLOTS = 24


class PerlbmkWorkload(Workload):
    """253.perlbmk analog: hash statistics; see the module docstring."""

    name = "perlbmk"
    description = "interpreter hash statistics across same-key re-inserts"
    converted_region = "per-bucket chain-cost table refresh"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.07
    ops_per_step = 26

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        steps = 80 * scale
        slots = int_array(seed, SLOTS, (0, 9), stream="perl-slots")
        upd_idx, upd_val = update_schedule(
            seed, steps, slots, self.change_rate, (0, 9), stream="perl-upd"
        )
        ops = int_array(seed, steps * self.ops_per_step, (0, SLOTS - 1),
                        stream="perl-ops")
        return WorkloadInput(
            seed, scale, steps=steps, ops_per_step=self.ops_per_step,
            slots=slots, upd_idx=upd_idx, upd_val=upd_val, ops=ops,
        )

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        slots = list(inp.slots)
        chain_cost = [0] * SLOTS
        checksum = 0
        output: List[int] = []
        for step in range(inp.steps):
            slots[inp.upd_idx[step]] = inp.upd_val[step]
            load = 0
            for k in range(SLOTS):
                load += slots[k]
            for k in range(SLOTS):
                chain_cost[k] = slots[k] * slots[k] + k + load
            for k in range(inp.ops_per_step):
                op = inp.ops[step * inp.ops_per_step + k]
                checksum += chain_cost[op] + slots[op]
            output.append(checksum)
        return output

    # -- codegen ---------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("slots", inp.slots)
        b.zeros("chain_cost", SLOTS)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("ops", inp.ops)

    def _emit_refresh_stats(self, b: ProgramBuilder) -> None:
        with b.scratch(4, "st") as (sb, cb, k, load):
            b.la(sb, "slots")
            b.la(cb, "chain_cost")
            b.li(load, 0)
            with b.for_range(k, 0, SLOTS):
                with b.scratch(1, "v") as (v,):
                    b.ldx(v, sb, k)
                    b.add(load, load, v)
            with b.for_range(k, 0, SLOTS):
                with b.scratch(2, "c2") as (v, cost):
                    b.ldx(v, sb, k)
                    b.mul(cost, v, v)
                    b.add(cost, cost, k)
                    b.add(cost, cost, load)
                    b.stx(cost, cb, k)

    def _emit_insert(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "sb") as (sb,):
                b.la(sb, "slots")
                if triggering:
                    return b.tstx(val, sb, idx)
                return b.stx(val, sb, idx)

    def _emit_ops(self, b: ProgramBuilder, inp: WorkloadInput, t, checksum):
        with b.scratch(6, "op") as (ob, cb, sb, off, k, op):
            b.la(ob, "ops")
            b.la(cb, "chain_cost")
            b.la(sb, "slots")
            b.muli(off, t, inp.ops_per_step)
            with b.for_range(k, 0, inp.ops_per_step):
                with b.scratch(2, "o2") as (slot, v):
                    b.add(slot, off, k)
                    b.ldx(op, ob, slot)
                    b.ldx(v, cb, op)
                    b.add(checksum, checksum, v)
                    b.ldx(v, sb, op)
                    b.add(checksum, checksum, v)
        b.out(checksum)

    # -- builds -----------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_insert(b, t, triggering=False)
                self._emit_refresh_stats(b)
                self._emit_ops(b, inp, t, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("statsthr"):
            self._emit_refresh_stats(b)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_refresh_stats(b)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_insert(b, t, triggering=True))
                b.tcheck_thread("statsthr")
                self._emit_ops(b, inp, t, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("statsthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
