"""``overlap`` — the abstract's *other* claim: increased parallelism.

The paper's abstract: data-triggered threads "*enable increased
parallelism* and the elimination of redundant computation.  This paper
focuses primarily on the latter."  The evaluation suite exercises the
latter; this extension workload isolates the *former*: its watched data
changes **every** iteration (change rate 1.0), so the same-value filter
never suppresses anything and skipping contributes nothing.  Any speedup
comes purely from running the support thread concurrently with the main
thread's independent work.

The kernel is a streaming filter pipeline.  Per step:

1. a new filter parameter arrives (a triggering store that always
   changes) — in the DTT build this launches the coefficient
   recomputation immediately on the spare context;
2. the main thread does *independent* work: windowing the fresh input
   stream (no dependence on the coefficients);
3. the consume point (`tcheck`) — by now the support thread has usually
   finished under the window work;
4. the filter is applied: coefficients × window, emitted as a checksum.

The baseline recomputes the coefficients inline between (1) and (2).
Expected shape (experiment E9): speedup well above 1 on machines with a
spare context (smt2/cmp2) and ≈ 1 on the serialized machine — the exact
mirror image of the redundancy-driven suite, where the serialized machine
retains almost the whole benefit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import rng_for

#: coefficient-table size (the support thread's work)
COEFFS = 48
#: window size (the main thread's independent work)
WINDOW = 48


class OverlapWorkload(Workload):
    """Parallelism-extension workload (E9); see the module docstring."""

    name = "overlap"
    description = "parallelism-extension workload: always-changing trigger"
    converted_region = "filter-coefficient recomputation (overlap, not skip)"
    default_scale = 1
    default_seed = 1234

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        steps = 90 * scale
        rng = rng_for(seed, "overlap-params")
        # strictly increasing parameters: every store changes the value
        params = []
        current = 1
        for _ in range(steps):
            current += rng.randint(1, 5)
            params.append(current)
        stream = [rng.randint(0, 15) for _ in range(steps * WINDOW)]
        return WorkloadInput(seed, scale, steps=steps, params=params,
                             stream=stream)

    # -- reference ----------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        checksum = 0
        window = [0] * WINDOW
        coeff = [0] * COEFFS
        output: List[int] = []
        for step in range(inp.steps):
            param = inp.params[step]
            for i in range(COEFFS):
                coeff[i] = (param * (i + 3) + i * i) % 251
            base = step * WINDOW
            for i in range(WINDOW):
                window[i] = inp.stream[base + i] * 3 + i
            for i in range(min(COEFFS, WINDOW)):
                checksum += coeff[i] * window[i]
            output.append(checksum)
        return output

    # -- codegen ---------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("params", inp.params)
        b.data("stream", inp.stream)
        b.zeros("param_cell", 1)
        b.zeros("coeff", COEFFS)
        b.zeros("window", WINDOW)

    def _emit_coeffs(self, b: ProgramBuilder) -> None:
        """coeff[i] = (param*(i+3) + i*i) mod 251 over the current param."""
        with b.scratch(5, "co") as (pc_, cb, i, v, modulus):
            b.la(pc_, "param_cell")
            b.ld(pc_, pc_, 0)  # the current parameter value
            b.la(cb, "coeff")
            b.li(modulus, 251)
            with b.for_range(i, 0, COEFFS):
                with b.scratch(2, "c2") as (term, sq):
                    b.addi(term, i, 3)
                    b.mul(term, pc_, term)
                    b.mul(sq, i, i)
                    b.add(term, term, sq)
                    b.imod(v, term, modulus)
                    b.stx(v, cb, i)

    def _emit_window(self, b: ProgramBuilder, inp: WorkloadInput, t) -> None:
        """window[i] = stream[t*W + i]*3 + i — independent of coeffs."""
        with b.scratch(5, "wi") as (sb, wb, base, i, v):
            b.la(sb, "stream")
            b.la(wb, "window")
            b.muli(base, t, WINDOW)
            with b.for_range(i, 0, WINDOW):
                with b.scratch(1, "sl") as (slot,):
                    b.add(slot, base, i)
                    b.ldx(v, sb, slot)
                    b.muli(v, v, 3)
                    b.add(v, v, i)
                    b.stx(v, wb, i)

    def _emit_apply(self, b: ProgramBuilder, checksum) -> None:
        with b.scratch(4, "ap") as (cb, wb, i, v):
            b.la(cb, "coeff")
            b.la(wb, "window")
            with b.for_range(i, 0, min(COEFFS, WINDOW)):
                with b.scratch(1, "w") as (w,):
                    b.ldx(v, cb, i)
                    b.ldx(w, wb, i)
                    b.mul(v, v, w)
                    b.add(checksum, checksum, v)
        b.out(checksum)

    def _emit_param_store(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(2, "ps") as (pb, v):
            b.la(pb, "params")
            b.ldx(v, pb, t)
            with b.scratch(1, "pc") as (cell,):
                b.la(cell, "param_cell")
                if triggering:
                    return b.tst(v, cell, 0)
                return b.st(v, cell, 0)

    # -- builds -------------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_param_store(b, t, triggering=False)
                self._emit_coeffs(b)
                self._emit_window(b, inp, t)
                self._emit_apply(b, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("coeffthr"):
            self._emit_coeffs(b)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_coeffs(b)  # initialize (no trigger has fired yet)
            with b.for_range(t, 0, inp.steps):
                # trigger FIRST: the recomputation overlaps the windowing
                pc_box.append(self._emit_param_store(b, t, triggering=True))
                self._emit_window(b, inp, t)
                b.tcheck_thread("coeffthr")
                self._emit_apply(b, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("coeffthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
