"""Workload abstraction: baseline build, DTT build, input, reference.

A workload is the unit the harness runs.  The contract:

* :meth:`Workload.make_input` — deterministic input from (seed, scale);
* :meth:`Workload.build_baseline` — the unmodified kernel: it recomputes
  the derived data wherever the original program would;
* :meth:`Workload.build_dtt` — the converted kernel: derived-data
  recomputation moved into support threads fed by triggering stores, with
  consume points where the original recomputed; returns the program *and*
  the trigger specs that populate the thread registry;
* :meth:`Workload.reference_output` — a pure-Python model of the exact
  observable output (the ``out`` stream) both builds must produce.

Baseline and DTT builds of the same input must produce identical output;
:func:`verify_workload` checks all three ways.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core.engine import DttEngine
from repro.core.registry import ThreadRegistry, TriggerSpec
from repro.errors import CorrectnessError
from repro.isa.program import Program
from repro.machine.machine import Machine, run_to_completion

Number = Union[int, float]


class WorkloadInput:
    """Named bag of generated input data (arrays and scalars)."""

    def __init__(self, seed: int, scale: int, **data):
        self.seed = seed
        self.scale = scale
        self._data: Dict[str, object] = dict(data)

    def __getattr__(self, name: str):
        try:
            return self._data[name]
        except KeyError:
            raise AttributeError(name) from None

    def __getitem__(self, name: str):
        return self._data[name]

    def field_names(self):
        """Names of the generated input fields."""
        return self._data.keys()

    def __repr__(self) -> str:
        return (
            f"WorkloadInput(seed={self.seed}, scale={self.scale}, "
            f"fields={sorted(self._data)})"
        )


class DttBuild:
    """A DTT-converted program plus its trigger specs."""

    __slots__ = ("program", "specs")

    def __init__(self, program: Program, specs: Sequence[TriggerSpec]):
        self.program = program
        self.specs = list(specs)

    def registry(self) -> ThreadRegistry:
        """A fresh thread registry over this build's trigger specs."""
        return ThreadRegistry(self.specs)

    def engine(self, config=None, deferred: bool = False) -> DttEngine:
        """A fresh engine for one run of this build."""
        return DttEngine(self.registry(), config=config, deferred=deferred)

    def __repr__(self) -> str:
        return f"DttBuild({len(self.program)} instructions, {len(self.specs)} specs)"


class Workload:
    """Base class; subclasses define one benchmark each."""

    #: suite name (SPEC-style, e.g. "mcf")
    name: str = ""
    #: one-line description of the modeled kernel
    description: str = ""
    #: which region the DTT conversion moves into a support thread
    converted_region: str = ""
    #: default problem scale (see each workload's interpretation)
    default_scale: int = 1
    default_seed: int = 1234

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        """Deterministic input from (seed, scale); defaults per class."""
        raise NotImplementedError

    def build_baseline(self, inp: WorkloadInput) -> Program:
        """The unmodified kernel: recomputes derived data every step."""
        raise NotImplementedError

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        """The converted kernel: support threads + trigger specs."""
        raise NotImplementedError

    def build_dtt_watch(self, inp: WorkloadInput) -> Optional[DttBuild]:
        """Address-watched variant of the DTT build (for the granularity
        ablation, E8b).  Workloads that don't support it return None."""
        return None

    def reference_output(self, inp: WorkloadInput) -> List[Number]:
        """Pure-Python model of the exact observable output stream."""
        raise NotImplementedError

    # -- conveniences -----------------------------------------------------------

    def _args(self, seed: Optional[int], scale: Optional[int]):
        return (
            self.default_seed if seed is None else seed,
            self.default_scale if scale is None else scale,
        )

    def run_baseline(self, inp: WorkloadInput,
                     max_instructions: int = 20_000_000) -> List[Number]:
        """Functional run of the baseline build; returns the output."""
        program = self.build_baseline(inp)
        machine = Machine(program, num_contexts=1,
                          max_instructions=max_instructions)
        return run_to_completion(machine)

    def run_dtt(self, inp: WorkloadInput, config=None, num_contexts: int = 2,
                max_instructions: int = 20_000_000) -> List[Number]:
        """Functional run of the DTT build; returns the output."""
        build = self.build_dtt(inp)
        machine = Machine(build.program, num_contexts=num_contexts,
                          max_instructions=max_instructions)
        machine.attach_engine(build.engine(config=config))
        return run_to_completion(machine)

    def __repr__(self) -> str:
        return f"<Workload {self.name}>"


def verify_workload(workload: Workload, seed: Optional[int] = None,
                    scale: Optional[int] = None) -> List[Number]:
    """Check baseline == DTT == pure-Python reference on one input.

    Returns the (verified) output.  Raises
    :class:`~repro.errors.CorrectnessError` on any mismatch — this is the
    invariant the whole evaluation rests on: DTT is an *optimization*, not
    an approximation.
    """
    inp = workload.make_input(seed, scale)
    reference = workload.reference_output(inp)
    baseline = workload.run_baseline(inp)
    if baseline != reference:
        raise CorrectnessError(
            f"{workload.name}: baseline output diverges from reference "
            f"(first 5: {baseline[:5]} vs {reference[:5]})"
        )
    dtt = workload.run_dtt(inp)
    if dtt != reference:
        raise CorrectnessError(
            f"{workload.name}: DTT output diverges from reference "
            f"(first 5: {dtt[:5]} vs {reference[:5]})"
        )
    return reference
