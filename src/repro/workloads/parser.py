"""``parser`` — link-grammar dictionary statistics.

197.parser parses sentences against a large static dictionary; per-word
connector statistics are derived from a dictionary that the run almost
never modifies (re-inserting known words writes identical entries).  The
paper's conversion fires the statistics rebuild from dictionary stores.

Our kernel: a dictionary of word hashes, derived per-class bucket counts
(``bucket[c] = |{w : dict[w] mod C == c}|``), a main loop that "parses" a
fresh word stream — each word costed by its class bucket plus a direct
dictionary probe — with one dictionary write per sentence (almost always
re-inserting the same word).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import int_array, rng_for, update_schedule

NUM_CLASSES = 8


class ParserWorkload(Workload):
    """197.parser analog: dictionary statistics; see the module docstring."""

    name = "parser"
    description = "sentence parsing against a near-static dictionary"
    converted_region = "per-class connector bucket counts"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.55
    sentence_len = 24

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_words = 48 * scale
        steps = 80 * scale
        dictionary = int_array(seed, num_words, (1, 97), stream="parser-dict")
        upd_idx, upd_val = update_schedule(
            seed, steps, dictionary, self.change_rate, (1, 97),
            stream="parser-upd",
        )
        rng = rng_for(seed, "parser-sentences")
        sentences = [rng.randrange(num_words)
                     for _ in range(steps * self.sentence_len)]
        return WorkloadInput(
            seed, scale, num_words=num_words, steps=steps,
            sentence_len=self.sentence_len, dictionary=dictionary,
            upd_idx=upd_idx, upd_val=upd_val, sentences=sentences,
        )

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        dictionary = list(inp.dictionary)
        bucket = [0] * NUM_CLASSES
        checksum = 0
        output: List[int] = []
        for step in range(inp.steps):
            dictionary[inp.upd_idx[step]] = inp.upd_val[step]
            for c in range(NUM_CLASSES):
                bucket[c] = 0
            for w in range(inp.num_words):
                bucket[dictionary[w] % NUM_CLASSES] += 1
            for k in range(inp.sentence_len):
                word = inp.sentences[step * inp.sentence_len + k]
                entry = dictionary[word]
                checksum += bucket[entry % NUM_CLASSES] + entry
            output.append(checksum)
        return output

    # -- codegen ---------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("dict", inp.dictionary)
        b.zeros("bucket", NUM_CLASSES)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("sentences", inp.sentences)

    def _emit_rebuild_buckets(self, b: ProgramBuilder, inp: WorkloadInput):
        with b.scratch(4, "bk") as (dbase, bbase, w, c):
            b.la(dbase, "dict")
            b.la(bbase, "bucket")
            with b.scratch(1, "z") as (zero,):
                b.li(zero, 0)
                with b.for_range(c, 0, NUM_CLASSES):
                    b.stx(zero, bbase, c)
            with b.for_range(w, 0, inp.num_words):
                with b.scratch(3, "b2") as (entry, cls, count):
                    b.ldx(entry, dbase, w)
                    with b.scratch(1, "m") as (mod,):
                        b.li(mod, NUM_CLASSES)
                        b.imod(cls, entry, mod)
                    b.ldx(count, bbase, cls)
                    b.addi(count, count, 1)
                    b.stx(count, bbase, cls)

    def _emit_dict_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "db") as (dbase,):
                b.la(dbase, "dict")
                if triggering:
                    return b.tstx(val, dbase, idx)
                return b.stx(val, dbase, idx)

    def _emit_parse(self, b: ProgramBuilder, inp: WorkloadInput, t, checksum):
        with b.scratch(6, "pa") as (sbase, dbase, bbase, off, k, word):
            b.la(sbase, "sentences")
            b.la(dbase, "dict")
            b.la(bbase, "bucket")
            b.muli(off, t, inp.sentence_len)
            with b.for_range(k, 0, inp.sentence_len):
                with b.scratch(3, "p2") as (slot, entry, cls):
                    b.add(slot, off, k)
                    b.ldx(word, sbase, slot)
                    b.ldx(entry, dbase, word)
                    with b.scratch(1, "m") as (mod,):
                        b.li(mod, NUM_CLASSES)
                        b.imod(cls, entry, mod)
                    b.ldx(cls, bbase, cls)
                    b.add(checksum, checksum, cls)
                    b.add(checksum, checksum, entry)
        b.out(checksum)

    # -- builds -----------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_dict_update(b, t, triggering=False)
                self._emit_rebuild_buckets(b, inp)
                self._emit_parse(b, inp, t, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("bucketthr"):
            self._emit_rebuild_buckets(b, inp)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_rebuild_buckets(b, inp)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_dict_update(b, t, triggering=True))
                b.tcheck_thread("bucketthr")
                self._emit_parse(b, inp, t, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("bucketthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
