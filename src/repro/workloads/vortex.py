"""``vortex`` — object-store index maintenance across no-op updates.

255.vortex exercises an object-oriented database: transactions update
records and the store maintains derived index structures.  Most updates
store field values equal to what the record already held, yet the index
statistics are refreshed regardless.  The paper's conversion hangs the
index refresh off the record stores.

Our kernel: a record table (key per record), a derived bucket-count index
(``index[k] = |{r : key[r] mod BUCKETS == k}|``), and a main loop of
transactions: one record-key write per step (usually a no-op update),
then a query batch probing the index and the record table directly for a
fresh sequence of lookup keys.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import index_array, int_array, update_schedule

BUCKETS = 16


class VortexWorkload(Workload):
    """255.vortex analog: object-store index; see the module docstring."""

    name = "vortex"
    description = "OO-database index refresh across no-op record updates"
    converted_region = "bucket-count index rebuild"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.60
    lookups = 18

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_records = 56 * scale
        steps = 80 * scale
        record_keys = int_array(seed, num_records, (0, 255), stream="vortex-keys")
        upd_idx, upd_val = update_schedule(
            seed, steps, record_keys, self.change_rate, (0, 255),
            stream="vortex-upd",
        )
        queries = index_array(seed, steps * self.lookups, num_records,
                              stream="vortex-queries")
        return WorkloadInput(
            seed, scale, num_records=num_records, steps=steps,
            lookups=self.lookups, record_keys=record_keys,
            upd_idx=upd_idx, upd_val=upd_val, queries=queries,
        )

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        keys = list(inp.record_keys)
        index = [0] * BUCKETS
        checksum = 0
        output: List[int] = []
        for step in range(inp.steps):
            keys[inp.upd_idx[step]] = inp.upd_val[step]
            for k in range(BUCKETS):
                index[k] = 0
            for r in range(inp.num_records):
                index[keys[r] % BUCKETS] += 1
            for q in range(inp.lookups):
                record = inp.queries[step * inp.lookups + q]
                key = keys[record]
                checksum += index[key % BUCKETS] + key
            output.append(checksum)
        return output

    # -- codegen ---------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("keys", inp.record_keys)
        b.zeros("index", BUCKETS)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("queries", inp.queries)

    def _emit_rebuild_index(self, b: ProgramBuilder, inp: WorkloadInput):
        with b.scratch(4, "ix") as (kbase, ibase, r, k):
            b.la(kbase, "keys")
            b.la(ibase, "index")
            with b.scratch(1, "z") as (zero,):
                b.li(zero, 0)
                with b.for_range(k, 0, BUCKETS):
                    b.stx(zero, ibase, k)
            with b.for_range(r, 0, inp.num_records):
                with b.scratch(3, "i2") as (key, bucket, count):
                    b.ldx(key, kbase, r)
                    with b.scratch(1, "m") as (mod,):
                        b.li(mod, BUCKETS)
                        b.imod(bucket, key, mod)
                    b.ldx(count, ibase, bucket)
                    b.addi(count, count, 1)
                    b.stx(count, ibase, bucket)

    def _emit_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "kb") as (kbase,):
                b.la(kbase, "keys")
                if triggering:
                    return b.tstx(val, kbase, idx)
                return b.stx(val, kbase, idx)

    def _emit_queries(self, b: ProgramBuilder, inp: WorkloadInput, t, checksum):
        with b.scratch(6, "qr") as (qb, kb, ib, off, q, record):
            b.la(qb, "queries")
            b.la(kb, "keys")
            b.la(ib, "index")
            b.muli(off, t, inp.lookups)
            with b.for_range(q, 0, inp.lookups):
                with b.scratch(3, "q2") as (slot, key, bucket):
                    b.add(slot, off, q)
                    b.ldx(record, qb, slot)
                    b.ldx(key, kb, record)
                    with b.scratch(1, "m") as (mod,):
                        b.li(mod, BUCKETS)
                        b.imod(bucket, key, mod)
                    b.ldx(bucket, ib, bucket)
                    b.add(checksum, checksum, bucket)
                    b.add(checksum, checksum, key)
        b.out(checksum)

    # -- builds -----------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_update(b, t, triggering=False)
                self._emit_rebuild_index(b, inp)
                self._emit_queries(b, inp, t, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("indexthr"):
            self._emit_rebuild_index(b, inp)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_rebuild_index(b, inp)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_update(b, t, triggering=True))
                b.tcheck_thread("indexthr")
                self._emit_queries(b, inp, t, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("indexthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
