"""The benchmark suite registry.

``SUITE`` maps benchmark names to singleton workload instances, in the
canonical order used by every figure and table.  The order matches the
paper's presentation habit: integer codes first, floating-point codes
after, alphabetical within each group.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import UnknownWorkloadError
from repro.workloads.base import Workload
from repro.workloads.ammp import AmmpWorkload
from repro.workloads.art import ArtWorkload
from repro.workloads.bzip2 import Bzip2Workload
from repro.workloads.crafty import CraftyWorkload
from repro.workloads.gap import GapWorkload
from repro.workloads.gcc import GccWorkload
from repro.workloads.gzip import GzipWorkload
from repro.workloads.mcf import McfWorkload
from repro.workloads.mesa import MesaWorkload
from repro.workloads.parser import ParserWorkload
from repro.workloads.perlbmk import PerlbmkWorkload
from repro.workloads.twolf import TwolfWorkload
from repro.workloads.vortex import VortexWorkload
from repro.workloads.vpr import VprWorkload
from repro.workloads.equake import EquakeWorkload

# canonical presentation order: integer codes first, then floating point
_WORKLOAD_CLASSES = [
    Bzip2Workload,
    CraftyWorkload,
    GapWorkload,
    GccWorkload,
    GzipWorkload,
    McfWorkload,
    ParserWorkload,
    PerlbmkWorkload,
    TwolfWorkload,
    VortexWorkload,
    VprWorkload,
    AmmpWorkload,
    ArtWorkload,
    EquakeWorkload,
    MesaWorkload,
]


def _build_suite() -> "Dict[str, Workload]":
    suite: Dict[str, Workload] = {}
    for cls in _WORKLOAD_CLASSES:
        workload = cls()
        if not workload.name:
            raise UnknownWorkloadError(f"{cls.__name__} has no name")
        if workload.name in suite:
            raise UnknownWorkloadError(f"duplicate workload {workload.name!r}")
        suite[workload.name] = workload
    return suite


#: name -> workload singleton, canonical order
SUITE: "Dict[str, Workload]" = _build_suite()


def workload_names() -> List[str]:
    """Suite names in canonical order."""
    return list(SUITE)


def get_workload(name: str) -> Workload:
    """Look up one workload by name."""
    try:
        return SUITE[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from None
