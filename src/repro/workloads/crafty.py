"""``crafty`` — attack tables regenerated across quiet board updates.

186.crafty (chess) derives attack/mobility tables from the board; during
search most board stores put back the piece that was already there (quiet
positions, unmade moves), yet the evaluation-side tables get refreshed.
The paper's conversion fires the table regeneration from board stores.

Our kernel: a 64-square board holding piece codes, a knight-move offset
table, and a derived per-square mobility count ``attack[sq]`` = number of
knight-reachable squares that are empty, computed for occupied squares.
Per step: one board store (usually re-storing the same piece), then an
evaluation pass over a fresh candidate-move list combining the attack
table with piece values.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import index_array, rng_for, update_schedule

BOARD = 64
#: knight move deltas on a 1-D 64-square board, with file-wrap guards
#: precomputed into a per-square candidate list at input-generation time
KNIGHT_DELTAS = ((1, 2), (2, 1), (2, -1), (1, -2),
                 (-1, -2), (-2, -1), (-2, 1), (-1, 2))


def _knight_targets(square: int) -> List[int]:
    rank, file = divmod(square, 8)
    targets = []
    for dr, df in KNIGHT_DELTAS:
        r, f = rank + dr, file + df
        if 0 <= r < 8 and 0 <= f < 8:
            targets.append(r * 8 + f)
    return targets


class CraftyWorkload(Workload):
    """186.crafty analog: mobility tables; see the module docstring."""

    name = "crafty"
    description = "mobility tables across quiet chess-board updates"
    converted_region = "per-square knight-mobility regeneration"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.45
    moves_per_step = 22

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        steps = 70 * scale
        rng = rng_for(seed, "crafty-board")
        # piece codes: 0 empty, 1..6 pieces; about half the board occupied
        board = [rng.randint(1, 6) if rng.random() < 0.5 else 0
                 for _ in range(BOARD)]
        # per-square knight-target CSR
        kt_ptr = [0]
        kt_idx: List[int] = []
        for sq in range(BOARD):
            kt_idx.extend(_knight_targets(sq))
            kt_ptr.append(len(kt_idx))
        upd_idx, upd_val = update_schedule(
            seed, steps, board, self.change_rate, (0, 6),
            stream="crafty-upd",
        )
        candidates = index_array(seed, steps * self.moves_per_step, BOARD,
                                 stream="crafty-moves")
        return WorkloadInput(
            seed, scale, steps=steps, moves_per_step=self.moves_per_step,
            board=board, kt_ptr=kt_ptr, kt_idx=kt_idx,
            upd_idx=upd_idx, upd_val=upd_val, candidates=candidates,
        )

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        board = list(inp.board)
        attack = [0] * BOARD
        checksum = 0
        output: List[int] = []
        for step in range(inp.steps):
            board[inp.upd_idx[step]] = inp.upd_val[step]
            for sq in range(BOARD):
                count = 0
                if board[sq] != 0:
                    for k in range(inp.kt_ptr[sq], inp.kt_ptr[sq + 1]):
                        if board[inp.kt_idx[k]] == 0:
                            count += 1
                attack[sq] = count
            for m in range(inp.moves_per_step):
                sq = inp.candidates[step * inp.moves_per_step + m]
                checksum += attack[sq] * 4 + board[sq]
            output.append(checksum)
        return output

    # -- codegen -----------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("board", inp.board)
        b.data("kt_ptr", inp.kt_ptr)
        b.data("kt_idx", inp.kt_idx)
        b.zeros("attack", BOARD)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("candidates", inp.candidates)

    def _emit_regen_attack(self, b: ProgramBuilder) -> None:
        with b.scratch(6, "at") as (bb, pb, ib, ab, sq, count):
            b.la(bb, "board")
            b.la(pb, "kt_ptr")
            b.la(ib, "kt_idx")
            b.la(ab, "attack")
            with b.for_range(sq, 0, BOARD):
                b.li(count, 0)
                with b.scratch(1, "pc") as (piece,):
                    b.ldx(piece, bb, sq)
                    with b.if_(piece):
                        with b.scratch(2, "k2") as (k, kend):
                            b.ldx(k, pb, sq)
                            with b.scratch(1, "s1") as (s1,):
                                b.addi(s1, sq, 1)
                                b.ldx(kend, pb, s1)
                            with b.loop() as loop:
                                with b.scratch(1, "c") as (cond,):
                                    b.slt(cond, k, kend)
                                    loop.break_if_zero(cond)
                                with b.scratch(2, "t2") as (target, occ):
                                    b.ldx(target, ib, k)
                                    b.ldx(occ, bb, target)
                                    with b.if_zero(occ):
                                        b.addi(count, count, 1)
                                b.addi(k, k, 1)
                b.stx(count, ab, sq)

    def _emit_board_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "bb") as (bb,):
                b.la(bb, "board")
                if triggering:
                    return b.tstx(val, bb, idx)
                return b.stx(val, bb, idx)

    def _emit_evaluate(self, b: ProgramBuilder, inp: WorkloadInput, t, checksum):
        with b.scratch(6, "ev") as (cb, ab, bb, off, m, sq):
            b.la(cb, "candidates")
            b.la(ab, "attack")
            b.la(bb, "board")
            b.muli(off, t, inp.moves_per_step)
            with b.for_range(m, 0, inp.moves_per_step):
                with b.scratch(3, "e2") as (slot, a, piece):
                    b.add(slot, off, m)
                    b.ldx(sq, cb, slot)
                    b.ldx(a, ab, sq)
                    b.muli(a, a, 4)
                    b.ldx(piece, bb, sq)
                    b.add(a, a, piece)
                    b.add(checksum, checksum, a)
        b.out(checksum)

    # -- builds --------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_board_update(b, t, triggering=False)
                self._emit_regen_attack(b)
                self._emit_evaluate(b, inp, t, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("attackthr"):
            self._emit_regen_attack(b)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_regen_attack(b)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_board_update(b, t, triggering=True))
                b.tcheck_thread("attackthr")
                self._emit_evaluate(b, inp, t, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("attackthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
