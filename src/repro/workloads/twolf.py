"""``twolf`` — placement cost recomputation across rejected moves.

300.twolf does simulated-annealing placement: each step proposes moving a
cell and recomputes the half-perimeter wirelength (HPWL) of every net
touching it.  Most proposals are *rejected*, writing the old position
right back — after which the whole recomputation reproduces the values it
already had.  The paper's conversion triggers per-net HPWL recomputation
from position stores, so rejected moves cost nothing.

Our kernel: cells on a grid, nets as a pin CSR, a cell→nets CSR, and a
derived ``hpwl`` array.  Per step a move proposal writes the chosen
cell's (x, y) with triggering stores — both coordinates change when the
move is accepted, neither when it is rejected — then the annealer "costs"
the move by summing the HPWL of the cell's nets into a running checksum.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import grid_positions, nets as make_nets, rng_for

GRID = 64
BIG = 1 << 20


class TwolfWorkload(Workload):
    """300.twolf analog: annealing placement; see the module docstring."""

    name = "twolf"
    description = "annealing placement with mostly-rejected moves"
    converted_region = "per-net HPWL recomputation on cell moves"
    default_scale = 1
    default_seed = 1234

    #: move acceptance rate (the value-change rate of position stores)
    accept_rate = 0.35
    pins_per_net = 4

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_cells = 40 * scale
        num_nets = 36 * scale
        steps = 100 * scale
        xs, ys = grid_positions(seed, num_cells, GRID, stream="twolf-pos")
        net_list = make_nets(seed, num_nets, num_cells, self.pins_per_net,
                             stream="twolf-nets")
        net_ptr = [0]
        net_pin: List[int] = []
        for net in net_list:
            net_pin.extend(net)
            net_ptr.append(len(net_pin))
        # cell -> nets CSR
        touching: List[List[int]] = [[] for _ in range(num_cells)]
        for n, net in enumerate(net_list):
            for cell in net:
                touching[cell].append(n)
        cn_ptr = [0]
        cn_idx: List[int] = []
        for cell in range(num_cells):
            cn_idx.extend(touching[cell])
            cn_ptr.append(len(cn_idx))
        # move schedule
        rng = rng_for(seed, "twolf-moves")
        shadow_x, shadow_y = list(xs), list(ys)
        move_cell: List[int] = []
        move_x: List[int] = []
        move_y: List[int] = []
        for _ in range(steps):
            cell = rng.randrange(num_cells)
            if rng.random() < self.accept_rate:
                nx = rng.randrange(GRID)
                while nx == shadow_x[cell]:
                    nx = rng.randrange(GRID)
                ny = rng.randrange(GRID)
                while ny == shadow_y[cell]:
                    ny = rng.randrange(GRID)
                shadow_x[cell], shadow_y[cell] = nx, ny
            else:
                nx, ny = shadow_x[cell], shadow_y[cell]
            move_cell.append(cell)
            move_x.append(nx)
            move_y.append(ny)
        return WorkloadInput(
            seed, scale, num_cells=num_cells, num_nets=num_nets, steps=steps,
            xs=xs, ys=ys, net_ptr=net_ptr, net_pin=net_pin,
            cn_ptr=cn_ptr, cn_idx=cn_idx,
            move_cell=move_cell, move_x=move_x, move_y=move_y,
        )

    # -- reference --------------------------------------------------------------------

    @staticmethod
    def _hpwl(inp: WorkloadInput, xs, ys, net: int) -> int:
        min_x = min_y = BIG
        max_x = max_y = -BIG
        for k in range(inp.net_ptr[net], inp.net_ptr[net + 1]):
            pin = inp.net_pin[k]
            px, py = xs[pin], ys[pin]
            if px < min_x:
                min_x = px
            if px > max_x:
                max_x = px
            if py < min_y:
                min_y = py
            if py > max_y:
                max_y = py
        return (max_x - min_x) + (max_y - min_y)

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        xs, ys = list(inp.xs), list(inp.ys)
        hpwl = [0] * inp.num_nets
        for net in range(inp.num_nets):
            hpwl[net] = self._hpwl(inp, xs, ys, net)
        checksum = 0
        output: List[int] = []
        for step in range(inp.steps):
            cell = inp.move_cell[step]
            xs[cell] = inp.move_x[step]
            ys[cell] = inp.move_y[step]
            for k in range(inp.cn_ptr[cell], inp.cn_ptr[cell + 1]):
                net = inp.cn_idx[k]
                hpwl[net] = self._hpwl(inp, xs, ys, net)
            for k in range(inp.cn_ptr[cell], inp.cn_ptr[cell + 1]):
                checksum += hpwl[inp.cn_idx[k]]
            output.append(checksum)
        return output

    # -- codegen -----------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("x", inp.xs)
        b.data("y", inp.ys)
        b.data("net_ptr", inp.net_ptr)
        b.data("net_pin", inp.net_pin)
        b.data("cn_ptr", inp.cn_ptr)
        b.data("cn_idx", inp.cn_idx)
        b.zeros("hpwl", inp.num_nets)
        b.data("move_cell", inp.move_cell)
        b.data("move_x", inp.move_x)
        b.data("move_y", inp.move_y)

    def _emit_hpwl_one(self, b: ProgramBuilder, net) -> None:
        """hpwl[net] = (max x - min x) + (max y - min y) over its pins."""
        with b.scratch(6, "hp") as (minx, maxx, miny, maxy, k, kend):
            b.li(minx, BIG)
            b.li(maxx, -BIG)
            b.li(miny, BIG)
            b.li(maxy, -BIG)
            with b.scratch(1, "np") as (ptr,):
                b.la(ptr, "net_ptr")
                b.ldx(k, ptr, net)
                with b.scratch(1, "n1") as (n1,):
                    b.addi(n1, net, 1)
                    b.ldx(kend, ptr, n1)
            with b.scratch(3, "pb") as (pinb, xb, yb):
                b.la(pinb, "net_pin")
                b.la(xb, "x")
                b.la(yb, "y")
                with b.loop() as loop:
                    with b.scratch(1, "c") as (cond,):
                        b.slt(cond, k, kend)
                        loop.break_if_zero(cond)
                    with b.scratch(3, "p2") as (pin, px, py):
                        b.ldx(pin, pinb, k)
                        b.ldx(px, xb, pin)
                        b.ldx(py, yb, pin)
                        with b.scratch(1, "cc") as (cc,):
                            b.slt(cc, px, minx)
                            with b.if_(cc):
                                b.mov(minx, px)
                            b.sgt(cc, px, maxx)
                            with b.if_(cc):
                                b.mov(maxx, px)
                            b.slt(cc, py, miny)
                            with b.if_(cc):
                                b.mov(miny, py)
                            b.sgt(cc, py, maxy)
                            with b.if_(cc):
                                b.mov(maxy, py)
                    b.addi(k, k, 1)
            with b.scratch(2, "hw") as (span, hb):
                b.sub(maxx, maxx, minx)
                b.sub(maxy, maxy, miny)
                b.add(span, maxx, maxy)
                b.la(hb, "hpwl")
                b.stx(span, hb, net)

    def _emit_cell_nets(self, b: ProgramBuilder, cell, body) -> None:
        """Run ``body(net_reg)`` for each net touching ``cell``."""
        with b.scratch(3, "cn") as (k, kend, net):
            with b.scratch(1, "cp") as (ptr,):
                b.la(ptr, "cn_ptr")
                b.ldx(k, ptr, cell)
                with b.scratch(1, "c1") as (c1,):
                    b.addi(c1, cell, 1)
                    b.ldx(kend, ptr, c1)
            with b.scratch(1, "ib") as (idxb,):
                b.la(idxb, "cn_idx")
                with b.loop() as loop:
                    with b.scratch(1, "c") as (cond,):
                        b.slt(cond, k, kend)
                        loop.break_if_zero(cond)
                    b.ldx(net, idxb, k)
                    body(net)
                    b.addi(k, k, 1)

    def _emit_all_hpwl(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        with b.scratch(1, "n") as (net,):
            with b.for_range(net, 0, inp.num_nets):
                self._emit_hpwl_one(b, net)

    # -- builds -------------------------------------------------------------------------

    def _emit_step(self, b: ProgramBuilder, inp: WorkloadInput, t, checksum,
                   triggering: bool, pc_box: Optional[List[int]] = None) -> None:
        with b.scratch(5, "mv") as (mc, mx, my, cell, v):
            b.la(mc, "move_cell")
            b.la(mx, "move_x")
            b.la(my, "move_y")
            b.ldx(cell, mc, t)
            with b.scratch(2, "w2") as (xb, yb):
                b.la(xb, "x")
                b.la(yb, "y")
                b.ldx(v, mx, t)
                if triggering:
                    pc1 = b.tstx(v, xb, cell)
                else:
                    pc1 = b.stx(v, xb, cell)
                b.ldx(v, my, t)
                if triggering:
                    pc2 = b.tstx(v, yb, cell)
                else:
                    pc2 = b.stx(v, yb, cell)
                if pc_box is not None and not pc_box:
                    pc_box.extend([pc1, pc2])
            if triggering:
                b.tcheck_thread("hpwlthr")
            else:
                self._emit_cell_nets(b, cell,
                                     lambda net: self._emit_hpwl_one(b, net))
            with b.scratch(1, "hb") as (hb,):
                b.la(hb, "hpwl")

                def consume(net):
                    with b.scratch(1, "hv") as (hv,):
                        b.ldx(hv, hb, net)
                        b.add(checksum, checksum, hv)

                self._emit_cell_nets(b, cell, consume)
        b.out(checksum)

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_all_hpwl(b, inp)
            with b.for_range(t, 0, inp.steps):
                self._emit_step(b, inp, t, checksum, triggering=False)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("hpwlthr"):
            # r1 = changed coordinate's address; both x and y stores of one
            # move name the same cell, so one run covers the move
            with b.scratch(3, "th") as (xb, yb, cell):
                b.la(xb, "x")
                b.la(yb, "y")
                with b.scratch(1, "ge") as (in_y,):
                    b.sge(in_y, b.trigger_addr, yb)
                    with b.if_(in_y) as branch:
                        b.sub(cell, b.trigger_addr, yb)
                        branch.else_()
                        b.sub(cell, b.trigger_addr, xb)
                self._emit_cell_nets(b, cell,
                                     lambda net: self._emit_hpwl_one(b, net))
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_all_hpwl(b, inp)
            with b.for_range(t, 0, inp.steps):
                self._emit_step(b, inp, t, checksum, triggering=True,
                                pc_box=pc_box)
            b.halt()
        program = b.build()
        spec = TriggerSpec("hpwlthr", store_pcs=pc_box,
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
