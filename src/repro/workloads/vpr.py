"""``vpr`` — routing-cost tables under rarely-changing channel capacities.

175.vpr's router repeatedly prices nets: a net's cost combines its
bounding-box length with the congestion penalty of the channel it uses.
Channel capacities are adjusted between routing waves — rarely, and often
to the value they already had — yet the per-net cost terms are recomputed
every wave.  The paper's conversion fires per-channel cost recomputation
from the capacity stores.

Our kernel: nets with fixed lengths and channel assignments, a channel
capacity array, and derived ``cost[n] = len[n] * (CAP_BASE − cap[chan[n]])``.
Per step: one capacity write (usually silent), then a routing wave that
sums the cost of a window of nets and walks a fresh path trace
(non-convertible, non-redundant loads), emitting a running checksum.

The DTT support thread recomputes costs for the nets of the changed
channel, via a channel→nets CSR; dedupe is per capacity address.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import index_array, int_array, rng_for, update_schedule

NUM_CHANNELS = 12
CAP_BASE = 40


class VprWorkload(Workload):
    """175.vpr analog: net pricing; see the module docstring."""

    name = "vpr"
    description = "net pricing under rarely-adjusted channel capacities"
    converted_region = "per-channel net-cost recomputation"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.09
    window = 6
    path_len = 30

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_nets = 56 * scale
        steps = 90 * scale
        rng = rng_for(seed, "vpr-nets")
        lengths = int_array(seed, num_nets, (2, 20), stream="vpr-len")
        chan = [rng.randrange(NUM_CHANNELS) for _ in range(num_nets)]
        # channel -> nets CSR
        members: List[List[int]] = [[] for _ in range(NUM_CHANNELS)]
        for n, ch in enumerate(chan):
            members[ch].append(n)
        ch_ptr = [0]
        ch_idx: List[int] = []
        for ch in range(NUM_CHANNELS):
            ch_idx.extend(members[ch])
            ch_ptr.append(len(ch_idx))
        cap0 = int_array(seed, NUM_CHANNELS, (10, 30), stream="vpr-cap")
        upd_idx, upd_val = update_schedule(
            seed, steps, cap0, self.change_rate, (10, 30), stream="vpr-upd"
        )
        order = index_array(seed, steps * self.window, num_nets,
                            stream="vpr-order")
        path = int_array(seed, steps * self.path_len, (0, 7),
                         stream="vpr-path")
        return WorkloadInput(
            seed, scale, num_nets=num_nets, steps=steps,
            window=self.window, path_len=self.path_len,
            lengths=lengths, chan=chan, ch_ptr=ch_ptr, ch_idx=ch_idx,
            cap0=cap0, upd_idx=upd_idx, upd_val=upd_val,
            order=order, path=path,
        )

    # -- reference -------------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        cap = list(inp.cap0)
        cost = [0] * inp.num_nets
        for n in range(inp.num_nets):
            cost[n] = inp.lengths[n] * (CAP_BASE - cap[inp.chan[n]])
        checksum = 0
        output: List[int] = []
        for step in range(inp.steps):
            ch = inp.upd_idx[step]
            cap[ch] = inp.upd_val[step]
            for k in range(inp.ch_ptr[ch], inp.ch_ptr[ch + 1]):
                n = inp.ch_idx[k]
                cost[n] = inp.lengths[n] * (CAP_BASE - cap[inp.chan[n]])
            for k in range(inp.window):
                checksum += cost[inp.order[step * inp.window + k]]
            for k in range(inp.path_len):
                checksum += inp.path[step * inp.path_len + k]
            output.append(checksum)
        return output

    # -- codegen -----------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("lengths", inp.lengths)
        b.data("chan", inp.chan)
        b.data("ch_ptr", inp.ch_ptr)
        b.data("ch_idx", inp.ch_idx)
        b.data("cap", inp.cap0)
        b.zeros("cost", inp.num_nets)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("order", inp.order)
        b.data("path", inp.path)

    def _emit_cost_one(self, b: ProgramBuilder, net) -> None:
        """cost[net] = lengths[net] * (CAP_BASE - cap[chan[net]])."""
        with b.scratch(5, "co") as (lb, cb, capb, length, penalty):
            b.la(lb, "lengths")
            b.la(cb, "chan")
            b.la(capb, "cap")
            b.ldx(length, lb, net)
            b.ldx(penalty, cb, net)
            b.ldx(penalty, capb, penalty)
            with b.scratch(1, "k") as (base,):
                b.li(base, CAP_BASE)
                b.sub(penalty, base, penalty)
            b.mul(length, length, penalty)
            with b.scratch(1, "ob") as (ob,):
                b.la(ob, "cost")
                b.stx(length, ob, net)

    def _emit_channel_costs(self, b: ProgramBuilder, ch) -> None:
        """Recompute costs for every net of channel ``ch``."""
        with b.scratch(3, "cc") as (k, kend, net):
            with b.scratch(1, "cp") as (ptr,):
                b.la(ptr, "ch_ptr")
                b.ldx(k, ptr, ch)
                with b.scratch(1, "c1") as (c1,):
                    b.addi(c1, ch, 1)
                    b.ldx(kend, ptr, c1)
            with b.scratch(1, "ib") as (idxb,):
                b.la(idxb, "ch_idx")
                with b.loop() as loop:
                    with b.scratch(1, "c") as (cond,):
                        b.slt(cond, k, kend)
                        loop.break_if_zero(cond)
                    b.ldx(net, idxb, k)
                    self._emit_cost_one(b, net)
                    b.addi(k, k, 1)

    def _emit_all_costs(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        with b.scratch(1, "n") as (net,):
            with b.for_range(net, 0, inp.num_nets):
                self._emit_cost_one(b, net)

    def _emit_cap_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "cb") as (capb,):
                b.la(capb, "cap")
                if triggering:
                    return b.tstx(val, capb, idx)
                return b.stx(val, capb, idx)

    def _emit_wave(self, b: ProgramBuilder, inp: WorkloadInput, t,
                   checksum) -> None:
        """Sum the cost window, walk the fresh path trace, emit checksum."""
        with b.scratch(5, "wv") as (ob, costb, off, k, v):
            b.la(ob, "order")
            b.la(costb, "cost")
            b.muli(off, t, inp.window)
            with b.for_range(k, 0, inp.window):
                with b.scratch(1, "sl") as (slot,):
                    b.add(slot, off, k)
                    b.ldx(v, ob, slot)
                    b.ldx(v, costb, v)
                    b.add(checksum, checksum, v)
        with b.scratch(4, "pw") as (pb, off, k, v):
            b.la(pb, "path")
            b.muli(off, t, inp.path_len)
            with b.for_range(k, 0, inp.path_len):
                with b.scratch(1, "sl") as (slot,):
                    b.add(slot, off, k)
                    b.ldx(v, pb, slot)
                    b.add(checksum, checksum, v)
        b.out(checksum)

    # -- builds -------------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_all_costs(b, inp)
            with b.for_range(t, 0, inp.steps):
                with b.scratch(2, "st") as (ui, ch):
                    b.la(ui, "upd_idx")
                    b.ldx(ch, ui, t)
                    self._emit_cap_update(b, t, triggering=False)
                    self._emit_channel_costs(b, ch)
                self._emit_wave(b, inp, t, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("chanthr"):
            # r1 = changed capacity's address -> channel id
            with b.scratch(2, "th") as (capb, ch):
                b.la(capb, "cap")
                b.sub(ch, b.trigger_addr, capb)
                self._emit_channel_costs(b, ch)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_all_costs(b, inp)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_cap_update(b, t, triggering=True))
                b.tcheck_thread("chanthr")
                self._emit_wave(b, inp, t, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("chanthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=True)
        return DttBuild(program, [spec])
