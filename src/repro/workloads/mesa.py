"""``mesa`` — vertex-transform pipeline with a mostly-static matrix stack.

177.mesa (software OpenGL) transforms vertex batches through the composed
model-view-projection matrix.  Applications overwhelmingly re-issue the
same matrices frame after frame, so the matrix composition is recomputed
from unchanged inputs; the paper's conversion fires the composition from
stores into the matrix stack.

Our kernel: three 4×4 matrices ``model``, ``view``, ``proj`` (flattened
row-major), derived ``composed = proj · (view · model)`` (two 4×4 matrix
multiplies).  Per frame: one matrix-element write (almost always the same
value — a static camera), then a batch of 2-D-homogeneous-ish vertex
transforms through ``composed`` with vertices that change every frame, and
a checksum emit.

The DTT support thread recomputes the whole composition (dedupe by thread,
not address — any change invalidates all of it).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import rng_for, update_schedule

DIM = 4


class MesaWorkload(Workload):
    """177.mesa analog: matrix-stack composition; see the module docstring."""

    name = "mesa"
    description = "vertex transforms through a mostly-static matrix stack"
    converted_region = "model-view-projection matrix composition"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.25
    batch = 10

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        steps = 90 * scale
        rng = rng_for(seed, "mesa-matrices")
        size = DIM * DIM
        model_int = [rng.randint(1, 4) for _ in range(size)]
        view_int = [rng.randint(1, 4) for _ in range(size)]
        proj_int = [rng.randint(1, 4) for _ in range(size)]
        stacked = model_int + view_int + proj_int
        upd_idx, upd_val_int = update_schedule(
            seed, steps, stacked, self.change_rate, (1, 4),
            stream="mesa-updates",
        )
        verts0 = [round(rng.uniform(-1.0, 1.0), 3)
                  for _ in range(self.batch * DIM)]
        drive = [round(rng.uniform(-0.3, 0.3), 3) for _ in range(steps)]
        return WorkloadInput(
            seed, scale, steps=steps, batch=self.batch,
            model=[float(v) for v in model_int],
            view=[float(v) for v in view_int],
            proj=[float(v) for v in proj_int],
            upd_idx=upd_idx,
            upd_val=[float(v) for v in upd_val_int],
            verts0=verts0, drive=drive,
        )

    # -- reference ------------------------------------------------------------------

    @staticmethod
    def _matmul(a: List[float], b: List[float]) -> List[float]:
        out = [0.0] * (DIM * DIM)
        for r in range(DIM):
            for c in range(DIM):
                s = 0.0
                for k in range(DIM):
                    s = s + a[r * DIM + k] * b[k * DIM + c]
                out[r * DIM + c] = s
        return out

    def reference_output(self, inp: WorkloadInput) -> List[float]:
        size = DIM * DIM
        stack = list(inp.model) + list(inp.view) + list(inp.proj)
        verts = list(inp.verts0)
        checksum = 0.0
        output: List[float] = []
        for step in range(inp.steps):
            stack[inp.upd_idx[step]] = inp.upd_val[step]
            model, view, proj = stack[:size], stack[size:2 * size], stack[2 * size:]
            composed = self._matmul(proj, self._matmul(view, model))
            for v in range(inp.batch):
                for r in range(DIM):
                    s = 0.0
                    for k in range(DIM):
                        s = s + composed[r * DIM + k] * verts[v * DIM + k]
                    checksum = checksum + s
            output.append(checksum)
            for i in range(inp.batch * DIM):
                verts[i] = verts[i] * 0.5 + inp.drive[step]
        return output

    # -- codegen ----------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        # one contiguous stack so a single update index addresses all three
        b.data("stack", list(inp.model) + list(inp.view) + list(inp.proj))
        b.zeros("tmp_vm", DIM * DIM)
        b.zeros("composed", DIM * DIM)
        b.data("verts", inp.verts0)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("drive", inp.drive)

    def _emit_matmul(self, b: ProgramBuilder, dst: str, a_sym: str,
                     a_off: int, b_sym: str, b_off: int) -> None:
        """dst = stack-slice(a) · stack-slice(b), all 4×4 row-major."""
        with b.scratch(6, "mm") as (abase, bbase, dbase, r, c, k):
            b.la(abase, a_sym, a_off)
            b.la(bbase, b_sym, b_off)
            b.la(dbase, dst)
            with b.for_range(r, 0, DIM):
                with b.for_range(c, 0, DIM):
                    with b.scratch(2, "m2") as (s, slot):
                        b.li(s, 0.0)
                        with b.for_range(k, 0, DIM):
                            with b.scratch(2, "m3") as (av, bv):
                                b.muli(slot, r, DIM)
                                b.add(slot, slot, k)
                                b.ldx(av, abase, slot)
                                b.muli(slot, k, DIM)
                                b.add(slot, slot, c)
                                b.ldx(bv, bbase, slot)
                                b.fmul(av, av, bv)
                                b.fadd(s, s, av)
                        b.muli(slot, r, DIM)
                        b.add(slot, slot, c)
                        b.stx(s, dbase, slot)

    def _emit_compose(self, b: ProgramBuilder) -> None:
        size = DIM * DIM
        self._emit_matmul(b, "tmp_vm", "stack", size, "stack", 0)  # view·model
        self._emit_matmul(b, "composed", "stack", 2 * size, "tmp_vm", 0)

    def _emit_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "sb") as (sbase,):
                b.la(sbase, "stack")
                if triggering:
                    return b.tstx(val, sbase, idx)
                return b.stx(val, sbase, idx)

    def _emit_transform(self, b: ProgramBuilder, inp: WorkloadInput, t,
                        checksum) -> None:
        with b.scratch(5, "tx") as (cbase, vbase, v, r, k):
            b.la(cbase, "composed")
            b.la(vbase, "verts")
            with b.for_range(v, 0, inp.batch):
                with b.for_range(r, 0, DIM):
                    with b.scratch(2, "t2") as (s, slot):
                        b.li(s, 0.0)
                        with b.for_range(k, 0, DIM):
                            with b.scratch(2, "t3") as (cv, vv):
                                b.muli(slot, r, DIM)
                                b.add(slot, slot, k)
                                b.ldx(cv, cbase, slot)
                                b.muli(slot, v, DIM)
                                b.add(slot, slot, k)
                                b.ldx(vv, vbase, slot)
                                b.fmul(cv, cv, vv)
                                b.fadd(s, s, cv)
                        b.fadd(checksum, checksum, s)
            b.out(checksum)
            # advance vertices
            with b.scratch(3, "ad") as (dbase, dv, i):
                b.la(dbase, "drive")
                b.ldx(dv, dbase, t)
                with b.for_range(i, 0, inp.batch * DIM):
                    with b.scratch(2, "a2") as (vv, half):
                        b.ldx(vv, vbase, i)
                        b.li(half, 0.5)
                        b.fmul(vv, vv, half)
                        b.fadd(vv, vv, dv)
                        b.stx(vv, vbase, i)

    # -- builds ----------------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0.0)
            with b.for_range(t, 0, inp.steps):
                self._emit_update(b, t, triggering=False)
                self._emit_compose(b)
                self._emit_transform(b, inp, t, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("compose"):
            self._emit_compose(b)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0.0)
            self._emit_compose(b)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_update(b, t, triggering=True))
                b.tcheck_thread("compose")
                self._emit_transform(b, inp, t, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("compose", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
