"""``gcc`` — dataflow bitsets recomputed across unchanged gen sets.

176.gcc re-runs dataflow analyses after every transformation pass; most
passes leave most blocks' gen/kill sets untouched, so the fixed-point
solver mostly reproduces the previous IN/OUT sets.  The paper's
conversion triggers the (re)solve from gen-set stores.

Our kernel: a CFG in topological order (every predecessor precedes its
block), per-block ``gen``/``kill`` bitmasks, and a single forward pass
computing ``in[b] = OR of out[preds]``, ``out[b] = gen[b] | (in[b] &
~kill[b])``.  Per step: one gen-set store (usually rewriting the same
mask), then queries of a few blocks' OUT sets plus a scan of a fresh
instruction stream (non-convertible).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import index_array, int_array, rng_for, update_schedule

MASK_BITS = 16
FULL_MASK = (1 << MASK_BITS) - 1


class GccWorkload(Workload):
    """176.gcc analog: forward dataflow; see the module docstring."""

    name = "gcc"
    description = "forward dataflow over a CFG with stable gen/kill sets"
    converted_region = "reaching-definitions IN/OUT recomputation"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.14
    queries = 5
    stream_len = 36

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_blocks = 28 * scale
        steps = 80 * scale
        rng = rng_for(seed, "gcc-cfg")
        # topological CFG: each block's preds are strictly earlier blocks
        pred_ptr = [0]
        pred_idx: List[int] = []
        for block in range(num_blocks):
            if block == 0:
                preds = []
            else:
                count = rng.randint(1, min(2, block))
                preds = rng.sample(range(block), count)
            pred_idx.extend(sorted(preds))
            pred_ptr.append(len(pred_idx))
        gen = int_array(seed, num_blocks, (0, FULL_MASK), stream="gcc-gen")
        kill = int_array(seed, num_blocks, (0, FULL_MASK), stream="gcc-kill")
        upd_idx, upd_val = update_schedule(
            seed, steps, gen, self.change_rate, (0, FULL_MASK),
            stream="gcc-upd",
        )
        queries = index_array(seed, steps * self.queries, num_blocks,
                              stream="gcc-queries")
        stream = int_array(seed, steps * self.stream_len, (0, 255),
                           stream="gcc-stream")
        return WorkloadInput(
            seed, scale, num_blocks=num_blocks, steps=steps,
            query_count=self.queries, stream_len=self.stream_len,
            pred_ptr=pred_ptr, pred_idx=pred_idx, gen=gen, kill=kill,
            upd_idx=upd_idx, upd_val=upd_val, queries=queries, stream=stream,
        )

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        gen = list(inp.gen)
        out = [0] * inp.num_blocks
        checksum = 0
        output: List[int] = []
        for step in range(inp.steps):
            gen[inp.upd_idx[step]] = inp.upd_val[step]
            for b in range(inp.num_blocks):
                in_set = 0
                for k in range(inp.pred_ptr[b], inp.pred_ptr[b + 1]):
                    in_set |= out[inp.pred_idx[k]]
                out[b] = gen[b] | (in_set & (FULL_MASK ^ inp.kill[b]))
            for k in range(inp.query_count):
                checksum += out[inp.queries[step * inp.query_count + k]]
            for k in range(inp.stream_len):
                checksum += inp.stream[step * inp.stream_len + k]
            output.append(checksum)
        return output

    # -- codegen ---------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("pred_ptr", inp.pred_ptr)
        b.data("pred_idx", inp.pred_idx)
        b.data("gen", inp.gen)
        b.data("kill", inp.kill)
        b.zeros("out", inp.num_blocks)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("queries", inp.queries)
        b.data("stream", inp.stream)

    def _emit_solve(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        """One forward pass over the topologically-ordered CFG."""
        with b.scratch(6, "df") as (pp, pi, ob, blk, k, kend):
            b.la(pp, "pred_ptr")
            b.la(pi, "pred_idx")
            b.la(ob, "out")
            with b.for_range(blk, 0, inp.num_blocks):
                with b.scratch(2, "d2") as (in_set, v):
                    b.li(in_set, 0)
                    b.ldx(k, pp, blk)
                    with b.scratch(1, "b1") as (b1,):
                        b.addi(b1, blk, 1)
                        b.ldx(kend, pp, b1)
                    with b.loop() as loop:
                        with b.scratch(1, "c") as (cond,):
                            b.slt(cond, k, kend)
                            loop.break_if_zero(cond)
                        b.ldx(v, pi, k)
                        b.ldx(v, ob, v)
                        b.or_(in_set, in_set, v)
                        b.addi(k, k, 1)
                    with b.scratch(3, "d3") as (g, kl, nk):
                        with b.scratch(1, "gb") as (gb,):
                            b.la(gb, "gen")
                            b.ldx(g, gb, blk)
                        with b.scratch(1, "kb") as (kb,):
                            b.la(kb, "kill")
                            b.ldx(kl, kb, blk)
                        b.li(nk, FULL_MASK)
                        b.xor(nk, nk, kl)
                        b.and_(in_set, in_set, nk)
                        b.or_(g, g, in_set)
                        b.stx(g, ob, blk)

    def _emit_gen_update(self, b: ProgramBuilder, t, triggering: bool) -> int:
        with b.scratch(4, "up") as (ui, uv, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.ldx(idx, ui, t)
            b.ldx(val, uv, t)
            with b.scratch(1, "gb") as (gbase,):
                b.la(gbase, "gen")
                if triggering:
                    return b.tstx(val, gbase, idx)
                return b.stx(val, gbase, idx)

    def _emit_consume(self, b: ProgramBuilder, inp: WorkloadInput, t, checksum):
        with b.scratch(5, "qy") as (qb, ob, off, k, v):
            b.la(qb, "queries")
            b.la(ob, "out")
            b.muli(off, t, inp.query_count)
            with b.for_range(k, 0, inp.query_count):
                with b.scratch(1, "sl") as (slot,):
                    b.add(slot, off, k)
                    b.ldx(v, qb, slot)
                    b.ldx(v, ob, v)
                    b.add(checksum, checksum, v)
        with b.scratch(4, "sc") as (sb, off, k, v):
            b.la(sb, "stream")
            b.muli(off, t, inp.stream_len)
            with b.for_range(k, 0, inp.stream_len):
                with b.scratch(1, "sl") as (slot,):
                    b.add(slot, off, k)
                    b.ldx(v, sb, slot)
                    b.add(checksum, checksum, v)
        b.out(checksum)

    # -- builds -------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_gen_update(b, t, triggering=False)
                self._emit_solve(b, inp)
                self._emit_consume(b, inp, t, checksum)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("solvethr"):
            self._emit_solve(b, inp)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            b.li(checksum, 0)
            self._emit_solve(b, inp)
            with b.for_range(t, 0, inp.steps):
                pc_box.append(self._emit_gen_update(b, t, triggering=True))
                b.tcheck_thread("solvethr")
                self._emit_consume(b, inp, t, checksum)
            b.halt()
        program = b.build()
        spec = TriggerSpec("solvethr", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
