"""``gap`` — permutation-group cycle structure under stable generators.

254.gap computes in finite groups; derived structural data about the
acting generators (orbits, cycle decompositions) is recomputed even
though the generators themselves almost never change once constructed.
The paper's conversion fires that recomputation from generator stores.

Our kernel: two permutations ``g0``/``g1`` over P points, derived
``cyclen[i]`` = length of the ``g0``-cycle containing point ``i``
(computed by walking each cycle once with a visited mark), and a main
loop applying fresh generator words to a point while accumulating the
visited points' cycle lengths.  Generator tweaks are rare transpositions
— and "tweaks" that re-store the same image are silent.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import rng_for


class GapWorkload(Workload):
    """254.gap analog: permutation cycle structure; see the module docstring."""

    name = "gap"
    description = "group-theoretic cycle structure of stable generators"
    converted_region = "g0 cycle-length table recomputation"
    default_scale = 1
    default_seed = 1234

    change_rate = 0.06
    word_len = 26

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_points = 24 * scale
        steps = 80 * scale
        rng = rng_for(seed, "gap-perms")
        g0 = list(range(num_points))
        rng.shuffle(g0)
        g1 = list(range(num_points))
        rng.shuffle(g1)
        # update schedule: each step writes g0[slot]; a "change" applies a
        # transposition (two writes would be needed to stay a permutation,
        # so changes swap g0[slot] with g0[other] — we emit both writes and
        # the first one carries the trigger semantics; silent steps re-store
        # the current image)
        shadow = list(g0)
        upd_a_idx: List[int] = []
        upd_a_val: List[int] = []
        upd_b_idx: List[int] = []
        upd_b_val: List[int] = []
        for _ in range(steps):
            slot = rng.randrange(num_points)
            if rng.random() < self.change_rate:
                other = rng.randrange(num_points)
                while other == slot or shadow[other] == shadow[slot]:
                    other = rng.randrange(num_points)
                shadow[slot], shadow[other] = shadow[other], shadow[slot]
                upd_a_idx.append(slot)
                upd_a_val.append(shadow[slot])
                upd_b_idx.append(other)
                upd_b_val.append(shadow[other])
            else:
                upd_a_idx.append(slot)
                upd_a_val.append(shadow[slot])
                upd_b_idx.append(slot)
                upd_b_val.append(shadow[slot])
        word = [rng.randrange(2) for _ in range(steps * self.word_len)]
        return WorkloadInput(
            seed, scale, num_points=num_points, steps=steps,
            word_len=self.word_len, g0=g0, g1=g1,
            upd_a_idx=upd_a_idx, upd_a_val=upd_a_val,
            upd_b_idx=upd_b_idx, upd_b_val=upd_b_val, word=word,
        )

    # -- reference --------------------------------------------------------------

    @staticmethod
    def _cycle_lengths(g0: List[int], num_points: int) -> List[int]:
        cyclen = [0] * num_points
        visited = [0] * num_points
        for start in range(num_points):
            if visited[start]:
                continue
            # walk the cycle once to find its length
            length = 0
            p = start
            while True:
                length += 1
                visited[p] = 1
                p = g0[p]
                if p == start:
                    break
            p = start
            while True:
                cyclen[p] = length
                p = g0[p]
                if p == start:
                    break
        return cyclen

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        g0 = list(inp.g0)
        g1 = list(inp.g1)
        checksum = 0
        point = 0
        output: List[int] = []
        for step in range(inp.steps):
            g0[inp.upd_a_idx[step]] = inp.upd_a_val[step]
            g0[inp.upd_b_idx[step]] = inp.upd_b_val[step]
            cyclen = self._cycle_lengths(g0, inp.num_points)
            for k in range(inp.word_len):
                if inp.word[step * inp.word_len + k] == 0:
                    point = g0[point]
                else:
                    point = g1[point]
                checksum += cyclen[point] + point
            output.append(checksum)
        return output

    # -- codegen ------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("g0", inp.g0)
        b.data("g1", inp.g1)
        b.zeros("cyclen", inp.num_points)
        b.zeros("visited", inp.num_points)
        b.data("upd_a_idx", inp.upd_a_idx)
        b.data("upd_a_val", inp.upd_a_val)
        b.data("upd_b_idx", inp.upd_b_idx)
        b.data("upd_b_val", inp.upd_b_val)
        b.data("word", inp.word)

    def _emit_cycle_table(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        """Recompute cyclen[] by walking each g0-cycle once."""
        with b.scratch(5, "cy") as (g0b, cb, vb, start, zero):
            b.la(g0b, "g0")
            b.la(cb, "cyclen")
            b.la(vb, "visited")
            b.li(zero, 0)
            with b.scratch(1, "i") as (i,):
                with b.for_range(i, 0, inp.num_points):
                    b.stx(zero, vb, i)
            with b.for_range(start, 0, inp.num_points):
                with b.scratch(1, "seen") as (seen,):
                    b.ldx(seen, vb, start)
                    with b.if_zero(seen):
                        with b.scratch(3, "c2") as (length, p, one):
                            b.li(length, 0)
                            b.li(one, 1)
                            b.mov(p, start)
                            with b.loop() as loop:
                                b.addi(length, length, 1)
                                b.stx(one, vb, p)
                                b.ldx(p, g0b, p)
                                with b.scratch(1, "c") as (cond,):
                                    b.seq(cond, p, start)
                                    loop.break_if_nonzero(cond)
                            b.mov(p, start)
                            with b.loop() as loop:
                                b.stx(length, cb, p)
                                b.ldx(p, g0b, p)
                                with b.scratch(1, "c") as (cond,):
                                    b.seq(cond, p, start)
                                    loop.break_if_nonzero(cond)

    def _emit_updates(self, b: ProgramBuilder, t, triggering: bool) -> List[int]:
        pcs: List[int] = []
        for which in ("a", "b"):
            with b.scratch(4, "up") as (ui, uv, idx, val):
                b.la(ui, f"upd_{which}_idx")
                b.la(uv, f"upd_{which}_val")
                b.ldx(idx, ui, t)
                b.ldx(val, uv, t)
                with b.scratch(1, "gb") as (g0b,):
                    b.la(g0b, "g0")
                    if triggering:
                        pcs.append(b.tstx(val, g0b, idx))
                    else:
                        pcs.append(b.stx(val, g0b, idx))
        return pcs

    def _emit_word_walk(self, b: ProgramBuilder, inp: WorkloadInput, t,
                        checksum, point) -> None:
        with b.scratch(6, "wk") as (wb, g0b, g1b, cb, off, k):
            b.la(wb, "word")
            b.la(g0b, "g0")
            b.la(g1b, "g1")
            b.la(cb, "cyclen")
            b.muli(off, t, inp.word_len)
            with b.for_range(k, 0, inp.word_len):
                with b.scratch(2, "w2") as (slot, choice):
                    b.add(slot, off, k)
                    b.ldx(choice, wb, slot)
                    with b.if_zero(choice) as branch:
                        b.ldx(point, g0b, point)
                        branch.else_()
                        b.ldx(point, g1b, point)
                    with b.scratch(1, "cl") as (cl,):
                        b.ldx(cl, cb, point)
                        b.add(checksum, checksum, cl)
                        b.add(checksum, checksum, point)
        b.out(checksum)

    # -- builds ---------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            point = b.global_reg("point")
            b.li(checksum, 0)
            b.li(point, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_updates(b, t, triggering=False)
                self._emit_cycle_table(b, inp)
                self._emit_word_walk(b, inp, t, checksum, point)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("cyclethr"):
            self._emit_cycle_table(b, inp)
            b.treturn()
        pcs_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            checksum = b.global_reg("checksum")
            point = b.global_reg("point")
            b.li(checksum, 0)
            b.li(point, 0)
            self._emit_cycle_table(b, inp)
            with b.for_range(t, 0, inp.steps):
                pcs = self._emit_updates(b, t, triggering=True)
                if not pcs_box:
                    pcs_box.extend(pcs)
                b.tcheck_thread("cyclethr")
                self._emit_word_walk(b, inp, t, checksum, point)
            b.halt()
        program = b.build()
        spec = TriggerSpec("cyclethr", store_pcs=pcs_box,
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
