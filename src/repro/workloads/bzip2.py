"""``bzip2`` — block buffer with heavy inter-block repetition.

256.bzip2 compresses data block by block; real corpora repeat, so loading
the next block into the working buffer often stores bytes identical to
what the previous block left there, and the per-block symbol statistics
are recomputed from a buffer that did not change.  The paper's conversion
fires the statistics rebuild from the buffer stores.

Our kernel: blocks drawn from a small pool (so consecutive blocks often
coincide word-for-word) are copied into a working buffer with triggering
stores.  The derived data is the buffer's symbol histogram plus a
per-symbol sort-cost weight; the consumable is the block's weighted cost
(a scan of the buffer), emitted as a running total.

The whole-buffer copy produces *bursts* of triggers when a block actually
differs; duplicate suppression collapses them into a single rebuild.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import symbol_blocks

ALPHABET = 16


class Bzip2Workload(Workload):
    """256.bzip2 analog: block statistics; see the module docstring."""

    name = "bzip2"
    description = "block-sort statistics over repeating input blocks"
    converted_region = "buffer histogram + sort-cost weights"
    default_scale = 1
    default_seed = 1234

    block_size = 32

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        steps = 70 * scale
        blocks = symbol_blocks(seed, steps, self.block_size, ALPHABET,
                               stream="bzip2-blocks")
        flat = [sym for block in blocks for sym in block]
        return WorkloadInput(
            seed, scale, steps=steps, block_size=self.block_size, flat=flat,
        )

    # -- reference -------------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[int]:
        buffer = [0] * inp.block_size
        weight = [0] * ALPHABET
        cost = 0
        output: List[int] = []
        for step in range(inp.steps):
            base = step * inp.block_size
            for i in range(inp.block_size):
                buffer[i] = inp.flat[base + i]
            hist = [0] * ALPHABET
            for i in range(inp.block_size):
                hist[buffer[i]] += 1
            for s in range(ALPHABET):
                weight[s] = hist[s] * hist[s] + s
            for i in range(inp.block_size):
                cost += weight[buffer[i]]
            output.append(cost)
        return output

    # -- codegen -----------------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("flat", inp.flat)
        b.zeros("buffer", inp.block_size)
        b.zeros("hist", ALPHABET)
        b.zeros("weight", ALPHABET)

    def _emit_copy_block(self, b: ProgramBuilder, inp: WorkloadInput, t,
                         triggering: bool) -> Optional[int]:
        """Copy block t into the working buffer; returns first store PC."""
        store_pc = None
        with b.scratch(5, "cp") as (fbase, bbase, base, i, v):
            b.la(fbase, "flat")
            b.la(bbase, "buffer")
            b.muli(base, t, inp.block_size)
            with b.for_range(i, 0, inp.block_size):
                with b.scratch(1, "sl") as (slot,):
                    b.add(slot, base, i)
                    b.ldx(v, fbase, slot)
                    if triggering:
                        pc = b.tstx(v, bbase, i)
                    else:
                        pc = b.stx(v, bbase, i)
                    if store_pc is None:
                        store_pc = pc
        return store_pc

    def _emit_rebuild_stats(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        """hist from buffer, then weight[s] = hist[s]^2 + s."""
        with b.scratch(4, "st") as (bbase, hbase, i, s):
            b.la(bbase, "buffer")
            b.la(hbase, "hist")
            with b.scratch(1, "z") as (zero,):
                b.li(zero, 0)
                with b.for_range(i, 0, ALPHABET):
                    b.stx(zero, hbase, i)
            with b.for_range(i, 0, inp.block_size):
                with b.scratch(2, "h2") as (sym, count):
                    b.ldx(sym, bbase, i)
                    b.ldx(count, hbase, sym)
                    b.addi(count, count, 1)
                    b.stx(count, hbase, sym)
            with b.scratch(1, "wb") as (wbase,):
                b.la(wbase, "weight")
                with b.for_range(s, 0, ALPHABET):
                    with b.scratch(2, "w2") as (h, w):
                        b.ldx(h, hbase, s)
                        b.mul(w, h, h)
                        b.add(w, w, s)
                        b.stx(w, wbase, s)

    def _emit_cost_scan(self, b: ProgramBuilder, inp: WorkloadInput, cost):
        with b.scratch(3, "cs") as (bbase, wbase, i):
            b.la(bbase, "buffer")
            b.la(wbase, "weight")
            with b.for_range(i, 0, inp.block_size):
                with b.scratch(2, "c2") as (sym, w):
                    b.ldx(sym, bbase, i)
                    b.ldx(w, wbase, sym)
                    b.add(cost, cost, w)
        b.out(cost)

    # -- builds -------------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            cost = b.global_reg("cost")
            b.li(cost, 0)
            with b.for_range(t, 0, inp.steps):
                self._emit_copy_block(b, inp, t, triggering=False)
                self._emit_rebuild_stats(b, inp)
                self._emit_cost_scan(b, inp, cost)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("statthr"):
            self._emit_rebuild_stats(b, inp)
            b.treturn()
        pc_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            cost = b.global_reg("cost")
            b.li(cost, 0)
            # derived stats must be valid even if the first block happens
            # to coincide with the zero-initialized buffer
            self._emit_rebuild_stats(b, inp)
            with b.for_range(t, 0, inp.steps):
                pc = self._emit_copy_block(b, inp, t, triggering=True)
                if not pc_box:
                    pc_box.append(pc)
                b.tcheck_thread("statthr")
                self._emit_cost_scan(b, inp, cost)
            b.halt()
        program = b.build()
        spec = TriggerSpec("statthr", store_pcs=[pc_box[0]],
                           per_address_dedupe=False)
        return DttBuild(program, [spec])
