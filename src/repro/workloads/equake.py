"""``equake`` — sparse-matrix row summaries inside a time-stepping loop.

183.equake simulates seismic wave propagation: every timestep performs a
sparse matrix-vector product (``smvp``) with a stiffness matrix that is
assembled once and then *mostly* unchanged — the paper's conversion hangs
derived per-row data off the matrix entries, so the (re)computation runs
only when an entry actually changes.

Our kernel: a CSR matrix with per-row absolute-value sums (``rowsum``, a
Jacobi-style preconditioner diagonal).  Each timestep:

* a small burst of matrix-entry writes lands (assembly refresh — almost
  always storing the value already there);
* the preconditioned smvp runs: ``acc += rowsum[i] * x[i] + Σ_k vals[k] *
  x[col[k]]`` — the smvp itself reads the *changing* vector ``x`` and is
  not convertible;
* the vector is advanced (``x[i] = x[i] * 0.5 + c_t``), so vector loads
  are genuinely non-redundant (this is the suite's lower-redundancy
  floating-point representative).

The baseline recomputes every ``rowsum`` each timestep.  The DTT build has
one support thread, keyed per changed address, that recomputes only the
row containing the written entry; the burst of writes exercises duplicate
suppression and (with a small queue) overflow handling — this workload is
the E8c queue-depth ablation target.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.registry import TriggerSpec
from repro.isa.builder import ProgramBuilder
from repro.workloads.base import DttBuild, Workload, WorkloadInput
from repro.workloads.data import rng_for, sparse_matrix_csr, update_schedule


class EquakeWorkload(Workload):
    """183.equake analog: preconditioned sparse MVP; see the module docstring."""

    name = "equake"
    description = "preconditioned sparse MVP with rarely-changing matrix"
    converted_region = "per-row preconditioner (rowsum) recomputation"
    default_scale = 1
    default_seed = 1234

    #: probability a matrix-entry write changes the value
    change_rate = 0.06
    #: matrix-entry writes per timestep
    burst = 3

    def make_input(self, seed: Optional[int] = None,
                   scale: Optional[int] = None) -> WorkloadInput:
        seed, scale = self._args(seed, scale)
        num_rows = 48 * scale
        nnz_per_row = 4
        steps = 90 * scale
        row_ptr, col_idx, vals_int = sparse_matrix_csr(
            seed, num_rows, nnz_per_row, (1, 9)
        )
        vals = [float(v) for v in vals_int]
        # row_of[k]: the row containing CSR slot k (support thread's lookup)
        row_of = [0] * len(vals)
        for row in range(num_rows):
            for k in range(row_ptr[row], row_ptr[row + 1]):
                row_of[k] = row
        upd_idx, upd_val_int = update_schedule(
            seed, steps * self.burst, vals_int, self.change_rate, (1, 9),
            stream="equake-updates",
        )
        upd_val = [float(v) for v in upd_val_int]
        rng = rng_for(seed, "equake-x")
        x0 = [round(rng.uniform(0.5, 2.0), 3) for _ in range(num_rows)]
        drive = [round(rng.uniform(-0.5, 0.5), 3) for _ in range(steps)]
        return WorkloadInput(
            seed, scale,
            num_rows=num_rows, steps=steps, burst=self.burst,
            row_ptr=row_ptr, col_idx=col_idx, vals=vals, row_of=row_of,
            upd_idx=upd_idx, upd_val=upd_val, x0=x0, drive=drive,
        )

    # -- reference -----------------------------------------------------------------

    def reference_output(self, inp: WorkloadInput) -> List[float]:
        vals = list(inp.vals)
        x = list(inp.x0)
        num_rows = inp.num_rows
        rowsum = [0.0] * num_rows
        output: List[float] = []
        acc = 0.0
        for step in range(inp.steps):
            for j in range(inp.burst):
                k = inp.upd_idx[step * inp.burst + j]
                vals[k] = inp.upd_val[step * inp.burst + j]
            for row in range(num_rows):
                s = 0.0
                for k in range(inp.row_ptr[row], inp.row_ptr[row + 1]):
                    s = s + abs(vals[k])
                rowsum[row] = s
            for row in range(num_rows):
                acc = acc + rowsum[row] * x[row]
                for k in range(inp.row_ptr[row], inp.row_ptr[row + 1]):
                    acc = acc + vals[k] * x[inp.col_idx[k]]
            for row in range(num_rows):
                x[row] = x[row] * 0.5 + inp.drive[step]
            output.append(acc)
        return output

    # -- shared codegen ---------------------------------------------------------------

    def _emit_data(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        b.data("row_ptr", inp.row_ptr)
        b.data("col_idx", inp.col_idx)
        b.data("vals", inp.vals)
        b.data("row_of", inp.row_of)
        b.zeros("rowsum", inp.num_rows)
        b.data("x", inp.x0)
        b.data("upd_idx", inp.upd_idx)
        b.data("upd_val", inp.upd_val)
        b.data("drive", inp.drive)

    def _emit_rowsum_one(self, b: ProgramBuilder, row) -> None:
        """rowsum[row] = sum of |vals[k]| for k in the row's CSR range."""
        with b.scratch(6, "rs") as (rp, vbase, k, kend, s, v):
            b.la(rp, "row_ptr")
            b.la(vbase, "vals")
            b.ldx(k, rp, row)
            with b.scratch(1, "r1") as (r1,):
                b.addi(r1, row, 1)
                b.ldx(kend, rp, r1)
            b.li(s, 0.0)
            with b.loop() as loop:
                with b.scratch(1, "c") as (cond,):
                    b.slt(cond, k, kend)
                    loop.break_if_zero(cond)
                b.ldx(v, vbase, k)
                b.fabs(v, v)
                b.fadd(s, s, v)
                b.addi(k, k, 1)
            with b.scratch(1, "rb") as (rs,):
                b.la(rs, "rowsum")
                b.stx(s, rs, row)

    def _emit_all_rowsums(self, b: ProgramBuilder, inp: WorkloadInput) -> None:
        with b.scratch(1, "row") as (row,):
            with b.for_range(row, 0, inp.num_rows):
                self._emit_rowsum_one(b, row)

    def _emit_updates(self, b: ProgramBuilder, inp: WorkloadInput, t,
                      triggering: bool) -> List[int]:
        """The per-step burst of matrix-entry writes; returns store PCs."""
        pcs: List[int] = []
        with b.scratch(5, "up") as (ui, uv, off, idx, val):
            b.la(ui, "upd_idx")
            b.la(uv, "upd_val")
            b.muli(off, t, inp.burst)
            for j in range(inp.burst):
                with b.scratch(2, "uj") as (slot, vbase):
                    b.addi(slot, off, j)
                    b.ldx(idx, ui, slot)
                    b.ldx(val, uv, slot)
                    b.la(vbase, "vals")
                    if triggering:
                        pcs.append(b.tstx(val, vbase, idx))
                    else:
                        pcs.append(b.stx(val, vbase, idx))
        return pcs

    def _emit_smvp_and_advance(self, b: ProgramBuilder, inp: WorkloadInput,
                               t, acc) -> None:
        """acc += rowsum[i]*x[i] + Σ vals[k]*x[col[k]]; advance x; out acc."""
        with b.scratch(6, "mv") as (rp, vbase, cbase, xbase, rsbase, row):
            b.la(rp, "row_ptr")
            b.la(vbase, "vals")
            b.la(cbase, "col_idx")
            b.la(xbase, "x")
            b.la(rsbase, "rowsum")
            with b.for_range(row, 0, inp.num_rows):
                with b.scratch(4, "m2") as (s, xv, k, kend):
                    b.ldx(s, rsbase, row)
                    b.ldx(xv, xbase, row)
                    b.fmul(s, s, xv)
                    b.fadd(acc, acc, s)
                    b.ldx(k, rp, row)
                    with b.scratch(1, "r1") as (r1,):
                        b.addi(r1, row, 1)
                        b.ldx(kend, rp, r1)
                    with b.loop() as loop:
                        with b.scratch(1, "c") as (cond,):
                            b.slt(cond, k, kend)
                            loop.break_if_zero(cond)
                        with b.scratch(3, "m3") as (v, col, xc):
                            b.ldx(v, vbase, k)
                            b.ldx(col, cbase, k)
                            b.ldx(xc, xbase, col)
                            b.fmul(v, v, xc)
                            b.fadd(acc, acc, v)
                        b.addi(k, k, 1)
            # advance the vector: x[i] = x[i]*0.5 + drive[t]
            with b.scratch(3, "ad") as (dbase, dv, i):
                b.la(dbase, "drive")
                b.ldx(dv, dbase, t)
                with b.for_range(i, 0, inp.num_rows):
                    with b.scratch(2, "a2") as (xv, half):
                        b.ldx(xv, xbase, i)
                        b.li(half, 0.5)
                        b.fmul(xv, xv, half)
                        b.fadd(xv, xv, dv)
                        b.stx(xv, xbase, i)
        b.out(acc)

    # -- builds --------------------------------------------------------------------------

    def build_baseline(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.function("main"):
            t = b.global_reg("t")
            acc = b.global_reg("acc")
            b.li(acc, 0.0)
            with b.for_range(t, 0, inp.steps):
                self._emit_updates(b, inp, t, triggering=False)
                self._emit_all_rowsums(b, inp)
                self._emit_smvp_and_advance(b, inp, t, acc)
            b.halt()
        return b.build()

    def build_dtt(self, inp: WorkloadInput) -> DttBuild:
        program, pcs = self._build_dtt_program(inp)
        spec = TriggerSpec("rowthr", store_pcs=pcs, per_address_dedupe=True)
        return DttBuild(program, [spec])

    def build_dtt_watch(self, inp: WorkloadInput) -> DttBuild:
        program, _pcs = self._build_dtt_program(inp)
        lo = program.address_of("vals")
        spec = TriggerSpec("rowthr", watch=[(lo, lo + len(inp.vals))],
                           per_address_dedupe=True)
        return DttBuild(program, [spec])

    def _build_dtt_program(self, inp: WorkloadInput):
        b = ProgramBuilder()
        self._emit_data(b, inp)
        with b.thread("rowthr"):
            # r1 = address of the changed matrix entry; recompute its row
            with b.scratch(3, "th") as (vbase, slot, row):
                b.la(vbase, "vals")
                b.sub(slot, b.trigger_addr, vbase)
                with b.scratch(1, "ro") as (robase,):
                    b.la(robase, "row_of")
                    b.ldx(row, robase, slot)
                self._emit_rowsum_one(b, row)
            b.treturn()
        pcs_box: List[int] = []
        with b.function("main"):
            t = b.global_reg("t")
            acc = b.global_reg("acc")
            b.li(acc, 0.0)
            # initialize the derived data once (assembly-time computation)
            self._emit_all_rowsums(b, inp)
            with b.for_range(t, 0, inp.steps):
                pcs = self._emit_updates(b, inp, t, triggering=True)
                if not pcs_box:
                    pcs_box.extend(pcs)
                b.tcheck_thread("rowthr")
                self._emit_smvp_and_advance(b, inp, t, acc)
            b.halt()
        return b.build(), pcs_box
