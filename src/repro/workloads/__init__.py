"""The evaluation workload suite.

Fifteen kernels modeled on the C SPEC CPU2000 benchmarks the paper
evaluates, each re-implementing the specific computation pattern the
paper's DTT conversion targets (see DESIGN.md's workload table).  Every
workload provides a baseline build, a DTT build (program + trigger specs),
a seeded input generator, and a pure-Python reference implementation used
to verify that both builds compute exactly the same observable output.
"""

from repro.workloads.base import DttBuild, Workload, WorkloadInput, verify_workload
from repro.workloads.suite import (
    SUITE,
    get_workload,
    workload_names,
)

__all__ = [
    "DttBuild",
    "Workload",
    "WorkloadInput",
    "verify_workload",
    "SUITE",
    "get_workload",
    "workload_names",
]
